"""Fig. 12 / Section VI-C — SSH keystroke detection with both primitives."""

from repro.experiments import fig12_keystrokes


def test_bench_fig12_keystrokes(once):
    result = once(fig12_keystrokes.run, keystrokes=256)
    print()
    print(fig12_keystrokes.report(result))
    devtlb = result.devtlb.evaluation
    swq = result.swq.evaluation
    # Paper: DevTLB F1 92.0% / 5.29 ms; SWQ F1 98.4% / 1.21 ms.
    assert 0.85 <= devtlb.f1 <= 0.97
    assert swq.f1 >= 0.95
    assert swq.f1 > devtlb.f1
    assert 3.0 <= devtlb.timestamp_std_ms <= 8.0
    assert swq.timestamp_std_ms <= 2.0
