"""Fig. 14 — software-mitigation throughput overhead."""

from repro.experiments import fig14_mitigation


def test_bench_fig14_mitigation(once):
    result = once(fig14_mitigation.run)
    print()
    print(fig14_mitigation.report(result))
    # Paper: up to 15.7% (native) / 17.9% (DTO) at 256 B, fading upward.
    assert 10 <= result.max_overhead("dsa") <= 25
    assert 10 <= result.max_overhead("dto") <= 25
    assert result.overhead_shrinks_with_size
