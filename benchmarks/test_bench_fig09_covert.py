"""Fig. 9 — covert-channel capacity sweep over both primitives."""

from repro.experiments import fig09_covert


def test_bench_fig09_covert(once):
    result = once(fig09_covert.run, payload_bits=192, runs=2)
    print()
    print(fig09_covert.report(result))
    devtlb = result.best("devtlb")
    swq = result.best("swq")
    # Paper: 17.19 kbps @ 4.63% and 4.02 kbps @ 13.11%.
    assert devtlb.true_bps > 13_000
    assert devtlb.error_rate < 0.12
    assert swq.true_bps > 3_000
    assert result.error_grows_with_rate
