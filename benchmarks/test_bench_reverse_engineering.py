"""RE-1/2/3 — the Section IV reverse-engineering suite."""

from repro.experiments import reverse_engineering


def test_bench_reverse_engineering(once):
    results = once(reverse_engineering.run)
    print()
    print(reverse_engineering.report(results))
    assert results.all_reproduced
