"""Extension: open-world website fingerprinting."""

from repro.experiments import openworld_wf


def test_bench_openworld_wf(once):
    result = once(openworld_wf.run)
    print()
    print(openworld_wf.report(result))
    # Better than coin-flipping on both axes simultaneously.
    assert result.scores.balanced > 0.6
    assert result.scores.unknown_rejection_rate > 0.5
    assert result.closed_world_accuracy > 0.6
