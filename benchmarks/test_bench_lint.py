"""Wall-clock cost of the whole-program linter on this repository.

Times a **cold** run (no summary cache: every file parsed, every
per-file rule walked, summaries extracted, taint fixpoint) and a
**warm** re-lint (every summary served from the SHA-256 cache; only the
whole-program phase re-runs) over ``src/``, in-process, and records
both in ``BENCH_lint.json`` at the repo root (override the path with
``BENCH_LINT_PATH``).

Gates:

* cold whole-repo analysis finishes within :data:`COLD_BUDGET_S` —
  the linter must stay cheap enough to run as a preflight everywhere;
* the warm re-lint is at least :data:`WARM_SPEEDUP_FLOOR`× faster than
  cold — the summary cache is the whole point of the two-phase design,
  and a regression here (e.g. a rule that sneaks an AST walk into
  phase 2) would silently turn every preflight into a cold run.
"""

import json
import os
import time
from pathlib import Path

from repro.lint import Baseline, LintEngine

REPO_ROOT = Path(__file__).resolve().parent.parent
COLD_BUDGET_S = 30.0
WARM_SPEEDUP_FLOOR = 5.0

BENCH_PATH = Path(
    os.environ.get("BENCH_LINT_PATH", REPO_ROOT / "BENCH_lint.json")
)


def _run(cache_path):
    baseline_path = REPO_ROOT / "lint-baseline.json"
    baseline = (
        Baseline.load(baseline_path) if baseline_path.exists() else None
    )
    engine = LintEngine(root=REPO_ROOT, cache_path=cache_path)
    start = time.perf_counter()  # repro-lint: ignore[DET002]
    report = engine.run(["src"], baseline=baseline)
    elapsed = time.perf_counter() - start  # repro-lint: ignore[DET002]
    return elapsed, report


def test_cold_and_warm_lint_budgets(tmp_path):
    cache_path = tmp_path / "lint-cache.json"

    cold_s, cold = _run(cache_path)
    assert cold.parsed == cold.files_checked and cold.cache_hits == 0
    assert cold.all_findings == [], [
        f.format_text() for f in cold.all_findings
    ]

    warm_s, warm = _run(cache_path)
    assert warm.cache_hits == warm.files_checked and warm.parsed == 0
    assert warm.all_findings == []

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    record = {
        "files": cold.files_checked,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_speedup": round(speedup, 2),
        "cold_budget_s": COLD_BUDGET_S,
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "suppressed": cold.suppressed,
    }
    BENCH_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    assert cold_s <= COLD_BUDGET_S, (
        f"cold whole-repo lint took {cold_s:.1f}s (budget {COLD_BUDGET_S}s)"
    )
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm re-lint only {speedup:.1f}x faster than cold"
        f" (floor {WARM_SPEEDUP_FLOOR}x): the summary cache is not"
        " carrying phase 1"
    )
