"""Sustained-load benchmark for the always-on session service.

Drives 10⁵ sessions through one `AttackService` run on a provisioned
fleet (32 lanes at a 20k-cycle mean inter-arrival sits just under
capacity) and records the result in ``BENCH_service.json`` at the repo
root (override the path with ``BENCH_SERVICE_PATH``).  Excluded from
tier-1 (marker ``loadtest``); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service.py \
        -o addopts="" -m loadtest -q

Gates:

* **exactness at scale** — the conservation law holds to the session
  (`balances()`), every offer completes, the runtime checker's final
  audit passes, and zero faults go unacknowledged.  Exact accounting
  over 10⁵ concurrent lifecycles is the tentpole claim; "all but a
  few" is a fail;
* **latency** — p99 session latency stays under
  :data:`P99_CEILING_CYCLES` of virtual device time.  A provisioned
  service whose tail latency blows past its deadline budget is
  overcommitted in disguise;
* **throughput** — the simulation sustains at least
  :data:`THROUGHPUT_FLOOR` sessions per wall-clock second.  The floor
  is ~3× below the observed ~370/s so only a superlinear scheduling
  or bookkeeping regression (not host jitter) can trip it.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.service.app import AttackService
from repro.service.config import ServiceConfig, TenantPolicy
from repro.service.loadgen import LoadConfig, build_schedule

pytestmark = pytest.mark.loadtest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = Path(
    os.environ.get("BENCH_SERVICE_PATH", REPO_ROOT / "BENCH_service.json")
)

SESSIONS = 100_000
P99_CEILING_CYCLES = 5_000_000
THROUGHPUT_FLOOR = 120.0  # sessions per wall second

CONFIG = dict(
    seed=2026,
    lanes=32,
    tenant_policy=TenantPolicy(
        device_cycle_quota=10**11, max_in_flight=512
    ),
)
LOAD = dict(
    sessions=SESSIONS,
    tenants=32,
    seed=7,
    mean_interarrival_cycles=20_000.0,
)


def test_sustained_load_is_exact_and_fast():
    service = AttackService(ServiceConfig(**CONFIG))
    schedule = build_schedule(LoadConfig(**LOAD))

    start = time.perf_counter()  # repro-lint: ignore[DET002]
    report = service.run(schedule)
    wall_s = time.perf_counter() - start  # repro-lint: ignore[DET002]

    acct = report.accounting
    throughput = SESSIONS / wall_s

    # Exactness: the books balance to the session at 10^5 scale.  The
    # final audit (and with it every lifecycle/lane/budget invariant)
    # already ran inside run(); reaching here means zero violations.
    assert acct.balances(), acct.to_json()
    assert acct.offered == SESSIONS
    assert acct.completed == SESSIONS, acct.to_json()
    assert report.status == "completed"
    assert report.unacknowledged_faults == {}

    # Latency and throughput gates.
    p50 = report.latency_cycles["p50"]
    p99 = report.latency_cycles["p99"]
    assert 0 < p50 <= p99
    assert p99 <= P99_CEILING_CYCLES, f"p99 {p99:.0f}cyc over ceiling"
    assert throughput >= THROUGHPUT_FLOOR, (
        f"{throughput:.0f} sessions/s under the {THROUGHPUT_FLOOR}/s floor"
    )

    payload = {
        "sessions": SESSIONS,
        "config": {
            "lanes": CONFIG["lanes"],
            "tenants": LOAD["tenants"],
            "mean_interarrival_cycles": LOAD["mean_interarrival_cycles"],
        },
        "accounting": acct.to_json(),
        "latency_cycles": dict(report.latency_cycles),
        "virtual_cycles": report.virtual_cycles,
        "lane_stats": report.lane_stats,
        "mode_transitions": len(report.mode_transitions),
        "wall_seconds": round(wall_s, 2),
        "sessions_per_second": round(throughput, 1),
        "gates": {
            "p99_ceiling_cycles": P99_CEILING_CYCLES,
            "throughput_floor_per_s": THROUGHPUT_FLOOR,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{SESSIONS} sessions in {wall_s:.1f}s wall"
        f" ({throughput:.0f}/s), p50={p50:.0f}cyc p99={p99:.0f}cyc"
        f" -> {BENCH_PATH}"
    )
