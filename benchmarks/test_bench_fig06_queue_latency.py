"""Fig. 6 — submission/completion latency and the DMWr ZF threshold."""

from repro.experiments import fig06_queue_latency


def test_bench_fig06_queue_latency(once):
    result = once(fig06_queue_latency.run, repeats=15)
    print()
    print(fig06_queue_latency.report(result))
    assert result.submission_is_flat  # paper: constant ~700 cycles
    assert result.completion_is_monotone
    assert result.contention_threshold == 1 << 25  # paper: 2^25 bytes
