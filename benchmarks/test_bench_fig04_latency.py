"""Fig. 4 — DevTLB hit/miss latency across the four environments."""

from repro.experiments import fig04_latency
from repro.hw.noise import Environment


def test_bench_fig04_latency(once):
    result = once(fig04_latency.run, samples=300)
    print()
    print(fig04_latency.report(result))
    local = result.for_environment(Environment.LOCAL)
    assert 400 <= local.hit_mean <= 600  # paper: ~500 cycles
    assert local.miss_mean > 1000  # paper: >1000 cycles
    assert all(row.band_threshold_works for row in result.environments)
    assert 60 <= result.cloud_noise_shift <= 120  # paper: ~89 cycles
