"""Ablations over the design choices DESIGN.md calls out.

These are not paper artifacts; they probe *why* the attacks work by
toggling one microarchitectural property at a time:

* PASID-partitioned DevTLB kills the DevTLB channel.
* Privileged DMWr kills the SWQ channel.
* More slots per sub-entry weaken eviction-based signaling.
* An extra processing unit per engine breaks the SWQ anchor.
* Coarser sampling degrades website-fingerprinting accuracy.
"""

import numpy as np

from repro.covert.channel import run_devtlb_covert_channel, run_swq_covert_channel
from repro.dsa.device import DsaDeviceConfig
from repro.dsa.engine import EngineTiming
from repro.experiments import fig11_wf_classification
from repro.experiments.wf_common import WfSamplerSettings
from repro.mitigation.partitioning import (
    hardware_partitioned_config,
    privileged_dmwr_config,
)
from repro.virt.system import CloudSystem


def test_bench_ablation_pasid_partitioning_kills_devtlb_channel(once):
    def run_pair_safe():
        from repro.errors import ConfigurationError

        baseline = run_devtlb_covert_channel(payload_bits=128, seed=7)
        try:
            partitioned_error = None
            partitioned = run_devtlb_covert_channel(
                payload_bits=128,
                seed=7,
                system=CloudSystem(seed=7, device_config=hardware_partitioned_config()),
            )
        except ConfigurationError as exc:  # receiver never hears a preamble
            partitioned = None
            partitioned_error = exc
        return baseline, partitioned, partitioned_error

    baseline, partitioned, error = once(run_pair_safe)
    print(f"\nbaseline BER {baseline.error_rate * 100:.1f}%")
    assert baseline.error_rate < 0.15
    # Under partitioning the channel either never synchronizes or decodes
    # garbage (BER near 50%).
    if partitioned is None:
        print(f"partitioned channel failed to synchronize: {error}")
    else:
        print(f"partitioned BER {partitioned.error_rate * 100:.1f}%")
        assert partitioned.error_rate > 0.35


def test_bench_ablation_privileged_dmwr_kills_swq_channel(once):
    def run_pair():
        from repro.errors import ConfigurationError

        baseline = run_swq_covert_channel(payload_bits=96, seed=9)
        try:
            mitigated = run_swq_covert_channel(
                payload_bits=96,
                seed=9,
                system=CloudSystem(seed=9, device_config=privileged_dmwr_config()),
            )
            error = None
        except ConfigurationError as exc:
            mitigated, error = None, exc
        return baseline, mitigated, error

    baseline, mitigated, error = once(run_pair)
    print(f"\nbaseline BER {baseline.error_rate * 100:.1f}%")
    assert baseline.error_rate < 0.25
    if mitigated is None:
        print(f"mitigated channel failed to synchronize: {error}")
    else:
        print(f"mitigated BER {mitigated.error_rate * 100:.1f}%")
        assert mitigated.error_rate > 0.35


def test_bench_ablation_subentry_slots(once):
    """With multiple slots per sub-entry the attacker's entry survives
    a single victim access, silencing the channel."""
    from repro.ats.devtlb import DevTlbConfig
    from repro.core.devtlb_attack import DsaDevTlbAttack
    from repro.dsa.descriptor import make_noop
    from repro.virt.system import AttackTopology

    def eviction_rate(slots: int) -> float:
        config = DsaDeviceConfig(devtlb=DevTlbConfig(slots_per_subentry=slots))
        system = CloudSystem(seed=11, device_config=config)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        # Fixed mid-band threshold: online calibration assumes the
        # single-slot structure (its self-evictor stops evicting once a
        # sub-entry holds two slots), which is itself part of the ablation.
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        victim = handles.victim
        v_portal = victim.portal(handles.victim_wq)
        v_comp = victim.comp_record()
        attack.prime()
        hits = 0
        for _ in range(40):
            v_portal.submit_wait(make_noop(victim.pasid, v_comp))
            hits += attack.probe().evicted
        return hits / 40

    def run_sweep():
        return {slots: eviction_rate(slots) for slots in (1, 2, 4)}

    rates = once(run_sweep)
    print(f"\neviction rate by slots/sub-entry: {rates}")
    assert rates[1] > 0.9  # the real device: every victim op visible
    assert rates[2] < 0.2  # one extra slot already hides the victim
    assert rates[4] < 0.2


def test_bench_ablation_engine_concurrency_breaks_swq_anchor(once):
    """A second processing unit drains the fillers behind the anchor,
    so the armed queue never stays full."""
    from repro.core.swq_attack import DsaSwqAttack
    from repro.hw.units import us_to_cycles
    from repro.virt.system import AttackTopology

    def detection_rate(concurrency: int) -> float:
        config = DsaDeviceConfig(
            timing=EngineTiming(concurrent_descriptors=concurrency)
        )
        system = CloudSystem(seed=13, device_config=config)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 21)
        victim = handles.victim
        v_portal = victim.portal(0)
        from repro.dsa.descriptor import Descriptor
        from repro.dsa.opcodes import DescriptorFlags, Opcode

        noop = Descriptor(
            opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
        )
        detections = 0
        for _ in range(20):
            system.timeline.schedule_after_us(15, lambda: v_portal.enqcmd(noop))
            result = attack.run_round(
                idle_cycles=us_to_cycles(30), timeline=system.timeline
            )
            detections += result.victim_detected
        return detections / 20

    def run_sweep():
        return {c: detection_rate(c) for c in (1, 2)}

    rates = once(run_sweep)
    print(f"\nSWQ detection rate by engine concurrency: {rates}")
    assert rates[1] > 0.9  # serial engine: the attack works
    assert rates[2] < 0.5  # pipelined engine: fillers drain, probe blind


def test_bench_ablation_arbiter_policy(once):
    """The WQ-priority arbiter protects work-descriptor latency from
    batch traffic; a FIFO arbiter would let a batch head-of-line-block it
    (which is also why batch descriptors can't congest the real queue)."""
    from repro.dsa.arbiter import ArbiterPolicy
    from repro.dsa.batch import write_batch_list
    from repro.dsa.descriptor import BatchDescriptor, make_memcpy, make_noop
    from repro.virt.system import AttackTopology

    def work_latency_behind_batch(policy: ArbiterPolicy) -> float:
        config = DsaDeviceConfig(arbiter_policy=policy)
        system = CloudSystem(seed=21, device_config=config)
        system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        proc = system.vms["attacker-vm"].process("attacker")
        portal = proc.portal(0)
        list_addr = proc.buffer(4096)
        src, dst = proc.buffer(1 << 20), proc.buffer(1 << 20)
        children = [
            make_memcpy(proc.pasid, src, dst, 1 << 18, proc.comp_record())
            for _ in range(4)
        ]
        write_batch_list(proc.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=proc.pasid, desc_list_addr=list_addr, count=4,
            completion_addr=proc.comp_record(),
        )
        latencies = []
        for _ in range(10):
            portal.enqcmd(batch)
            system.clock.advance(3_000)  # let the fetch land first
            system.device.advance_to(system.clock.now)
            work = make_noop(proc.pasid, proc.comp_record())
            ticket = portal.submit(work)
            portal.wait(ticket)
            latencies.append(ticket.completion_time - ticket.enqueue_time)
            system.clock.advance(100_000_000)
            system.device.advance_to(system.clock.now)
        return float(np.mean(latencies))

    def run_pair():
        return {
            "wq-priority": work_latency_behind_batch(ArbiterPolicy.WQ_PRIORITY),
            "fifo": work_latency_behind_batch(ArbiterPolicy.FIFO),
        }

    latencies = once(run_pair)
    print(f"\nwork latency behind a batch burst: {latencies}")
    # Under FIFO the batched memcpys run first; the real policy keeps the
    # work descriptor fast.
    assert latencies["fifo"] > 3 * latencies["wq-priority"]


def test_bench_ablation_swq_wq_size(once):
    """SWQ covert-channel sensitivity to the queue size.

    Larger queues make arming slower (more fillers per round) but the
    channel works at any size >= 3; the congest cost eats into the
    sensing span at very large sizes.
    """
    from repro.covert.channel import run_swq_covert_channel
    from repro.covert.protocol import CovertConfig

    def run_sweep():
        rates = {}
        # Bigger queues need longer windows: arming and draining
        # wq_size-1 fillers eats into the sensing span.
        for wq_size, window_us in ((4, 110.0), (16, 110.0), (64, 450.0)):
            result = run_swq_covert_channel(
                payload_bits=96,
                seed=15,
                wq_size=wq_size,
                config=CovertConfig(
                    bit_window_us=window_us,
                    sender_jitter_us=21.0,
                    preamble_ones=16,
                    preamble_burst_bits=4,
                ),
            )
            rates[(wq_size, window_us)] = result.error_rate
        return rates

    rates = once(run_sweep)
    print(f"\nSWQ covert BER by (wq_size, window): {rates}")
    for (wq_size, _), ber in rates.items():
        assert ber < 0.30, f"channel unusable at wq_size={wq_size}"
    # The rate cost of large queues: 110 us windows work at wq<=16 but
    # wq=64 needs ~4x longer windows (see the sweep's window column).


def test_bench_ablation_sampling_period(once):
    """Website-fingerprinting accuracy degrades as sampling coarsens."""

    def accuracy_at(period_us: float, samples_per_slot: int) -> float:
        result = fig11_wf_classification.run(
            sites=4,
            visits_per_site=6,
            settings=WfSamplerSettings(
                sample_period_us=period_us,
                samples_per_slot=samples_per_slot,
                slots=100,
            ),
            epochs=30,
            hidden=10,
            seed=500,
        )
        return result.bilstm_accuracy

    def run_sweep():
        return {
            "fine (100us)": accuracy_at(100.0, 40),
            "coarse (2000us)": accuracy_at(2000.0, 2),
        }

    accuracies = once(run_sweep)
    print(f"\nWF accuracy by sampling period: {accuracies}")
    assert accuracies["fine (100us)"] >= accuracies["coarse (2000us)"]
