"""Fig. 11 / Section VI-B — website fingerprinting classification.

Reduced scale (10 sites x 10 visits vs. the paper's 100 x 200); the
pipeline is identical and scales linearly via the ``run`` parameters.
"""

from repro.experiments import fig11_wf_classification


def test_bench_fig11_wf_classification(once):
    result = once(fig11_wf_classification.run)
    print()
    print(fig11_wf_classification.report(result))
    # Paper: 96.5% on a 15-site subset (chance here is 10%).
    assert result.bilstm_accuracy >= 0.75
