"""Fig. 13 / Section VI-D — LLM inference fingerprinting."""

from repro.experiments import fig13_llm


def test_bench_fig13_llm(once):
    result = once(fig13_llm.run, traces_per_model=8)
    print()
    print(fig13_llm.report(result))
    # Paper: 98.6% over 8 models (chance: 12.5%).
    assert result.bilstm_accuracy >= 0.85
    assert result.bilstm_accuracy >= result.baseline_accuracy
