"""Wall-clock scaling of the sharded executor on the fig09 covert plan.

Runs the same :func:`fig09_covert.trial_plan` at 1, 2, and 4 workers
(one-shot spawn executor), verifies the finalized artifacts are
byte-identical across worker counts, and records the measured timings
in ``BENCH_parallel.json`` at the repo root (override the path with
``BENCH_PARALLEL_PATH``).

The ≥ 2.5× speedup target at 4 workers is asserted only on machines
with at least 4 CPUs — on fewer cores the trials time-slice a single
core and spawned interpreters are pure overhead, so the test instead
bounds that overhead.  Either way the measured numbers and the CPU
count land in the JSON record, so the artifact states exactly what was
(and was not) demonstrated.

A second lane times the persistent pool executor: after one untimed
warm-up run, repeated small runs against a warm 2-worker pool must be
at least ``POOL_REUSE_RATIO_FLOOR`` times faster in aggregate than the
same runs under the spawn executor (which pays interpreter startup and
plan construction every time).  That gate holds at any CPU count —
amortizing startup is precisely what a persistent pool buys on a
starved machine.
"""

import json
import os
import pickle
import time
from pathlib import Path

from repro.experiments import fig09_covert
from repro.experiments.pool import shutdown_pools
from repro.experiments.runner import run_experiment

FIG09_CONFIG = {"payload_bits": 192, "runs": 2}
WORKER_COUNTS = (1, 2, 4)
TARGET_SPEEDUP_AT_4 = 2.5
#: The pool-reuse lane: a deliberately tiny plan, so per-run compute is
#: negligible and the measured ratio isolates startup amortization.
POOL_CONFIG = {"payload_bits": 48, "runs": 1}
POOL_REPEATS = 3
POOL_REUSE_RATIO_FLOOR = 3.0
#: Single-core fallback bound: sharding may cost spawn + queue overhead,
#: but never more than this multiple of the serial wall-clock plus a
#: fixed interpreter-startup allowance.
OVERHEAD_FACTOR = 2.5
OVERHEAD_ALLOWANCE_S = 10.0
#: Hard ceiling on wall_clock(4 workers) / wall_clock(serial) when the
#: machine has a single CPU — the pure price of spawning four worker
#: interpreters that then time-slice one core.  Measured ~5.4x in the
#: reference container; regressions (e.g. heavier worker imports or
#: per-shard re-initialization) push it up long before they would trip
#: the allowance-padded limit above.
SPAWN_OVERHEAD_RATIO_LIMIT = 8.0

BENCH_PATH = Path(
    os.environ.get(
        "BENCH_PARALLEL_PATH",
        Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
    )
)


# Scaling benchmarks time the real host: injectable clocks would defeat
# the measurement, hence the DET002 suppressions below.
def _timed_run(workers: int) -> tuple[float, bytes]:
    plan = fig09_covert.trial_plan(**FIG09_CONFIG)
    source = fig09_covert.plan_source(**FIG09_CONFIG) if workers > 1 else None
    start = time.perf_counter()  # repro-lint: ignore[DET002]
    outcome = run_experiment(
        plan,
        workers=workers,
        executor="spawn" if workers > 1 else "auto",
        plan_source=source,
    )
    elapsed = time.perf_counter() - start  # repro-lint: ignore[DET002]
    assert outcome.status == "completed", outcome.status
    return elapsed, pickle.dumps(outcome.result, protocol=4)


def _small_run(executor: str) -> tuple[float, bytes]:
    plan = fig09_covert.trial_plan(**POOL_CONFIG)
    source = fig09_covert.plan_source(**POOL_CONFIG)
    start = time.perf_counter()  # repro-lint: ignore[DET002]
    outcome = run_experiment(
        plan, workers=2, executor=executor, plan_source=source
    )
    elapsed = time.perf_counter() - start  # repro-lint: ignore[DET002]
    assert outcome.status == "completed", outcome.status
    return elapsed, pickle.dumps(outcome.result, protocol=4)


def _pool_reuse_lane() -> dict:
    """Repeated small runs: warm pool vs. fresh spawns each time."""
    serial = run_experiment(fig09_covert.trial_plan(**POOL_CONFIG))
    serial_artifact = pickle.dumps(serial.result, protocol=4)
    try:
        _small_run("pool")  # untimed warm-up: spawn workers, build plan
        pool_total = 0.0
        for _ in range(POOL_REPEATS):
            elapsed, artifact = _small_run("pool")
            assert artifact == serial_artifact, (
                "pool artifact diverges from serial"
            )
            pool_total += elapsed
    finally:
        shutdown_pools()
    spawn_total = 0.0
    for _ in range(POOL_REPEATS):
        elapsed, artifact = _small_run("spawn")
        assert artifact == serial_artifact, (
            "spawn artifact diverges from serial"
        )
        spawn_total += elapsed
    return {
        "config": POOL_CONFIG,
        "repeats": POOL_REPEATS,
        "pool_total_s": round(pool_total, 3),
        "spawn_total_s": round(spawn_total, 3),
        "artifacts_identical_to_serial": True,
    }


def test_bench_parallel_scaling():
    cpus = os.cpu_count() or 1
    timings: dict[int, float] = {}
    artifacts: dict[int, bytes] = {}
    for workers in WORKER_COUNTS:
        timings[workers], artifacts[workers] = _timed_run(workers)

    for workers in WORKER_COUNTS[1:]:
        assert artifacts[workers] == artifacts[1], (
            f"artifact at {workers} workers diverges from serial"
        )

    reuse = _pool_reuse_lane()
    pool_reuse_ratio = reuse["spawn_total_s"] / max(
        reuse["pool_total_s"], 1e-9
    )

    speedup = {w: timings[1] / timings[w] for w in WORKER_COUNTS}
    spawn_overhead_ratio = timings[4] / timings[1]
    record = {
        "experiment": "fig09_covert",
        "config": FIG09_CONFIG,
        "cpu_count": cpus,
        "wall_clock_s": {str(w): round(timings[w], 3) for w in WORKER_COUNTS},
        "speedup_vs_serial": {
            str(w): round(speedup[w], 3) for w in WORKER_COUNTS
        },
        "target_speedup_at_4_workers": TARGET_SPEEDUP_AT_4,
        "target_enforced": cpus >= 4,
        "spawn_overhead_ratio": round(spawn_overhead_ratio, 3),
        "spawn_overhead_ratio_limit": SPAWN_OVERHEAD_RATIO_LIMIT,
        "spawn_overhead_enforced": cpus == 1,
        "artifacts_identical_across_worker_counts": True,
        "pool_reuse": reuse,
        "pool_reuse_ratio": round(pool_reuse_ratio, 3),
        "pool_reuse_ratio_floor": POOL_REUSE_RATIO_FLOOR,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\nparallel scaling on {cpus} CPU(s): " + ", ".join(
        f"{w}w={timings[w]:.2f}s ({speedup[w]:.2f}x)" for w in WORKER_COUNTS
    ))

    if cpus >= 4:
        assert speedup[4] >= TARGET_SPEEDUP_AT_4, (
            f"expected >= {TARGET_SPEEDUP_AT_4}x at 4 workers on {cpus} "
            f"CPUs, measured {speedup[4]:.2f}x"
        )
    else:
        limit = OVERHEAD_FACTOR * timings[1] + OVERHEAD_ALLOWANCE_S
        assert timings[4] <= limit, (
            f"sharding overhead out of bounds on {cpus} CPU(s): "
            f"{timings[4]:.2f}s at 4 workers vs limit {limit:.2f}s"
        )
        if cpus == 1:
            assert spawn_overhead_ratio <= SPAWN_OVERHEAD_RATIO_LIMIT, (
                f"spawn overhead ratio {spawn_overhead_ratio:.2f}x exceeds "
                f"the {SPAWN_OVERHEAD_RATIO_LIMIT}x single-CPU ceiling"
            )

    # Pool-reuse gate: holds at any CPU count — a warm pool skips the
    # interpreter spawn + plan rebuild the spawn executor pays per run.
    assert pool_reuse_ratio >= POOL_REUSE_RATIO_FLOOR, (
        f"pool reuse ratio {pool_reuse_ratio:.2f}x below the "
        f"{POOL_REUSE_RATIO_FLOOR}x floor "
        f"(pool {reuse['pool_total_s']}s vs spawn {reuse['spawn_total_s']}s "
        f"over {POOL_REPEATS} repeated runs)"
    )
