"""Invariant-monitor overhead on the Fig. 4 hot path.

The monitor's contract is "cheap enough to leave on in sampling mode":
every probe submission pays a handful of O(1) ``note()`` calls, and the
full audits amortize over ``sample_every`` events.  This benchmark times
the Fig. 4 probe loop (small memcpy ``submit_wait``, the latency-channel
hot path) bare and monitored and holds sampling mode to the documented
budget (see ``docs/invariants.md``):

* **sampling** (``sample_every=64``): < ``SAMPLING_BUDGET`` = 1.8x bare
  (measured ~1.4x)
* **strict** is reported for reference only — it audits at every event
  and is priced for soak/chaos runs, not figures.
"""

import time

from repro.dsa.descriptor import make_memcpy
from repro.invariants import InvariantMonitor

from tests.conftest import build_host

#: Documented ceiling for sampling-mode slowdown on the probe hot path.
SAMPLING_BUDGET = 1.8

_PROBES = 800
_REPEATS = 3


def _probe_loop(mode: str | None, probes: int = _PROBES) -> float:
    """Seconds for *probes* Fig. 4-style probe submissions."""
    host = build_host(seed=9)
    if mode is not None:
        monitor = InvariantMonitor(mode=mode, sample_every=64)
        monitor.attach_device(host.device)
    proc = host.new_process()
    src = proc.buffer(4096)
    dst = proc.buffer(4096)
    comp = proc.comp_record()
    descriptor = make_memcpy(proc.pasid, src, dst, 256, comp)
    # Benchmarks measure the real host: injectable clocks would defeat
    # the measurement.
    start = time.perf_counter()  # repro-lint: ignore[DET002]
    for _ in range(probes):
        proc.portal.submit_wait(descriptor)
    return time.perf_counter() - start  # repro-lint: ignore[DET002]


def _best(mode: str | None) -> float:
    return min(_probe_loop(mode) for _ in range(_REPEATS))


def test_bench_invariants_overhead(once):
    def measure():
        bare = _best(None)
        sampling = _best("sampling")
        strict = _best("strict")
        return bare, sampling, strict

    bare, sampling, strict = once(measure)
    sampling_ratio = sampling / bare
    strict_ratio = strict / bare
    print()
    print(
        f"invariants overhead on {_PROBES} probes: bare {bare * 1e3:.1f} ms,"
        f" sampling {sampling * 1e3:.1f} ms ({sampling_ratio:.2f}x),"
        f" strict {strict * 1e3:.1f} ms ({strict_ratio:.2f}x)"
    )
    assert sampling_ratio < SAMPLING_BUDGET, (
        f"sampling-mode monitor costs {sampling_ratio:.2f}x on the probe"
        f" hot path; the documented budget is {SAMPLING_BUDGET}x"
    )
    # Sanity, not a budget: strict must stay within an order of magnitude
    # so soak runs remain tractable.
    assert strict_ratio < 10.0
