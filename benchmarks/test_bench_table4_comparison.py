"""Table IV — comparison against prior cross-core/cross-VM attacks."""

from repro.experiments import table4_comparison


def test_bench_table4_comparison(once):
    result = once(table4_comparison.run)
    print()
    print(table4_comparison.report(result))
    assert result.devtlb_fastest_covert
    ours = result.ours
    assert all(r.survives_pasid == "yes" for r in ours)
