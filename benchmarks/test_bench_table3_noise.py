"""Table III — attack robustness across noisy environments."""

from repro.experiments import table3_noise


def test_bench_table3_noise(once):
    result = once(
        table3_noise.run,
        repeats=3,
        covert_bits=160,
        keystrokes=96,
        wf_sites=4,
        wf_visits=5,
        llm_traces=4,
        llm_models=4,
    )
    print()
    print(table3_noise.report(result))
    assert len(result.rows) == 6
    # Paper's claim: noise moves nothing outside the quiet-local CI.
    within = sum(row.noisy_within_ci for row in result.rows)
    assert within >= 5  # allow one small-sample outlier at reduced scale
