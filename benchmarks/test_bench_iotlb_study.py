"""Extension: IOTLB capacity reverse engineering via probe latency."""

from repro.experiments import iotlb_study


def test_bench_iotlb_study(once):
    result = once(iotlb_study.run)
    print()
    print(iotlb_study.report(result))
    assert result.inferred_capacity == result.configured_capacity
    assert result.knee_matches_configuration
