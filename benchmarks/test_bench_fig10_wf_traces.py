"""Fig. 10 — per-site DevTLB miss traces."""

from repro.experiments import fig10_wf_traces


def test_bench_fig10_wf_traces(once):
    result = once(fig10_wf_traces.run)
    print()
    print(fig10_wf_traces.report(result))
    assert result.traces_have_activity
    assert result.signatures_differ
    assert result.slots == 250  # the paper's 250-slot trace
