"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures through
``repro.experiments`` and prints the text form of that artifact, so a
``pytest benchmarks/ --benchmark-only -s`` run reproduces the evaluation
section end to end.  Each experiment is expensive, so benchmarks run
single-round via ``benchmark.pedantic``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run *fn* exactly once under the benchmark timer and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
