"""Tests for VPP/memif, website signatures, SSH sessions, and LLM models."""

import numpy as np
import pytest

from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.dto import DtoRuntime
from repro.workloads.llm import (
    LLM_ZOO,
    LlmBackend,
    LlmInferenceWorkload,
    model_by_name,
)
from repro.workloads.ssh import SshKeystrokeSession
from repro.workloads.vpp import MEMIF_SLOT_BYTES, PacketEvent, VppVictim
from repro.workloads.websites import TOP_100_SITES, WebsiteProfile, top_sites


@pytest.fixture
def system():
    system = CloudSystem(seed=77)
    system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    return system


@pytest.fixture
def victim(system):
    return system.vms["victim-vm"].process("victim")


class TestMemif:
    def test_packet_becomes_dsa_copy(self, system, victim):
        vpp = VppVictim(victim, wq_id=1)
        before = system.device.stats.submissions_accepted
        vpp.interface.transfer_packet(1000)
        assert system.device.stats.submissions_accepted == before + 1
        assert vpp.interface.packets_transferred == 1
        assert vpp.interface.bytes_transferred == MEMIF_SLOT_BYTES

    def test_large_packet_rounds_to_slots(self, system, victim):
        vpp = VppVictim(victim, wq_id=1)
        vpp.interface.transfer_packet(MEMIF_SLOT_BYTES + 1)
        assert vpp.interface.bytes_transferred == 2 * MEMIF_SLOT_BYTES

    def test_schedule_trace(self, system, victim):
        vpp = VppVictim(victim, wq_id=1)
        packets = [PacketEvent(time_us=10.0 * i, size_bytes=1500) for i in range(5)]
        count = vpp.schedule_trace(system.timeline, packets, system.clock.now)
        assert count == 5
        system.timeline.idle_for_us(100)
        assert vpp.interface.packets_transferred == 5

    def test_invalid_packet_rejected(self):
        with pytest.raises(ValueError):
            PacketEvent(time_us=0, size_bytes=0)
        with pytest.raises(ValueError):
            PacketEvent(time_us=-1, size_bytes=100)


class TestWebsiteProfiles:
    def test_top_sites_count(self):
        assert len(top_sites(100)) == 100
        assert len(TOP_100_SITES) == 100
        assert len(set(TOP_100_SITES)) == 100

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            top_sites(0)
        with pytest.raises(ValueError):
            top_sites(101)

    def test_profiles_are_deterministic(self):
        a = WebsiteProfile.from_name("example.com")
        b = WebsiteProfile.from_name("example.com")
        assert a == b

    def test_different_sites_differ(self):
        a = WebsiteProfile.from_name("google.com")
        b = WebsiteProfile.from_name("youtube.com")
        assert a.waves != b.waves

    def test_visits_vary_but_share_shape(self):
        profile = WebsiteProfile.from_name("github.com")
        rng = np.random.default_rng(0)
        v1 = profile.generate_visit(rng)
        v2 = profile.generate_visit(rng)
        assert v1 != v2
        # Same order of magnitude of traffic across visits.
        assert 0.5 < len(v1) / len(v2) < 2.0

    def test_visit_events_sorted_and_bounded(self):
        profile = WebsiteProfile.from_name("reddit.com")
        visit = profile.generate_visit(np.random.default_rng(3))
        times = [e.time_us for e in visit]
        assert times == sorted(times)
        assert all(0 <= t < profile.total_duration_us for t in times)

    def test_distinct_sites_have_distinct_slot_histograms(self):
        """The attack's feature: per-slot packet counts differ by site."""
        rng = np.random.default_rng(5)
        slots = 50
        histograms = []
        for name in ("google.com", "netflix.com", "arxiv.org"):
            profile = WebsiteProfile.from_name(name)
            visit = profile.generate_visit(rng)
            hist = np.zeros(slots)
            for event in visit:
                hist[min(int(event.time_us / 20_000), slots - 1)] += 1
            histograms.append(hist / max(hist.sum(), 1))
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.abs(histograms[i] - histograms[j]).sum() > 0.2


class TestSshSession:
    def test_ground_truth_monotonic(self, system, victim):
        system.open_portal(victim, 1) if 1 not in victim.portals else None
        dto = DtoRuntime(victim, wq_id=1)
        session = SshKeystrokeSession(dto, np.random.default_rng(1))
        events = session.keystroke_times("ssh root")
        assert len(events) == 8
        times = [e.time_us for e in events]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_typing_produces_dsa_activity(self, system, victim):
        dto = DtoRuntime(victim, wq_id=1)
        session = SshKeystrokeSession(dto, np.random.default_rng(2))
        events = session.schedule_typing(system.timeline, "ls", system.clock.now)
        system.timeline.idle_for_us(events[-1].time_us + 10_000)
        # Two buffers per keystroke, both above DTO_MIN_BYTES.
        assert dto.stats.offloaded_calls == 2 * len(events)

    def test_interkey_delays_plausible(self, system, victim):
        dto = DtoRuntime(victim, wq_id=1)
        session = SshKeystrokeSession(dto, np.random.default_rng(3))
        events = session.keystroke_times("x" * 200)
        deltas = np.diff([e.time_us for e in events]) / 1000.0  # ms
        assert 80 < np.median(deltas) < 350


class TestLlmZoo:
    def test_table2_models_present(self):
        names = {m.name for m in LLM_ZOO}
        assert len(LLM_ZOO) == 8
        assert "tinystories-15m" in names
        assert "llama2-7b" in names
        assert "qwen3-4b-moe" in names

    def test_lookup(self):
        assert model_by_name("gemma3-1b").backend is LlmBackend.GPU
        with pytest.raises(KeyError):
            model_by_name("gpt-5")

    def test_bigger_models_are_slower(self):
        by_size = sorted(LLM_ZOO, key=lambda m: m.parameters_m)
        rates = [m.tokens_per_second for m in by_size]
        # Not strictly monotone (backends differ) but the extremes hold.
        assert rates[0] > rates[-1]

    def test_inference_schedules_activity(self, system, victim):
        dto = DtoRuntime(victim, wq_id=1)
        workload = LlmInferenceWorkload(
            dto, model_by_name("tinystories-15m"), np.random.default_rng(4)
        )
        tokens = workload.schedule_inference(
            system.timeline, system.clock.now, duration_us=100_000
        )
        assert tokens > 5
        system.timeline.idle_for_us(120_000)
        assert dto.stats.offloaded_calls > 0

    def test_gpu_backend_frontloads_weights(self, system, victim):
        dto = DtoRuntime(victim, wq_id=1)
        workload = LlmInferenceWorkload(
            dto, model_by_name("gemma3-1b"), np.random.default_rng(4)
        )
        workload.schedule_inference(system.timeline, system.clock.now, duration_us=50_000)
        system.timeline.idle_for_us(10_000)  # only the load burst window
        load_calls = dto.stats.offloaded_calls
        assert load_calls >= 10  # weight shards land up front

    def test_distinct_models_distinct_rates(self, system, victim):
        dto = DtoRuntime(victim, wq_id=1)
        rng = np.random.default_rng(9)
        counts = {}
        for name in ("tinystories-15m", "llama2-7b"):
            before = dto.stats.offloaded_calls
            workload = LlmInferenceWorkload(dto, model_by_name(name), rng)
            workload.schedule_inference(
                system.timeline, system.clock.now, duration_us=200_000
            )
            system.timeline.idle_for_us(250_000)
            counts[name] = dto.stats.offloaded_calls - before
        assert counts["tinystories-15m"] != counts["llama2-7b"]
