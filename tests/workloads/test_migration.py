"""Tests for the checkpoint-migration and deduplication workloads."""

import numpy as np
import pytest

from repro.hw.units import PAGE_SIZE
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.migration import CheckpointMigrator, MemoryDeduplicator


@pytest.fixture
def system():
    system = CloudSystem(seed=51)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    return system


@pytest.fixture
def victim(system):
    return system.vms["victim-vm"].process("victim")


class TestCheckpointMigrator:
    def _region(self, victim, pages=4):
        va = victim.buffer(pages * PAGE_SIZE)
        rng = np.random.default_rng(0)
        victim.write(va, rng.bytes(pages * PAGE_SIZE))
        return va

    def test_first_round_ships_everything(self, victim):
        va = self._region(victim)
        migrator = CheckpointMigrator(victim, va, pages=4)
        assert migrator.checkpoint() == 4
        assert migrator.stats.pages_shipped_full == 4
        assert migrator.verify()

    def test_clean_round_ships_nothing(self, victim):
        va = self._region(victim)
        migrator = CheckpointMigrator(victim, va, pages=4)
        migrator.checkpoint()
        assert migrator.checkpoint() == 0
        assert migrator.verify()

    def test_dirty_page_shipped_as_delta(self, victim):
        va = self._region(victim)
        migrator = CheckpointMigrator(victim, va, pages=4)
        migrator.checkpoint()
        victim.write(va + 2 * PAGE_SIZE + 100, b"DIRTYDIRTY")
        shipped = migrator.checkpoint()
        assert shipped == 1
        assert migrator.stats.pages_shipped_delta == 1
        assert migrator.stats.delta_bytes < PAGE_SIZE
        assert migrator.verify()

    def test_fully_rewritten_page_falls_back_to_full_copy(self, victim):
        va = self._region(victim)
        migrator = CheckpointMigrator(victim, va, pages=2)
        migrator.checkpoint()
        victim.write(va, np.random.default_rng(9).bytes(PAGE_SIZE))
        migrator.checkpoint()
        # A page rewritten wholesale produces a delta >= page size, so the
        # migrator ships it as a plain copy.
        assert migrator.stats.pages_shipped_full == 3  # 2 initial + 1 fallback
        assert migrator.verify()

    def test_bytes_saved_accounting(self, victim):
        va = self._region(victim)
        migrator = CheckpointMigrator(victim, va, pages=4)
        migrator.checkpoint()
        victim.write(va + 8, b"x" * 8)
        migrator.checkpoint()
        assert migrator.stats.bytes_saved > PAGE_SIZE // 2

    def test_zero_pages_rejected(self, victim):
        with pytest.raises(ValueError):
            CheckpointMigrator(victim, victim.buffer(), pages=0)


class TestMemoryDeduplicator:
    def test_identical_pages_merged(self, victim):
        pages = [victim.buffer(PAGE_SIZE) for _ in range(4)]
        for va in pages[:3]:
            victim.write(va, b"same content " * 100)
        victim.write(pages[3], b"different" * 100)
        dedup = MemoryDeduplicator(victim)
        merges = dedup.deduplicate(pages)
        assert merges == 2  # pages 1 and 2 merge into page 0
        assert dedup.stats.bytes_reclaimed == 2 * PAGE_SIZE

    def test_no_false_merges(self, victim):
        rng = np.random.default_rng(3)
        pages = [victim.buffer(PAGE_SIZE) for _ in range(5)]
        for va in pages:
            victim.write(va, rng.bytes(PAGE_SIZE))
        dedup = MemoryDeduplicator(victim)
        assert dedup.deduplicate(pages) == 0

    def test_crc_prefilter_limits_comparisons(self, victim):
        """Distinct pages (distinct CRCs) require zero byte compares."""
        rng = np.random.default_rng(5)
        pages = [victim.buffer(PAGE_SIZE) for _ in range(6)]
        for va in pages:
            victim.write(va, rng.bytes(PAGE_SIZE))
        dedup = MemoryDeduplicator(victim)
        dedup.deduplicate(pages)
        assert dedup.stats.comparisons == 0

    def test_migration_visible_to_devtlb_attacker(self, system, victim):
        """Checkpointing is a DSA workload: an attacker sees it."""
        from repro.core.devtlb_attack import DsaDevTlbAttack

        attacker = system.vms["attacker-vm"].process("attacker")
        attack = DsaDevTlbAttack(attacker, wq_id=0)
        attack.calibrate(samples=30)
        attack.prime()
        quiet = attack.probe().evicted

        va = victim.buffer(2 * PAGE_SIZE)
        migrator = CheckpointMigrator(victim, va, pages=2)
        migrator.checkpoint()
        busy = attack.probe().evicted
        assert not quiet and busy
