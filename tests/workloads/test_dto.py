"""Tests for the DTO transparent-offload shim."""

import numpy as np
import pytest

from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.dto import DTO_MIN_BYTES, DtoRuntime


@pytest.fixture
def system():
    system = CloudSystem(seed=21)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    return system


@pytest.fixture
def victim(system):
    return system.vms["victim-vm"].process("victim")


@pytest.fixture
def dto(victim):
    return DtoRuntime(victim, wq_id=0)


class TestOffloadThreshold:
    def test_large_memcpy_offloaded(self, dto, victim):
        src = victim.buffer(DTO_MIN_BYTES * 2)
        dst = victim.buffer(DTO_MIN_BYTES * 2)
        dto.memcpy(dst, src, DTO_MIN_BYTES)
        assert dto.stats.offloaded_calls == 1
        assert dto.stats.cpu_calls == 0

    def test_small_memcpy_stays_on_cpu(self, dto, victim):
        src = victim.buffer()
        dst = victim.buffer()
        victim.write(src, b"tiny")
        dto.memcpy(dst, src, 4)
        assert dto.stats.offloaded_calls == 0
        assert dto.stats.cpu_calls == 1
        assert victim.read(dst, 4) == b"tiny"

    def test_offloaded_copy_lands_after_completion(self, dto, victim, system):
        src = victim.buffer(DTO_MIN_BYTES * 2)
        dst = victim.buffer(DTO_MIN_BYTES * 2)
        victim.write(src, b"payload!" * 1024)
        dto.memcpy(dst, src, DTO_MIN_BYTES)
        system.clock.advance(2_000_000)
        system.device.advance_to(system.clock.now)
        assert victim.read(dst, DTO_MIN_BYTES) == (b"payload!" * 1024)[:DTO_MIN_BYTES]

    def test_memset_offload(self, dto, victim, system):
        dst = victim.buffer(DTO_MIN_BYTES * 2)
        dto.memset(dst, 0x5A, DTO_MIN_BYTES)
        system.clock.advance(2_000_000)
        system.device.advance_to(system.clock.now)
        assert victim.read(dst, 16) == b"\x5a" * 16
        assert dto.stats.offloaded_calls == 1

    def test_memcmp_offload_equal(self, dto, victim):
        a = victim.buffer(DTO_MIN_BYTES * 2)
        b = victim.buffer(DTO_MIN_BYTES * 2)
        assert dto.memcmp(a, b, DTO_MIN_BYTES) == 0
        assert dto.stats.offloaded_calls == 1

    def test_memcmp_cpu_path_differs(self, dto, victim):
        a = victim.buffer()
        b = victim.buffer()
        victim.write(a, b"x")
        assert dto.memcmp(a, b, 1) == 1

    def test_custom_threshold(self, victim):
        dto = DtoRuntime(victim, wq_id=0, min_bytes=64)
        src = victim.buffer()
        dst = victim.buffer()
        dto.memcpy(dst, src, 64)
        assert dto.stats.offloaded_calls == 1

    def test_invalid_threshold_rejected(self, victim):
        with pytest.raises(ValueError):
            DtoRuntime(victim, wq_id=0, min_bytes=0)

    def test_offload_timestamps_recorded(self, dto, victim):
        src = victim.buffer(DTO_MIN_BYTES * 2)
        dst = victim.buffer(DTO_MIN_BYTES * 2)
        dto.memcpy(dst, src, DTO_MIN_BYTES)
        dto.memcpy(dst, src, DTO_MIN_BYTES)
        assert len(dto.stats.offload_timestamps) == 2
        assert dto.stats.offload_timestamps[0] < dto.stats.offload_timestamps[1]


class TestFullQueueBehavior:
    def test_degrades_to_cpu_when_queue_stays_full(self):
        system = CloudSystem(seed=5)
        handles = system.setup_topology(
            AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=4
        )
        attacker = handles.attacker
        from repro.core.swq_attack import DsaSwqAttack

        attack = DsaSwqAttack(attacker, wq_id=0, anchor_bytes=1 << 22)
        attack.congest()
        attack.probe()  # queue now completely full for the anchor's span

        victim = handles.victim
        dto = DtoRuntime(victim, wq_id=0, retries=1, retry_backoff_cycles=500)
        src = victim.buffer(DTO_MIN_BYTES * 2)
        dst = victim.buffer(DTO_MIN_BYTES * 2)
        victim.write(src, b"Z" * DTO_MIN_BYTES)
        dto.memcpy(dst, src, DTO_MIN_BYTES)
        assert dto.stats.dropped_submissions == 1
        # Correctness is preserved by the CPU fallback.
        assert victim.read(dst, DTO_MIN_BYTES) == b"Z" * DTO_MIN_BYTES
