"""Tests for background-tenant interference."""

import numpy as np
import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.background import BackgroundProfile, BackgroundTenant


def build_with_background(seed=71, profile=None):
    system = CloudSystem(seed=seed)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    noise_vm = system.create_vm("other-tenant-vm")
    noisy = noise_vm.spawn_process("tenant")
    system.open_portal(noisy, handles.victim_wq)
    tenant = BackgroundTenant(
        noisy, handles.victim_wq, profile, rng=np.random.default_rng(seed)
    )
    return system, handles, tenant


class TestBackgroundTenant:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BackgroundProfile(burst_rate_hz=0)
        with pytest.raises(ValueError):
            BackgroundProfile(burst_length=0)
        with pytest.raises(ValueError):
            BackgroundProfile(transfer_bytes=0)

    def test_scheduling_produces_submissions(self):
        system, handles, tenant = build_with_background()
        bursts = tenant.schedule(system.timeline, system.clock.now, duration_us=100_000)
        assert bursts > 0
        system.timeline.idle_for_us(120_000)
        assert tenant.submissions > 0

    def test_burst_rate_scales_load(self):
        """Burst counts over one horizon scale with the configured rate."""
        system_a, _, tenant_a = build_with_background(
            seed=5, profile=BackgroundProfile(burst_rate_hz=10.0)
        )
        system_b, _, tenant_b = build_with_background(
            seed=5, profile=BackgroundProfile(burst_rate_hz=400.0)
        )
        bursts_a = tenant_a.schedule(system_a.timeline, system_a.clock.now, 200_000)
        bursts_b = tenant_b.schedule(system_b.timeline, system_b.clock.now, 200_000)
        assert bursts_b > 5 * bursts_a

    def test_background_creates_devtlb_false_positives(self):
        """The attacker sees co-tenant activity as evictions."""
        system, handles, tenant = build_with_background(
            profile=BackgroundProfile(burst_rate_hz=2000.0)
        )
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=30)
        tenant.schedule(system.timeline, system.clock.now, duration_us=50_000)
        attack.prime()
        evictions = 0
        for _ in range(40):
            system.timeline.idle_for_us(1_000)
            evictions += attack.probe().evicted
        assert evictions > 5  # quiet system would read 0

    def test_no_background_no_evictions(self):
        system, handles, _ = build_with_background()
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=30)
        attack.prime()
        evictions = sum(
            attack.probe().evicted
            for _ in range(30)
            if not system.timeline.idle_for_us(1_000)
        )
        assert evictions == 0
