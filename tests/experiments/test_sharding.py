"""Property tests for the shard partition functions and dataset merging.

The parallel executor's equivalence guarantee rests on two algebraic
facts checked here with hypothesis:

* a shard strategy is a *partition* — every pending index lands in
  exactly one shard, no index is dropped, duplicated, or reordered
  within its shard, and exactly ``workers`` shards come back;
* :meth:`TraceDataset.merge_many` never drops, duplicates, or reorders
  rows, is associative over grouping, and therefore yields a stable
  ``content_sha256`` no matter how a sweep was split across runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.datasets import TraceDataset, _content_sha256
from repro.experiments.parallel import (
    SHARD_STRATEGIES,
    shard_contiguous,
    shard_interleave,
)

indices_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), max_size=200, unique=True
).map(sorted)
workers_strategy = st.integers(min_value=1, max_value=12)


@pytest.mark.parametrize("strategy", sorted(SHARD_STRATEGIES))
class TestShardPartition:
    @given(indices=indices_strategy, workers=workers_strategy)
    @settings(max_examples=200, deadline=None)
    def test_is_a_partition(self, strategy, indices, workers):
        shards = SHARD_STRATEGIES[strategy](indices, workers)
        assert len(shards) == workers
        flat = [index for shard in shards for index in shard]
        assert sorted(flat) == indices, "dropped or duplicated indices"

    @given(indices=indices_strategy, workers=workers_strategy)
    @settings(max_examples=200, deadline=None)
    def test_per_shard_order_preserved(self, strategy, indices, workers):
        for shard in SHARD_STRATEGIES[strategy](indices, workers):
            assert shard == sorted(shard)
            positions = [indices.index(i) for i in shard]
            assert positions == sorted(positions)

    @given(indices=indices_strategy, workers=workers_strategy)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, strategy, indices, workers):
        partition = SHARD_STRATEGIES[strategy]
        assert partition(indices, workers) == partition(indices, workers)

    def test_rejects_zero_workers(self, strategy):
        with pytest.raises(ValueError):
            SHARD_STRATEGIES[strategy]([0, 1, 2], 0)


class TestShardShapes:
    @given(indices=indices_strategy, workers=workers_strategy)
    @settings(max_examples=100, deadline=None)
    def test_interleave_round_robin(self, indices, workers):
        shards = shard_interleave(indices, workers)
        for worker, shard in enumerate(shards):
            assert shard == list(indices[worker::workers])

    @given(indices=indices_strategy, workers=workers_strategy)
    @settings(max_examples=100, deadline=None)
    def test_contiguous_blocks_balanced(self, indices, workers):
        shards = shard_contiguous(indices, workers)
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1
        assert sorted(sizes, reverse=True) == sizes, (
            "remainder must go to the earliest shards"
        )
        assert [i for shard in shards for i in shard] == indices


# ----------------------------------------------------------------------
# Dataset merge algebra
# ----------------------------------------------------------------------
_SLOTS = 5
_CLASSES = ("a", "b", "c")


def _dataset(rows: list[tuple[int, int]]) -> TraceDataset:
    """A tiny dataset whose rows are (label, fill) pairs — fill values
    make every row distinguishable so reordering or duplication shifts
    the checksum."""
    if rows:
        traces = np.array(
            [[fill + slot for slot in range(_SLOTS)] for _, fill in rows],
            dtype=np.int32,
        )
        labels = np.array([label for label, _ in rows], dtype=np.int64)
    else:
        traces = np.zeros((0, _SLOTS), dtype=np.int32)
        labels = np.zeros((0,), dtype=np.int64)
    return TraceDataset(traces=traces, labels=labels, class_names=_CLASSES)


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_CLASSES) - 1),
        st.integers(min_value=0, max_value=1_000),
    ),
    min_size=1,
    max_size=30,
)


class TestMergeMany:
    @given(chunks=st.lists(rows_strategy, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_never_drops_duplicates_or_reorders(self, chunks):
        merged = TraceDataset.merge_many([_dataset(rows) for rows in chunks])
        flat = [row for rows in chunks for row in rows]
        expected = _dataset(flat)
        assert np.array_equal(merged.traces, expected.traces)
        assert np.array_equal(merged.labels, expected.labels)
        assert merged.class_names == _CLASSES

    @given(
        chunks=st.lists(rows_strategy, min_size=2, max_size=6),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_associative_over_grouping(self, chunks, data):
        datasets = [_dataset(rows) for rows in chunks]
        split = data.draw(
            st.integers(min_value=1, max_value=len(datasets) - 1)
        )
        flat = TraceDataset.merge_many(datasets)
        grouped = TraceDataset.merge(
            TraceDataset.merge_many(datasets[:split]),
            TraceDataset.merge_many(datasets[split:]),
        )
        assert np.array_equal(flat.traces, grouped.traces)
        assert np.array_equal(flat.labels, grouped.labels)

    @given(chunks=st.lists(rows_strategy, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_content_sha256_stable_across_chunking(self, chunks):
        merged = TraceDataset.merge_many([_dataset(rows) for rows in chunks])
        expected = _dataset([row for rows in chunks for row in rows])
        assert _content_sha256(merged.traces, merged.labels) == _content_sha256(
            expected.traces, expected.labels
        )

    def test_mismatched_class_names_rejected(self):
        other = TraceDataset(
            traces=np.zeros((1, _SLOTS), dtype=np.int32),
            labels=np.zeros((1,), dtype=np.int64),
            class_names=("x", "y", "z"),
        )
        with pytest.raises(ValueError):
            TraceDataset.merge(_dataset([(0, 1)]), other)

    def test_mismatched_slots_rejected(self):
        other = TraceDataset(
            traces=np.zeros((1, _SLOTS + 1), dtype=np.int32),
            labels=np.zeros((1,), dtype=np.int64),
            class_names=_CLASSES,
        )
        with pytest.raises(ValueError):
            TraceDataset.merge(_dataset([(0, 1)]), other)
