"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "re", "fig04", "fig06", "fig09", "fig10", "fig11", "fig12",
            "fig13", "fig14", "table3", "table4", "iotlb", "openworld",
        }

    def test_every_module_has_run_and_report(self):
        for module, _ in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.report)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_run_one_fast_experiment(self, capsys):
        assert main(["re"]) == 0
        out = capsys.readouterr().out
        assert "reverse-engineering" in out
        assert "reproduced" in out
