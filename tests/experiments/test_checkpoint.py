"""Tests for the crash-safe persistence layer (atomic writes, run
manifests, trial journals)."""

import json
import os

import pytest

from repro.errors import CheckpointError
from repro.experiments.checkpoint import (
    MANIFEST_NAME,
    CheckpointJournal,
    RunManifest,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    canonical_json,
    config_hash,
)


class TestAtomicWrites:
    def test_writes_content(self, tmp_path):
        path = atomic_write_bytes(tmp_path / "a.bin", b"payload")
        assert path.read_bytes() == b"payload"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "er" / "a.txt", "x")
        assert path.read_text() == "x"

    def test_json_is_canonical(self, tmp_path):
        path = atomic_write_json(tmp_path / "a.json", {"b": 1, "a": 2})
        assert path.read_text() == '{"a":2,"b":1}\n'


class TestConfigHash:
    def test_key_order_does_not_matter(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_value_change_changes_hash(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_non_json_values_hash_via_repr(self):
        # Tuples/dataclasses in experiment configs must not crash hashing.
        assert config_hash({"sizes": (256, 1024)}) == config_hash(
            {"sizes": (256, 1024)}
        )

    def test_canonical_json_stable_for_tuples(self):
        assert canonical_json((1, 2)) == canonical_json((1, 2))


class TestRunManifest:
    def _manifest(self):
        return RunManifest(
            experiment="fig09",
            seed=7,
            config={"payload_bits": 48},
            config_hash=config_hash({"payload_bits": 48}),
        )

    def test_save_load_roundtrip(self, tmp_path):
        manifest = self._manifest()
        manifest.add_segment("start")
        manifest.save(tmp_path)
        loaded = RunManifest.load(tmp_path)
        assert loaded.experiment == "fig09"
        assert loaded.seed == 7
        assert loaded.config_hash == manifest.config_hash
        assert loaded.segments[0]["event"] == "start"
        assert loaded.segments[0]["pid"] == os.getpid()

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no run manifest"):
            RunManifest.load(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{ not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            RunManifest.load(tmp_path)

    def test_unknown_version_rejected(self, tmp_path):
        manifest = self._manifest()
        raw = manifest.to_json()
        raw["format_version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(raw))
        with pytest.raises(CheckpointError, match="version"):
            RunManifest.load(tmp_path)

    def test_missing_field_rejected(self, tmp_path):
        raw = self._manifest().to_json()
        del raw["config_hash"]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(raw))
        with pytest.raises(CheckpointError, match="missing field"):
            RunManifest.load(tmp_path)


class TestCheckpointJournal:
    def test_absent_journal_is_empty(self, tmp_path):
        journal = CheckpointJournal.load(tmp_path)
        assert len(journal) == 0

    def test_success_roundtrip(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record_success(0, "t/0", {"value": 3}, elapsed_s=0.5)
        reloaded = CheckpointJournal.load(tmp_path)
        assert "t/0" in reloaded
        assert reloaded.get("t/0").ok
        assert reloaded.load_payload("t/0") == {"value": 3}

    def test_failure_roundtrip(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record_failure(1, "t/1", ValueError("boom"), elapsed_s=0.1)
        entry = CheckpointJournal.load(tmp_path).get("t/1")
        assert not entry.ok
        assert entry.error_type == "ValueError"
        assert "boom" in entry.error

    def test_append_preserves_previous_entries(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record_success(0, "t/0", 1, elapsed_s=0.0)
        journal.record_success(1, "t/1", 2, elapsed_s=0.0)
        keys = [e.key for e in CheckpointJournal.load(tmp_path).entries()]
        assert keys == ["t/0", "t/1"]

    def test_corrupt_journal_line_rejected(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record_success(0, "t/0", 1, elapsed_s=0.0)
        with open(journal.path, "a") as handle:
            handle.write("{ torn half-record\n")
        with pytest.raises(CheckpointError, match="corrupt journal"):
            CheckpointJournal.load(tmp_path)

    def test_missing_payload_detected(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        entry = journal.record_success(0, "t/0", 1, elapsed_s=0.0)
        (tmp_path / entry.payload).unlink()
        with pytest.raises(CheckpointError, match="missing payload"):
            CheckpointJournal.load(tmp_path).load_payload("t/0")

    def test_truncated_payload_detected(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        entry = journal.record_success(0, "t/0", list(range(100)), elapsed_s=0.0)
        payload = tmp_path / entry.payload
        payload.write_bytes(payload.read_bytes()[:5])
        with pytest.raises(CheckpointError, match="corrupt trial payload"):
            CheckpointJournal.load(tmp_path).load_payload("t/0")

    def test_unjournaled_key_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no completed payload"):
            CheckpointJournal.load(tmp_path).load_payload("ghost")
