"""Interrupt/resume equivalence: a run killed at trial *k* and resumed
must produce a byte-identical artifact to an uninterrupted run.

The fig09 case is tiny and runs in tier-1; the table3 sweep exercises
the full cross-experiment surface and is marked ``resume`` (run via
``scripts/run_resume_smoke.sh`` or ``pytest -m resume``).
"""

import pickle

import pytest

from repro.experiments import fig09_covert, table3_noise
from repro.experiments.checkpoint import (
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    RunManifest,
)
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    run_experiment,
)


def _interrupt_at(plan: ExperimentPlan, k: int) -> ExperimentPlan:
    """A copy of *plan* whose *k*-th trial dies mid-run."""

    def boom():
        raise KeyboardInterrupt

    return ExperimentPlan(
        name=plan.name,
        seed=plan.seed,
        config=plan.config,
        trials=tuple(
            TrialSpec(key=spec.key, fn=boom if index == k else spec.fn)
            for index, spec in enumerate(plan.trials)
        ),
        finalize=plan.finalize,
        min_successes=plan.min_successes,
    )


def _assert_resume_equivalent(plan_factory, k, tmp_path):
    """Kill a checkpointed run at trial *k*, resume it, and compare the
    artifact byte-for-byte against an uninterrupted run."""
    reference = execute_plan(plan_factory())

    interrupted = run_experiment(_interrupt_at(plan_factory(), k), run_dir=tmp_path)
    assert interrupted.status == STATUS_INTERRUPTED
    assert interrupted.completed == k

    resumed = run_experiment(plan_factory(), run_dir=tmp_path, resume=True)
    assert resumed.status == STATUS_COMPLETED
    assert resumed.resumed == k

    assert pickle.dumps(resumed.result, protocol=4) == pickle.dumps(
        reference, protocol=4
    ), "resumed artifact differs from uninterrupted run"

    manifest = RunManifest.load(tmp_path)
    assert [s["event"] for s in manifest.segments] == ["start", "resume"]
    return resumed.result


class TestFig09Resume:
    def test_interrupted_resume_is_byte_identical(self, tmp_path):
        def factory():
            return fig09_covert.trial_plan(
                payload_bits=48,
                runs=1,
                devtlb_windows=(50.0, 100.0),
                swq_windows=(50.0,),
            )

        result = _assert_resume_equivalent(factory, k=1, tmp_path=tmp_path)
        primitives = [p.primitive for p in result.points]
        assert primitives.count("devtlb") == 2
        assert primitives.count("swq") == 1

    def test_interrupt_before_first_trial_resumes_cleanly(self, tmp_path):
        def factory():
            return fig09_covert.trial_plan(
                payload_bits=48, runs=1,
                devtlb_windows=(50.0,), swq_windows=(50.0,),
            )

        _assert_resume_equivalent(factory, k=0, tmp_path=tmp_path)


@pytest.mark.resume
class TestTable3Resume:
    def test_interrupted_resume_is_byte_identical(self, tmp_path):
        def factory():
            return table3_noise.trial_plan(
                repeats=2,
                covert_bits=24,
                keystrokes=8,
                wf_sites=2,
                wf_visits=2,
                llm_traces=2,
                llm_models=2,
            )

        result = _assert_resume_equivalent(factory, k=11, tmp_path=tmp_path)
        assert len(result.rows) == 6
