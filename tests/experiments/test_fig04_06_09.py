"""Smoke + shape tests for the Fig. 4 / 6 / 9 experiments."""

import numpy as np
import pytest

from repro.experiments import fig04_latency, fig06_queue_latency, fig09_covert
from repro.hw.noise import Environment


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_latency.run(samples=120)

    def test_threshold_band_valid_everywhere(self, result):
        for row in result.environments:
            assert row.band_threshold_works, row.environment

    def test_hit_miss_landmarks(self, result):
        local = result.for_environment(Environment.LOCAL)
        assert 400 <= local.hit_mean <= 600
        assert local.miss_mean > 1000

    def test_cloud_noise_shift_near_paper(self, result):
        assert 60 <= result.cloud_noise_shift <= 120  # paper: ~89

    def test_report_renders(self, result):
        text = fig04_latency.report(result)
        assert "Fig. 4" in text
        assert "cloud+noise" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_queue_latency.run(min_exp=10, max_exp=26, repeats=5)

    def test_submission_flat(self, result):
        assert result.submission_is_flat
        for point in result.points:
            assert 600 <= point.submission_cycles <= 850  # ~700 cycles

    def test_completion_monotone_and_linear_tail(self, result):
        assert result.completion_is_monotone
        big = {p.size_bytes: p.completion_cycles for p in result.points}
        # Doubling the size roughly doubles the bandwidth-bound latency.
        ratio = big[1 << 26] / big[1 << 25]
        assert 1.7 <= ratio <= 2.3

    def test_contention_threshold_matches_paper(self, result):
        assert result.contention_threshold == 1 << 25

    def test_report_renders(self, result):
        assert "2^25" in fig06_queue_latency.report(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_covert.run(
            payload_bits=128,
            runs=1,
            devtlb_windows=(100.0, 42.5, 25.0),
            swq_windows=(180.0, 110.0),
        )

    def test_devtlb_peak_in_paper_range(self, result):
        best = result.best("devtlb")
        assert best.true_bps > 12_000  # paper: 17.19 kbps

    def test_swq_peak_in_paper_range(self, result):
        best = result.best("swq")
        assert best.true_bps > 2_500  # paper: 4.02 kbps

    def test_error_grows_with_rate(self, result):
        assert result.error_grows_with_rate

    def test_report_renders(self, result):
        text = fig09_covert.report(result)
        assert "DevTLB peak" in text
        assert "SWQ peak" in text
