"""Smoke test for the open-world fingerprinting experiment."""

from repro.experiments import openworld_wf
from repro.experiments.wf_common import WfSamplerSettings


class TestOpenWorldWf:
    def test_tiny_run_produces_sane_scores(self):
        result = openworld_wf.run(
            monitored=3,
            unmonitored=2,
            visits_per_site=6,
            settings=WfSamplerSettings(
                sample_period_us=100.0, samples_per_slot=40, slots=80
            ),
            epochs=30,
        )
        assert 0.0 < result.threshold < 1.0
        assert 0.0 <= result.scores.known_accuracy <= 1.0
        assert 0.0 <= result.scores.unknown_rejection_rate <= 1.0
        assert len(result.monitored_sites) == 3
        assert len(result.unmonitored_sites) == 2
        text = openworld_wf.report(result)
        assert "balanced" in text
