"""Serial ≡ sharded equivalence: a plan run with ``workers=N`` must leave
the same observable artifact as the serial loop — same finalized result
bytes, same journal entries and payload pickles, same manifest counts.

The fig09 cases (3 trials) run in tier-1, including a kill-at-trial-k
plus resume-with-a-different-worker-count round trip.  The wider sweeps
(4 workers, table3, fig11 with dataset checksums) are marked
``parallel`` (run via ``scripts/run_parallel_smoke.sh`` or
``pytest -m parallel``).

Comparison notes: manifest ``segments`` carry pids and wall-clock
timestamps and journal records carry per-trial ``elapsed_s``, so those
fields are masked; journal records are compared sorted by trial index
because the parallel parent appends them in completion order (the
*entries* are identical — see ``CheckpointJournal.entries``).
"""

import functools
import json
import pickle
from pathlib import Path

import pytest

from repro.analysis.datasets import _content_sha256
from repro.experiments import fig09_covert, fig11_wf_classification, table3_noise
from repro.experiments.checkpoint import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    RunManifest,
)
from repro.experiments.runner import ExperimentPlan, TrialSpec, run_experiment
from repro.experiments.wf_common import WfSamplerSettings, dataset_from_run_dir

FIG09_CONFIG = {
    "payload_bits": 48,
    "runs": 1,
    "devtlb_windows": (50.0, 100.0),
    "swq_windows": (50.0,),
}

TABLE3_CONFIG = {
    "repeats": 2,
    "covert_bits": 24,
    "keystrokes": 8,
    "wf_sites": 2,
    "wf_visits": 2,
    "llm_traces": 2,
    "llm_models": 2,
}

FIG11_CONFIG = {
    "sites": 3,
    "visits_per_site": 2,
    "settings": WfSamplerSettings(
        sample_period_us=100.0, samples_per_slot=8, slots=30
    ),
    "epochs": 3,
    "hidden": 4,
}


def _fig09_plan() -> ExperimentPlan:
    return fig09_covert.trial_plan(**FIG09_CONFIG)


def _boom() -> None:
    raise KeyboardInterrupt


def _interrupted_fig09_plan(k: int) -> ExperimentPlan:
    """The fig09 plan with trial *k* dying mid-run.  Module-level (and
    built via :func:`functools.partial`) so it pickles into spawn
    workers as the plan source of the killed parallel run."""
    plan = _fig09_plan()
    return ExperimentPlan(
        name=plan.name,
        seed=plan.seed,
        config=plan.config,
        trials=tuple(
            TrialSpec(key=spec.key, fn=_boom if index == k else spec.fn)
            for index, spec in enumerate(plan.trials)
        ),
        finalize=plan.finalize,
        min_successes=plan.min_successes,
    )


# ----------------------------------------------------------------------
# Artifact comparison helpers
# ----------------------------------------------------------------------
def _manifest_fields(run_dir: Path, drop: tuple[str, ...]) -> dict:
    data = json.loads((Path(run_dir) / MANIFEST_NAME).read_text())
    for field in ("segments",) + drop:
        data.pop(field, None)
    return data


def _journal_records(run_dir: Path) -> list[dict]:
    records = [
        json.loads(line)
        for line in (Path(run_dir) / JOURNAL_NAME).read_text().splitlines()
        if line
    ]
    for record in records:
        record.pop("elapsed_s", None)
    return sorted(records, key=lambda record: record["index"])


def _payload_bytes(run_dir: Path) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted((Path(run_dir) / "trials").glob("*.pkl"))
    }


def _assert_same_artifact(
    serial_dir: Path, parallel_dir: Path, drop: tuple[str, ...] = ()
) -> None:
    assert _manifest_fields(parallel_dir, drop) == _manifest_fields(
        serial_dir, drop
    ), "manifests diverge"
    assert _journal_records(parallel_dir) == _journal_records(
        serial_dir
    ), "journal entries diverge"
    assert _payload_bytes(parallel_dir) == _payload_bytes(
        serial_dir
    ), "payload pickles diverge"


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=4)


def _assert_parallel_matches_serial(
    plan_factory, plan_source, tmp_path, workers, shard="interleave"
):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / f"w{workers}-{shard}"
    serial = run_experiment(plan_factory(), run_dir=serial_dir)
    parallel = run_experiment(
        plan_factory(),
        run_dir=parallel_dir,
        workers=workers,
        shard_strategy=shard,
        # This suite documents the one-shot spawn executor; the pool
        # executor has its own suite (test_pool_equivalence.py).
        executor="spawn",
        plan_source=plan_source,
    )
    assert serial.status == STATUS_COMPLETED
    assert parallel.status == STATUS_COMPLETED
    assert parallel.completed == serial.completed
    assert parallel.failed == serial.failed
    assert _dumps(parallel.result) == _dumps(serial.result)
    _assert_same_artifact(serial_dir, parallel_dir)
    return serial_dir, parallel_dir


class TestFig09Parallel:
    def test_two_workers_match_serial_byte_for_byte(self, tmp_path):
        _assert_parallel_matches_serial(
            _fig09_plan,
            fig09_covert.plan_source(**FIG09_CONFIG),
            tmp_path,
            workers=2,
        )

    def test_contiguous_sharding_matches_serial(self, tmp_path):
        _assert_parallel_matches_serial(
            _fig09_plan,
            fig09_covert.plan_source(**FIG09_CONFIG),
            tmp_path,
            workers=2,
            shard="contiguous",
        )

    def test_kill_and_resume_across_worker_counts(self, tmp_path):
        """Kill a 2-worker run at trial 1, resume it with 3 workers, and
        compare against an uninterrupted serial run."""
        serial_dir = tmp_path / "serial"
        reference = run_experiment(_fig09_plan(), run_dir=serial_dir)

        run_dir = tmp_path / "killed"
        interrupted = run_experiment(
            _interrupted_fig09_plan(1),
            run_dir=run_dir,
            workers=2,
            executor="spawn",
            plan_source=functools.partial(_interrupted_fig09_plan, 1),
        )
        assert interrupted.status == STATUS_INTERRUPTED
        assert interrupted.completed < len(reference.plan.trials)

        resumed = run_experiment(
            _fig09_plan(),
            run_dir=run_dir,
            resume=True,
            workers=3,
            executor="spawn",
            plan_source=fig09_covert.plan_source(**FIG09_CONFIG),
        )
        assert resumed.status == STATUS_COMPLETED
        assert resumed.resumed == interrupted.completed
        assert _dumps(resumed.result) == _dumps(reference.result)
        # ``resumed`` counts trials inherited from the killed segment, so
        # it legitimately differs from the single-segment reference.
        _assert_same_artifact(serial_dir, run_dir, drop=("resumed",))
        manifest = RunManifest.load(run_dir)
        assert [s["event"] for s in manifest.segments] == ["start", "resume"]


@pytest.mark.parallel
class TestParallelSweeps:
    def test_fig09_four_workers(self, tmp_path):
        _assert_parallel_matches_serial(
            _fig09_plan,
            fig09_covert.plan_source(**FIG09_CONFIG),
            tmp_path,
            workers=4,
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_table3_cross_experiment_sweep(self, tmp_path, workers):
        _assert_parallel_matches_serial(
            lambda: table3_noise.trial_plan(**TABLE3_CONFIG),
            table3_noise.plan_source(**TABLE3_CONFIG),
            tmp_path,
            workers=workers,
        )

    @pytest.mark.parametrize("workers", [2, 4])
    def test_fig11_dataset_checksums_match(self, tmp_path, workers):
        serial_dir, parallel_dir = _assert_parallel_matches_serial(
            lambda: fig11_wf_classification.trial_plan(**FIG11_CONFIG),
            fig11_wf_classification.plan_source(**FIG11_CONFIG),
            tmp_path,
            workers=workers,
        )
        serial_ds = dataset_from_run_dir(serial_dir)
        parallel_ds = dataset_from_run_dir(parallel_dir)
        assert _content_sha256(
            parallel_ds.traces, parallel_ds.labels
        ) == _content_sha256(serial_ds.traces, serial_ds.labels)
        assert parallel_ds.class_names == serial_ds.class_names
