"""Tests for the supervised, crash-safe experiment runner."""

import time

import pytest

from repro.errors import (
    CheckpointError,
    InsufficientTrialsError,
    ReproError,
    ResumeMismatchError,
)
from repro.experiments.checkpoint import (
    STATUS_COMPLETED,
    STATUS_DEADLINE,
    STATUS_INSUFFICIENT,
    STATUS_INTERRUPTED,
    RunManifest,
)
from repro.experiments.runner import (
    EXIT_DEADLINE,
    EXIT_INSUFFICIENT,
    EXIT_INTERRUPTED,
    EXIT_OK,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ExperimentPlan,
    TrialSpec,
    Watchdog,
    execute_plan,
    run_experiment,
    require_all,
    spawn_trial_seed,
)


def _plan(trial_fns, name="demo", seed=1, min_successes=1, config=None):
    """A plan over {key: fn} with a sum-of-values finalize."""
    return ExperimentPlan(
        name=name,
        seed=seed,
        config=config or {"seed": seed},
        trials=tuple(TrialSpec(key=k, fn=fn) for k, fn in trial_fns.items()),
        finalize=lambda results: dict(results),
        min_successes=min_successes,
    )


class TestPlan:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate trial keys"):
            ExperimentPlan(
                name="dup",
                seed=0,
                config={},
                trials=(
                    TrialSpec(key="a", fn=lambda: 1),
                    TrialSpec(key="a", fn=lambda: 2),
                ),
                finalize=dict,
            )

    def test_spawn_trial_seed_is_order_independent(self):
        assert spawn_trial_seed(7, "site/x/visit/3") == spawn_trial_seed(
            7, "site/x/visit/3"
        )
        assert spawn_trial_seed(7, "a") != spawn_trial_seed(7, "b")
        assert spawn_trial_seed(7, "a") != spawn_trial_seed(8, "a")

    def test_require_all_orders_and_rejects_missing(self):
        assert require_all({"b": 2, "a": 1}, ["a", "b"], "x") == [1, 2]
        with pytest.raises(InsufficientTrialsError, match="required trial"):
            require_all({"a": 1}, ["a", "b"], "x")


class TestInMemoryRuns:
    def test_execute_plan_returns_finalized_result(self):
        result = execute_plan(_plan({"a": lambda: 1, "b": lambda: 2}))
        assert result == {"a": 1, "b": 2}

    def test_contained_failure_dropped_above_floor(self):
        def bad():
            raise ReproError("transient")

        outcome = run_experiment(_plan({"a": lambda: 1, "b": bad}))
        assert outcome.status == STATUS_COMPLETED
        assert outcome.result == {"a": 1}
        assert outcome.failed == 1

    def test_floor_violation_surfaces_insufficient(self):
        def bad():
            raise ReproError("down")

        outcome = run_experiment(_plan({"a": bad, "b": bad}, min_successes=1))
        assert outcome.status == STATUS_INSUFFICIENT
        assert outcome.exit_code == EXIT_INSUFFICIENT
        with pytest.raises(InsufficientTrialsError):
            outcome.require_result()

    def test_interrupt_is_captured_and_reraised(self):
        def boom():
            raise KeyboardInterrupt

        outcome = run_experiment(_plan({"a": lambda: 1, "b": boom}))
        assert outcome.status == STATUS_INTERRUPTED
        assert outcome.exit_code == EXIT_INTERRUPTED
        with pytest.raises(KeyboardInterrupt):
            outcome.require_result()

    def test_finalize_insufficient_maps_to_status(self):
        def finalize(results):
            raise InsufficientTrialsError("too thin")

        plan = ExperimentPlan(
            name="demo", seed=0, config={},
            trials=(TrialSpec(key="a", fn=lambda: 1),), finalize=finalize,
        )
        outcome = run_experiment(plan)
        assert outcome.status == STATUS_INSUFFICIENT


class TestWatchdog:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Watchdog(0.0)
        with pytest.raises(ValueError):
            Watchdog(-1.0)

    def test_stops_before_budget_exhaustion(self):
        def slow():
            time.sleep(0.02)
            return 1

        plan = _plan({f"t/{i}": slow for i in range(50)})
        outcome = run_experiment(plan, deadline_s=0.1)
        assert outcome.status == STATUS_DEADLINE
        assert outcome.exit_code == EXIT_DEADLINE
        assert 0 < outcome.completed < 50

    def test_deadline_run_is_resumable_with_run_dir(self, tmp_path):
        def slow():
            time.sleep(0.02)
            return 1

        plan = _plan({f"t/{i}": slow for i in range(50)})
        outcome = run_experiment(plan, run_dir=tmp_path, deadline_s=0.1)
        assert outcome.resumable
        resumed = run_experiment(plan, run_dir=tmp_path, resume=True)
        assert resumed.status == STATUS_COMPLETED
        assert resumed.resumed == outcome.completed
        assert resumed.result == {f"t/{i}": 1 for i in range(50)}


class TestCircuitBreaker:
    def test_config_validated(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_trials=0)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record(0, False)
        assert breaker.state is BreakerState.CLOSED
        breaker.record(1, False)
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record(0, False)
        breaker.record(1, True)
        breaker.record(2, False)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_trials=2)
        )
        breaker.record(0, False)
        assert breaker.gate(1) is not None  # cooldown skip 1
        assert breaker.gate(2) is not None  # cooldown skip 2
        assert breaker.gate(3) is None  # half-open probe admitted
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record(3, True)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_trials=1)
        )
        breaker.record(0, False)
        breaker.gate(1)
        breaker.gate(2)
        breaker.record(2, False)
        assert breaker.state is BreakerState.OPEN
        transitions = [(e["from"], e["to"]) for e in breaker.events]
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
        ]

    def test_breaker_degrades_run_and_lands_in_manifest(self, tmp_path):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise ReproError("env down")

        trials = {f"bad/{i}": flaky for i in range(4)}
        trials.update({f"good/{i}": (lambda: 1) for i in range(4)})
        plan = _plan(trials, min_successes=1)
        outcome = run_experiment(
            plan,
            run_dir=tmp_path,
            breaker=BreakerConfig(failure_threshold=2, cooldown_trials=2),
        )
        assert outcome.status == STATUS_COMPLETED
        assert outcome.skipped > 0
        assert outcome.breaker_events
        manifest = RunManifest.load(tmp_path)
        assert manifest.breaker_events == outcome.breaker_events
        # Trials 0,1 fail -> open; 2,3 skipped; probe (good/0) closes.
        assert calls["n"] == 2


class TestCheckpointedRuns:
    def test_run_dir_holds_manifest_journal_and_payloads(self, tmp_path):
        outcome = run_experiment(
            _plan({"a": lambda: 1, "b": lambda: 2}), run_dir=tmp_path
        )
        assert outcome.status == STATUS_COMPLETED
        manifest = RunManifest.load(tmp_path)
        assert manifest.status == STATUS_COMPLETED
        assert manifest.exit_code == EXIT_OK
        assert manifest.completed == 2
        assert (tmp_path / "journal.jsonl").exists()
        assert sorted(p.name for p in (tmp_path / "trials").iterdir()) == [
            "0000.pkl", "0001.pkl",
        ]

    def test_fresh_run_refuses_existing_run_dir(self, tmp_path):
        run_experiment(_plan({"a": lambda: 1}), run_dir=tmp_path)
        with pytest.raises(CheckpointError, match="already holds a run"):
            run_experiment(_plan({"a": lambda: 1}), run_dir=tmp_path)

    def test_resume_skips_completed_trials(self, tmp_path):
        executions = []

        def make(key):
            def fn():
                executions.append(key)
                if key == "b" and len(executions) <= 2:
                    raise KeyboardInterrupt
                return key.upper()

            return fn

        plan = _plan({k: make(k) for k in ("a", "b", "c")})
        first = run_experiment(plan, run_dir=tmp_path)
        assert first.status == STATUS_INTERRUPTED
        assert executions == ["a", "b"]
        resumed = run_experiment(plan, run_dir=tmp_path, resume=True)
        assert resumed.status == STATUS_COMPLETED
        assert executions == ["a", "b", "b", "c"]
        assert resumed.result == {"a": "A", "b": "B", "c": "C"}
        assert resumed.resumed == 1

    def test_resume_does_not_retry_journaled_failures(self, tmp_path):
        calls = {"bad": 0}

        def bad():
            calls["bad"] += 1
            raise ReproError("deterministic failure")

        plan = _plan({"good": lambda: 1, "bad": bad})
        first = run_experiment(plan, run_dir=tmp_path)
        assert first.status == STATUS_COMPLETED
        assert calls["bad"] == 1
        resumed = run_experiment(plan, run_dir=tmp_path, resume=True)
        assert calls["bad"] == 1  # not retried: would fail identically
        assert resumed.failed == 1
        assert resumed.result == {"good": 1}

    def test_resume_validates_config_hash(self, tmp_path):
        run_experiment(
            _plan({"a": lambda: 1}, config={"bits": 48}), run_dir=tmp_path
        )
        with pytest.raises(ResumeMismatchError, match="config hash"):
            run_experiment(
                _plan({"a": lambda: 1}, config={"bits": 64}),
                run_dir=tmp_path,
                resume=True,
            )

    def test_resume_validates_experiment_name(self, tmp_path):
        run_experiment(_plan({"a": lambda: 1}, name="fig09"), run_dir=tmp_path)
        with pytest.raises(ResumeMismatchError, match="holds experiment"):
            run_experiment(
                _plan({"a": lambda: 1}, name="fig10"),
                run_dir=tmp_path,
                resume=True,
            )

    def test_resume_missing_dir_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no run manifest"):
            run_experiment(
                _plan({"a": lambda: 1}),
                run_dir=tmp_path / "ghost",
                resume=True,
            )

    def test_interrupt_journals_completed_prefix(self, tmp_path):
        def boom():
            raise KeyboardInterrupt

        plan = _plan({"a": lambda: 1, "b": boom, "c": lambda: 3})
        outcome = run_experiment(plan, run_dir=tmp_path)
        assert outcome.status == STATUS_INTERRUPTED
        manifest = RunManifest.load(tmp_path)
        assert manifest.status == STATUS_INTERRUPTED
        assert manifest.exit_code == EXIT_INTERRUPTED
        assert manifest.completed == 1
