"""The injectable host clocks (`wall_clock`/`monotonic_clock`).

Every host-time read outside :mod:`repro.experiments.runner` routes
through these helpers (enforced statically by the DET002 lint rule), so
overriding them here controls *all* orchestration timing: manifest
timestamps, watchdog deadlines, and guarded-trial budgets become
deterministic under test.
"""

import time

from repro.experiments.checkpoint import RunManifest
from repro.experiments.guard import STOP_BUDGET, run_guarded_trials
from repro.experiments.runner import (
    Watchdog,
    monotonic_clock,
    override_clocks,
    wall_clock,
)


class FakeClock:
    """A hand-cranked clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestClockHelpers:
    def test_defaults_track_host_clocks(self):
        # Comparing against the host clock IS the test.
        assert abs(wall_clock() - time.time()) < 5.0  # repro-lint: ignore[DET002]
        assert abs(monotonic_clock() - time.monotonic()) < 5.0  # repro-lint: ignore[DET002]

    def test_override_and_restore(self):
        with override_clocks(wall=lambda: 123.0, monotonic=lambda: 7.0):
            assert wall_clock() == 123.0
            assert monotonic_clock() == 7.0
        assert wall_clock() != 123.0

    def test_override_restores_after_exception(self):
        try:
            with override_clocks(wall=lambda: 1.0):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert abs(wall_clock() - time.time()) < 5.0  # repro-lint: ignore[DET002]

    def test_partial_override_leaves_other_clock(self):
        with override_clocks(monotonic=lambda: 9.0):
            assert monotonic_clock() == 9.0
            assert abs(wall_clock() - time.time()) < 5.0  # repro-lint: ignore[DET002]


class TestDeterministicStamping:
    def test_manifest_segments_stamp_via_wall_clock(self):
        manifest = RunManifest(
            experiment="fig04", seed=7, config={}, config_hash="x"
        )
        clock = FakeClock(start=1_000.0)
        with override_clocks(wall=clock):
            manifest.add_segment("start")
            clock.advance(5.0)
            manifest.add_segment("resume")
        assert [s["time"] for s in manifest.segments] == [1000.0, 1005.0]

    def test_watchdog_reads_monotonic_clock(self):
        clock = FakeClock()
        with override_clocks(monotonic=clock):
            dog = Watchdog(budget_s=10.0)
            dog.note_trial(3.0)
            assert dog.check() is None
            clock.advance(8.0)  # 2s left < longest trial (3s): won't fit
            assert dog.check() is not None

    def test_guarded_trials_budget_uses_monotonic_clock(self):
        clock = FakeClock()

        def trial():
            clock.advance(4.0)
            return "ok"

        with override_clocks(monotonic=clock):
            run = run_guarded_trials(
                [trial] * 5, max_total_seconds=10.0, min_successes=1
            )
        assert run.stop_reason == STOP_BUDGET
        assert len(run.results) == 3  # 0s, 4s, 8s elapsed at trial starts
        assert run.skipped == 2
        assert run.elapsed_s == 12.0
