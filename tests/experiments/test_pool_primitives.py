"""Unit coverage for the pool's building blocks: the checksummed
shared-memory result ring, frame assembly, the heartbeat scoreboard,
respawn backoff, the poison ledger, the cost model, and the interrupt
plumbing the parent relies on to drain cleanly.
"""

import multiprocessing
import os
import pickle
import signal
import threading

import pytest

from repro.experiments.pool import (
    FrameAssembler,
    PoolProtocolError,
    ShmRing,
    _encode_frame,
)
from repro.experiments.supervisor import (
    CostModel,
    HeartbeatBoard,
    PoisonLedger,
    PoolConfig,
    RespawnBackoff,
    interrupt_shield,
    sigterm_as_interrupt,
)


@pytest.fixture
def ring():
    lock = multiprocessing.get_context("spawn").Lock()
    with ShmRing.create(lock, capacity=4096) as owner:
        yield owner


class TestShmRing:
    def test_roundtrip_preserves_frame_bytes(self, ring):
        payload = _encode_frame(pickle.dumps({"hello": "pool"}))
        ring.write(payload)
        assert ring.read() == payload

    def test_chunked_reads_reassemble(self, ring):
        payload = _encode_frame(bytes(i % 251 for i in range(900)))
        ring.write(payload)
        chunks = []
        while True:
            chunk = ring.read(max_bytes=64)
            if not chunk:
                break
            chunks.append(chunk)
        assert b"".join(chunks) == payload

    def test_wraparound_write_larger_than_free_space(self, ring):
        """A writer blocked on a full ring resumes as the reader drains,
        and the bytes still arrive in order across the wrap point."""
        first = _encode_frame(b"a" * 3000)
        second = _encode_frame(b"b" * 3000)  # does not fit alongside first
        ring.write(first)
        writer = threading.Thread(target=ring.write, args=(second,))
        writer.start()
        received = bytearray()
        while len(received) < len(first) + len(second):
            received.extend(ring.read())
        writer.join(timeout=5)
        assert not writer.is_alive()
        assert bytes(received) == first + second

    def test_corrupt_header_trips_protocol_error(self, ring):
        ring.write(_encode_frame(b"x"))
        ring._shm.buf[0:8] = (2**63).to_bytes(8, "little")  # absurd head
        with pytest.raises(PoolProtocolError):
            ring.read()

    def test_attach_then_owner_unlink(self):
        lock = multiprocessing.get_context("spawn").Lock()
        owner = ShmRing.create(lock, capacity=4096)
        try:
            attached = ShmRing.attach(owner.name, lock, capacity=4096)
            try:
                attached.write(_encode_frame(b"from-attacher"))
                assert ring_read_all(owner) == _encode_frame(b"from-attacher")
            finally:
                attached.close()
        finally:
            owner.close()

    def test_close_is_idempotent(self, ring):
        ring.close()
        ring.close()


def ring_read_all(ring) -> bytes:
    data = bytearray()
    while True:
        chunk = ring.read()
        if not chunk:
            return bytes(data)
        data.extend(chunk)


class TestFrameAssembler:
    def test_split_delivery_reassembles_frames(self):
        frames = [pickle.dumps(i) for i in range(3)]
        stream = b"".join(_encode_frame(f) for f in frames)
        assembler = FrameAssembler()
        out = []
        for i in range(0, len(stream), 7):
            out.extend(assembler.feed(stream[i:i + 7]))
        assert out == frames

    def test_crc_mismatch_raises(self):
        frame = bytearray(_encode_frame(b"payload"))
        frame[-1] ^= 0xFF
        with pytest.raises(PoolProtocolError, match="checksum"):
            FrameAssembler().feed(bytes(frame))

    def test_bad_magic_raises(self):
        frame = b"XXXX" + _encode_frame(b"payload")[4:]
        with pytest.raises(PoolProtocolError):
            FrameAssembler().feed(frame)


class TestHeartbeatBoard:
    def test_beat_read_roundtrip(self):
        with HeartbeatBoard(2) as board:
            board.beat(1, trial=7, shard=3)
            beat = board.read(1)
            assert (beat.counter, beat.trial, beat.shard) == (1, 7, 3)
            assert beat.timestamp > 0
            assert board.read(0).counter == 0

    def test_attacher_writes_what_the_owner_reads(self):
        with HeartbeatBoard(2) as board:
            worker_view = HeartbeatBoard.attach(board.name, 2)
            try:
                worker_view.beat(0, trial=5, shard=1)
            finally:
                worker_view.close()
            assert board.read(0).trial == 5

    def test_reset_zeroes_a_slot(self):
        with HeartbeatBoard(1) as board:
            board.beat(0, trial=3, shard=2)
            board.reset(0)
            assert board.read(0).counter == 0

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            # Rejected before any segment is allocated — nothing leaks.
            HeartbeatBoard(0)  # repro-lint: ignore[PAR002]


class TestRespawnBackoff:
    def test_delays_double_up_to_the_cap(self):
        backoff = RespawnBackoff(base_s=0.05, cap_s=0.4)
        delays = [backoff.next_delay() for _ in range(6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]

    def test_reset_returns_to_fast_respawns(self):
        backoff = RespawnBackoff(base_s=0.05, cap_s=0.4)
        for _ in range(4):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == 0.05


class TestPoisonLedger:
    def test_first_strike_is_forgiven(self):
        ledger = PoisonLedger(threshold=2)
        assert not ledger.strike("fig09/0", "worker died")
        assert not ledger.is_poisoned("fig09/0")
        assert ledger.struck == ("fig09/0",)

    def test_threshold_strikes_quarantine(self):
        ledger = PoisonLedger(threshold=2)
        ledger.strike("fig09/0", "worker died")
        assert ledger.strike("fig09/0", "worker died again")
        assert ledger.poisoned == ("fig09/0",)
        assert ledger.reasons["fig09/0"] == [
            "worker died", "worker died again",
        ]

    def test_threshold_below_one_rejected(self):
        with pytest.raises(ValueError):
            PoisonLedger(threshold=0)


class TestCostModel:
    def test_single_effective_cpu_never_pays(self):
        pays, reason = CostModel().parallel_pays(
            "fig09", pending=100, workers=4, cpu_count=1, pool_warm=True
        )
        assert not pays and "effective parallelism is 1" in reason

    def test_unmeasured_plan_gets_the_benefit_of_the_doubt(self):
        pays, reason = CostModel().parallel_pays(
            "fig09", pending=10, workers=2, cpu_count=4, pool_warm=False
        )
        assert pays and "no cost data" in reason

    def test_tiny_trials_on_a_cold_pool_do_not_pay(self):
        model = CostModel(spawn_overhead_s=0.35)
        model.observe("fig09", 0.001)
        pays, _ = model.parallel_pays(
            "fig09", pending=4, workers=2, cpu_count=4, pool_warm=False
        )
        assert not pays

    def test_warm_pool_flips_the_same_workload_to_paying(self):
        model = CostModel(spawn_overhead_s=0.35, dispatch_overhead_s=0.0)
        model.observe("fig09", 0.1)
        cold, _ = model.parallel_pays(
            "fig09", pending=4, workers=2, cpu_count=4, pool_warm=False
        )
        warm, _ = model.parallel_pays(
            "fig09", pending=4, workers=2, cpu_count=4, pool_warm=True
        )
        assert not cold and warm

    def test_observe_is_an_ewma_not_a_last_sample(self):
        model = CostModel(alpha=0.5)
        model.observe("fig09", 1.0)
        model.observe("fig09", 0.0)
        assert model.estimate("fig09") == pytest.approx(0.5)


class TestPoolConfig:
    def test_hang_deadline_scales_with_longest_trial(self):
        config = PoolConfig(hang_floor_s=30.0, hang_factor=3.0)
        assert config.hang_deadline_s(1.0) == 30.0
        assert config.hang_deadline_s(20.0) == 60.0

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            PoolConfig(ring_bytes=16)


class TestInterruptPlumbing:
    def test_shield_latches_sigint_without_raising(self):
        with interrupt_shield() as latch:
            os.kill(os.getpid(), signal.SIGINT)
            # the handler runs synchronously on the main thread
            assert latch.interrupted
            assert latch.count == 1
            assert signal.SIGINT in latch.signals

    def test_shield_latches_sigterm_too(self):
        with interrupt_shield() as latch:
            os.kill(os.getpid(), signal.SIGTERM)
            assert latch.interrupted

    def test_sigterm_as_interrupt_raises_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)

    def test_handlers_are_restored_after_the_shield(self):
        before = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        with interrupt_shield():
            pass
        after = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        assert before == after
