"""The Section IV suite must reproduce every paper observation."""

from repro.experiments import reverse_engineering


class TestReverseEngineering:
    def test_all_observations_reproduced(self):
        results = reverse_engineering.run()
        failing = [
            name for name, ok in results.observations.items() if not ok
        ]
        assert results.all_reproduced, f"not reproduced: {failing}"

    def test_report_mentions_every_experiment(self):
        results = reverse_engineering.run()
        text = reverse_engineering.report(results)
        for name in results.observations:
            assert name in text

    def test_expected_experiment_set(self):
        results = reverse_engineering.run()
        assert set(results.observations) == {
            "listing2_single_slot",
            "listing3_independent_fields",
            "listing4_no_interference",
            "huge_page_conflict",
            "cross_page_behavior",
            "batch_fetcher_bypass",
            "fig5_indexing",
            "listing5_arbiter",
            "listing6_swq_arithmetic",
        }
