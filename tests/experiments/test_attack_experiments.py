"""Smoke + shape tests for the fingerprinting/keystroke/mitigation
experiments (reduced scales; the benchmarks run the fuller versions)."""

import numpy as np
import pytest

from repro.experiments import (
    fig10_wf_traces,
    fig11_wf_classification,
    fig12_keystrokes,
    fig13_llm,
    fig14_mitigation,
    table4_comparison,
)
from repro.experiments.fig13_llm import LlmSamplerSettings
from repro.experiments.wf_common import WfSamplerSettings
from repro.workloads.llm import LLM_ZOO

FAST_WF = WfSamplerSettings(sample_period_us=100.0, samples_per_slot=40, slots=80)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_wf_traces.run(settings=FAST_WF)

    def test_all_traces_active(self, result):
        assert result.traces_have_activity

    def test_signatures_differ(self, result):
        assert result.signatures_differ

    def test_report_renders(self, result):
        text = fig10_wf_traces.report(result)
        assert "google.com" in text


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_wf_classification.run(
            sites=4, visits_per_site=6, settings=FAST_WF, epochs=30, hidden=10
        )

    def test_classifier_beats_chance(self, result):
        assert result.bilstm_accuracy > 0.5  # chance = 0.25

    def test_matrix_shape(self, result):
        assert result.matrix.shape == (4, 4)
        assert result.matrix.sum() == result.test_samples

    def test_report_renders(self, result):
        assert "Attention-BiLSTM" in fig11_wf_classification.report(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_keystrokes.run(keystrokes=96, seed=5)

    def test_both_variants_detect_well(self, result):
        assert result.devtlb.evaluation.f1 > 0.80
        assert result.swq.evaluation.f1 > 0.90

    def test_swq_timing_is_tighter(self, result):
        """The paper's key contrast: SWQ std 1.21 ms vs DevTLB 5.29 ms."""
        assert (
            result.swq.evaluation.timestamp_std_ms
            < result.devtlb.evaluation.timestamp_std_ms
        )

    def test_timing_deviations_in_paper_range(self, result):
        assert 3.0 <= result.devtlb.evaluation.timestamp_std_ms <= 8.0
        assert 0.5 <= result.swq.evaluation.timestamp_std_ms <= 2.0

    def test_report_renders(self, result):
        assert "keystroke" in fig12_keystrokes.report(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_llm.run(
            traces_per_model=4,
            models=LLM_ZOO[:4],
            settings=LlmSamplerSettings(slots=80),
            epochs=30,
        )

    def test_classifier_beats_chance(self, result):
        assert result.bilstm_accuracy > 0.5  # chance = 0.25

    def test_example_traces_collected(self, result):
        assert len(result.example_traces) == 4
        assert all(t.sum() > 0 for t in result.example_traces.values())

    def test_report_renders(self, result):
        assert "LLM" in fig13_llm.report(result)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_mitigation.run(sizes=(256, 65536), iterations=60)

    def test_overhead_positive_and_bounded(self, result):
        for row in result.rows:
            assert 0 < row.overhead_percent < 40

    def test_overhead_shrinks_with_size(self, result):
        assert result.overhead_shrinks_with_size

    def test_report_renders(self, result):
        assert "mitigation" in fig14_mitigation.report(result)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4_comparison.run(covert_bits=96, keystrokes=48)

    def test_has_prior_and_our_rows(self, result):
        assert len(result.rows) == 5
        assert len(result.ours) == 2

    def test_devtlb_covert_fastest(self, result):
        assert result.devtlb_fastest_covert

    def test_report_renders(self, result):
        text = table4_comparison.report(result)
        assert "DEVIOUS" in text
        assert "This work (SWQ)" in text
