"""Serial ≡ pool equivalence: a plan run on the persistent worker pool
must leave the same observable artifact as the serial loop — same
finalized result bytes, same journal entries and payload pickles, same
manifest counts — and the contract must survive the pool's own failure
handling: interrupts, pool restarts between segments, worker-count
changes on resume, degradation to the inline serial path, and poisoned
trials.

The fig09 cases (3 trials) run in tier-1.  Chaos coverage (killed /
stalled / corrupting workers) is ``tests/chaos/test_pool_fault_matrix``
(marked ``pool``; run via ``scripts/run_pool_smoke.sh``).

Comparison reuses the masking rules of the spawn-executor suite
(``test_parallel_equivalence``): manifest ``segments`` and per-trial
``elapsed_s`` are host noise; journal records compare sorted by index.
"""

import functools
import os
import pickle
import signal

import pytest

from repro.errors import PoolError
from repro.experiments import fig09_covert
from repro.experiments.checkpoint import (
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    STATUS_POISONED,
    RunManifest,
)
from repro.experiments.pool import shutdown_pools
from repro.experiments.runner import (
    EXIT_POISONED,
    ExperimentPlan,
    TrialSpec,
    run_experiment,
)
from repro.experiments.supervisor import DEGRADED_SERIAL, CostModel
from tests.experiments.test_parallel_equivalence import (
    FIG09_CONFIG,
    _assert_same_artifact,
    _fig09_plan,
    _interrupted_fig09_plan,
)


def _dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=4)


@pytest.fixture(autouse=True)
def _fresh_pools():
    """Each test gets (and leaves behind) a clean pool registry."""
    shutdown_pools()
    yield
    shutdown_pools()


def _kill_worker() -> None:
    """A trial that SIGKILLs whichever pool worker runs it — every
    time, so the supervisor's second strike quarantines it."""
    os.kill(os.getpid(), signal.SIGKILL)


def _poisoned_fig09_plan(k: int) -> ExperimentPlan:
    plan = _fig09_plan()
    return ExperimentPlan(
        name=plan.name,
        seed=plan.seed,
        config=plan.config,
        trials=tuple(
            TrialSpec(key=spec.key, fn=_kill_worker if index == k else spec.fn)
            for index, spec in enumerate(plan.trials)
        ),
        finalize=plan.finalize,
        min_successes=0,
    )


class TestPoolMatchesSerial:
    def test_two_workers_match_serial_byte_for_byte(self, tmp_path):
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        serial = run_experiment(_fig09_plan(), run_dir=serial_dir)
        pooled = run_experiment(
            _fig09_plan(),
            run_dir=pool_dir,
            workers=2,
            executor="pool",
            plan_source=fig09_covert.plan_source(**FIG09_CONFIG),
        )
        assert serial.status == STATUS_COMPLETED
        assert pooled.status == STATUS_COMPLETED
        assert pooled.pool is not None and pooled.pool["mode"] == "pool"
        assert _dumps(pooled.result) == _dumps(serial.result)
        _assert_same_artifact(serial_dir, pool_dir)

    def test_warm_pool_reuses_plan_and_workers(self, tmp_path):
        source = fig09_covert.plan_source(**FIG09_CONFIG)
        first = run_experiment(
            _fig09_plan(), workers=2, executor="pool", plan_source=source
        )
        second = run_experiment(
            _fig09_plan(), workers=2, executor="pool", plan_source=source
        )
        assert first.status == STATUS_COMPLETED
        assert second.status == STATUS_COMPLETED
        assert first.pool["plan_reuses"] == 0, "cold pool cannot reuse"
        assert second.pool["plan_reuses"] >= 1, (
            "warm pool must skip plan_source() for a cached fingerprint"
        )
        assert second.pool["respawns"] == 0
        assert _dumps(second.result) == _dumps(first.result)

    def test_interrupt_then_resume_across_pool_restart(self, tmp_path):
        """Interrupt a 2-worker pooled run, shut the pool down entirely
        (process-restart boundary), resume on a fresh 3-worker pool, and
        compare against an uninterrupted serial run."""
        serial_dir = tmp_path / "serial"
        reference = run_experiment(_fig09_plan(), run_dir=serial_dir)

        run_dir = tmp_path / "interrupted"
        interrupted = run_experiment(
            _interrupted_fig09_plan(1),
            run_dir=run_dir,
            workers=2,
            executor="pool",
            plan_source=functools.partial(_interrupted_fig09_plan, 1),
        )
        assert interrupted.status == STATUS_INTERRUPTED
        assert interrupted.resumable

        shutdown_pools()  # the pool (and all its workers) goes away

        resumed = run_experiment(
            _fig09_plan(),
            run_dir=run_dir,
            resume=True,
            workers=3,
            executor="pool",
            plan_source=fig09_covert.plan_source(**FIG09_CONFIG),
        )
        assert resumed.status == STATUS_COMPLETED
        assert resumed.resumed == interrupted.completed
        assert _dumps(resumed.result) == _dumps(reference.result)
        _assert_same_artifact(serial_dir, run_dir, drop=("resumed",))
        manifest = RunManifest.load(run_dir)
        assert [s["event"] for s in manifest.segments] == ["start", "resume"]

    def test_auto_degrades_to_inline_serial_when_pool_cannot_pay(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            CostModel,
            "parallel_pays",
            lambda self, *args, **kwargs: (False, "forced by test"),
        )
        serial_dir = tmp_path / "serial"
        degraded_dir = tmp_path / "degraded"
        serial = run_experiment(_fig09_plan(), run_dir=serial_dir)
        degraded = run_experiment(
            _fig09_plan(),
            run_dir=degraded_dir,
            workers=2,
            executor="auto",
            plan_source=fig09_covert.plan_source(**FIG09_CONFIG),
        )
        assert degraded.status == STATUS_COMPLETED
        assert degraded.pool["mode"] == DEGRADED_SERIAL
        assert degraded.pool["degraded"] == "forced by test"
        assert _dumps(degraded.result) == _dumps(serial.result)
        _assert_same_artifact(serial_dir, degraded_dir)


class TestPoisonedTrials:
    def test_worker_killing_trial_is_quarantined_with_exit_8(self, tmp_path):
        run_dir = tmp_path / "poisoned"
        outcome = run_experiment(
            _poisoned_fig09_plan(1),
            run_dir=run_dir,
            workers=2,
            executor="pool",
            plan_source=functools.partial(_poisoned_fig09_plan, 1),
        )
        assert outcome.status == STATUS_POISONED
        assert outcome.exit_code == EXIT_POISONED
        assert isinstance(outcome.error, PoolError)
        poisoned_key = _fig09_plan().trials[1].key
        assert outcome.pool["poisoned"] == [poisoned_key]
        assert outcome.pool["respawns"] >= 2, (
            "two strikes means at least two respawned workers"
        )
        # Everything else still ran and journaled.
        assert outcome.completed == len(_fig09_plan().trials) - 1
        manifest = RunManifest.load(run_dir)
        assert manifest.poisoned == [poisoned_key]
        assert manifest.status == STATUS_POISONED
