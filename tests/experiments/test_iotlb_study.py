"""Tests for the IOTLB capacity extension study."""

from repro.experiments import iotlb_study


class TestIotlbStudy:
    def test_inferred_capacity_matches_configuration(self):
        result = iotlb_study.run(working_sets=(128, 512, 768), passes=2)
        assert result.inferred_capacity == 512
        assert result.knee_matches_configuration

    def test_latency_knee_is_walk_sized(self):
        """The step at the knee is a page walk, not noise."""
        result = iotlb_study.run(working_sets=(256, 1024), passes=2)
        low, high = result.points
        assert high.mean_latency_cycles - low.mean_latency_cycles > 300

    def test_report_renders(self):
        result = iotlb_study.run(working_sets=(128, 768), passes=2)
        text = iotlb_study.report(result)
        assert "IOTLB" in text
        assert "configured: 512" in text

    def test_no_knee_when_sweep_below_capacity(self):
        result = iotlb_study.run(working_sets=(32, 64, 128), passes=2)
        assert result.inferred_capacity is None
        assert not result.knee_matches_configuration
