"""Edge-case tests for the trial guard (satellite of the crash-safe
runner work): degenerate budgets, exact floors, last-trial failures, and
total budget exhaustion."""

import time

import pytest

from repro.errors import InsufficientTrialsError, ReproError
from repro.experiments.guard import STOP_BUDGET, run_guarded_trials


def _ok(value=1):
    return lambda: value


def _bad(message="transient"):
    def fn():
        raise ReproError(message)

    return fn


class TestDegenerateBudgets:
    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="positive or None"):
            run_guarded_trials([_ok()], max_total_seconds=0.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="positive or None"):
            run_guarded_trials([_ok()], max_total_seconds=-5.0)

    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError, match="min_successes"):
            run_guarded_trials([_ok()], min_successes=-1)

    def test_zero_floor_allows_total_failure(self):
        run = run_guarded_trials([_bad(), _bad()], min_successes=0)
        assert run.results == ()
        assert len(run.failures) == 2


class TestExactFloor:
    def test_floor_equal_to_trial_count_passes_when_all_succeed(self):
        run = run_guarded_trials([_ok(1), _ok(2), _ok(3)], min_successes=3)
        assert run.results == (1, 2, 3)
        assert run.complete

    def test_floor_equal_to_trial_count_fails_on_any_failure(self):
        with pytest.raises(InsufficientTrialsError, match="2/3"):
            run_guarded_trials([_ok(), _bad(), _ok()], min_successes=3)


class TestFinalTrialFailure:
    def test_failure_on_final_trial_recorded_not_lost(self):
        run = run_guarded_trials(
            [_ok(1), _ok(2), _bad("last gasp")], min_successes=2
        )
        assert run.results == (1, 2)
        assert len(run.failures) == 1
        assert run.failures[0].index == 2
        assert "last gasp" in str(run.failures[0].error)
        assert not run.complete

    def test_failure_on_final_trial_below_floor_aborts(self):
        with pytest.raises(InsufficientTrialsError, match="last gasp"):
            run_guarded_trials([_ok(), _bad("last gasp")], min_successes=2)


class TestBudgetExhaustion:
    def test_budget_exhaustion_with_zero_completed(self):
        """The first trial burns the whole budget *and* fails: everything
        after it is skipped and the floor check names both causes."""

        def slow_failure():
            time.sleep(0.02)
            raise ReproError("burned the budget")

        with pytest.raises(InsufficientTrialsError) as info:
            run_guarded_trials(
                [slow_failure, _ok(), _ok()],
                max_total_seconds=0.01,
                min_successes=1,
            )
        message = str(info.value)
        assert "0/3" in message
        assert "2 skipped on budget" in message

    def test_budget_cut_sets_stop_reason(self):
        def slow():
            time.sleep(0.02)
            return 1

        run = run_guarded_trials(
            [slow, _ok(), _ok()], max_total_seconds=0.01, min_successes=1
        )
        assert run.stop_reason == STOP_BUDGET
        assert run.skipped == 2


class TestSupervisionHooks:
    def test_stop_hook_halts_batch_with_reason(self):
        run = run_guarded_trials(
            [_ok(), _ok(), _ok()],
            min_successes=0,
            stop=lambda: "deadline",
        )
        assert run.stop_reason == "deadline"
        assert run.results == ()
        assert run.skipped == 3

    def test_skip_hook_bypasses_without_counting(self):
        run = run_guarded_trials(
            [_ok(1), _ok(2), _ok(3)],
            min_successes=1,
            skip_trial=lambda index: "resumed" if index == 1 else None,
        )
        assert run.results == (1, 3)
        assert run.bypassed == ((1, "resumed"),)
        assert run.skipped == 0

    def test_on_trial_end_sees_both_outcomes(self):
        seen = []
        run_guarded_trials(
            [_ok(7), _bad()],
            min_successes=1,
            on_trial_end=lambda index, result, failure, elapsed_s: seen.append(
                (index, result, failure is not None, elapsed_s >= 0.0)
            ),
        )
        assert seen == [(0, 7, False, True), (1, None, True, True)]
