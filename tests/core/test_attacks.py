"""Integration tests for the two attack primitives across VM boundaries."""

import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.dsa.descriptor import make_memcpy, make_noop
from repro.errors import ConfigurationError
from repro.hw.units import us_to_cycles
from repro.virt.system import AttackTopology, CloudSystem


def build(topology=AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE, seed=3, wq_size=16):
    system = CloudSystem(seed=seed)
    handles = system.setup_topology(topology, wq_size=wq_size)
    return system, handles


class TestDevTlbAttack:
    def test_quiet_windows_read_zero(self):
        system, handles = build()
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=50)
        attack.prime()
        evictions = sum(attack.probe().evicted for _ in range(50))
        assert evictions == 0

    def test_victim_activity_detected(self):
        system, handles = build()
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=50)
        victim = handles.victim
        v_portal = victim.portal(handles.victim_wq)
        v_comp = victim.comp_record()

        attack.prime()
        detected = []
        for i in range(20):
            if i % 2 == 0:
                v_portal.submit_wait(make_noop(victim.pasid, v_comp))
            detected.append(attack.probe().evicted)
        assert detected == [i % 2 == 0 for i in range(20)]

    def test_no_detection_across_engines(self):
        system, handles = build(AttackTopology.E2_SEPARATE_WQ_SEPARATE_ENGINE)
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=50)
        victim = handles.victim
        v_portal = victim.portal(handles.victim_wq)
        v_comp = victim.comp_record()
        attack.prime()
        v_portal.submit_wait(make_noop(victim.pasid, v_comp))
        assert not attack.probe().evicted

    def test_eviction_rate_bookkeeping(self):
        system, handles = build()
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=30)
        attack.prime()
        attack.probe()
        assert attack.probes == 1
        assert attack.eviction_rate in (0.0, 1.0)

    def test_default_threshold_without_calibration(self):
        system, handles = build()
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        assert 600 <= attack.threshold <= 900
        attack.prime()
        assert not attack.probe().evicted

    def test_victim_memcpy_also_detected(self):
        """Any victim operation evicts comp (all ops write records)."""
        system, handles = build()
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=30)
        victim = handles.victim
        v_portal = victim.portal(handles.victim_wq)
        src, dst = victim.buffer(8192), victim.buffer(8192)
        v_comp = victim.comp_record()
        attack.prime()
        v_portal.submit_wait(make_memcpy(victim.pasid, src, dst, 4096, v_comp))
        assert attack.probe().evicted


class TestSwqAttack:
    def test_requires_min_queue_size(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=2)
        with pytest.raises(ConfigurationError):
            DsaSwqAttack(handles.attacker, wq_id=0)

    def test_reads_wq_size_unprivileged(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=16)
        attack = DsaSwqAttack(handles.attacker, wq_id=0)
        assert attack.wq_size == 16

    def test_quiet_round_reads_zero(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 20)
        result = attack.run_round(idle_cycles=us_to_cycles(20))
        assert not result.victim_detected

    def test_victim_submission_detected_without_timing(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 20)
        victim = handles.victim
        v_portal = victim.portal(0)

        def victim_submit():
            from repro.dsa.descriptor import Descriptor
            from repro.dsa.opcodes import DescriptorFlags, Opcode

            v_portal.enqcmd(
                Descriptor(
                    opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
                )
            )

        # Victim acts in the middle of the attacker's idle window.
        system.timeline.schedule_after_us(8, victim_submit)
        result = attack.run_round(idle_cycles=us_to_cycles(20), timeline=system.timeline)
        assert result.victim_detected

    def test_alternating_bits(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 20)
        victim = handles.victim
        v_portal = victim.portal(0)

        from repro.dsa.descriptor import Descriptor
        from repro.dsa.opcodes import DescriptorFlags, Opcode

        noop = Descriptor(
            opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
        )
        observed = []
        for bit in [1, 0, 1, 1, 0, 0, 1]:
            if bit:
                system.timeline.schedule_after_us(12, lambda: v_portal.enqcmd(noop))
            result = attack.run_round(
                idle_cycles=us_to_cycles(25), timeline=system.timeline
            )
            observed.append(int(result.victim_detected))
        assert observed == [1, 0, 1, 1, 0, 0, 1]

    def test_detection_rate_bookkeeping(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 20)
        attack.run_round(idle_cycles=us_to_cycles(10))
        assert attack.rounds == 1
        assert attack.detection_rate == 0.0

    def test_congest_without_drain_saturates_early(self):
        """Re-congesting an armed queue flags the round as pre-saturated
        rather than silently mis-arming."""
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 20)
        attack.congest()
        attack.congest()  # second anchor takes the armed slot
        assert attack.probe()  # reported as a detection

    def test_congest_on_truly_full_queue_raises(self):
        system, handles = build(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=4)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 20)
        attack.congest()
        attack.probe()  # fills the last slot
        with pytest.raises(ConfigurationError):
            attack.congest()  # anchor itself gets ZF: drain was skipped
