"""Tests for the probe primitives and threshold calibration."""

import pytest

from repro.core.calibration import calibrate_threshold
from repro.core.primitives import Prober
from repro.virt.system import AttackTopology, CloudSystem


@pytest.fixture
def system():
    system = CloudSystem(seed=7)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    return system


@pytest.fixture
def prober(system):
    return Prober(system.vms["attacker-vm"].process("attacker"), wq_id=0)


class TestProber:
    def test_probe_noop_latency_positive(self, prober):
        comp = prober.fresh_comp()
        result = prober.probe_noop(comp)
        assert result.latency_cycles > 0
        assert prober.probes_issued == 1

    def test_repeat_probe_is_faster(self, prober):
        """Second probe of the same page hits the DevTLB."""
        comp = prober.fresh_comp()
        first = prober.probe_noop(comp).latency_cycles
        second = prober.probe_noop(comp).latency_cycles
        assert second < first

    def test_memcmp_probe_touches_two_sources(self, prober, system):
        src = prober.fresh_page()
        src2 = prober.fresh_page()
        comp = prober.fresh_comp()
        prober.probe_memcmp(src, src2, comp)
        from repro.ats.devtlb import FieldType

        devtlb = system.device.devtlb
        assert devtlb.cached_pages(0, FieldType.SRC) == [src >> 12]
        assert devtlb.cached_pages(0, FieldType.SRC2) == [src2 >> 12]

    def test_dualcast_probe_touches_both_destinations(self, prober, system):
        src, d1, d2 = prober.fresh_page(), prober.fresh_page(), prober.fresh_page()
        comp = prober.fresh_comp()
        prober.probe_dualcast(src, d1, d2, comp)
        from repro.ats.devtlb import FieldType

        devtlb = system.device.devtlb
        assert devtlb.cached_pages(0, FieldType.DST) == [d1 >> 12]
        assert devtlb.cached_pages(0, FieldType.DST2) == [d2 >> 12]

    def test_memcpy_probe(self, prober):
        src, dst = prober.fresh_page(), prober.fresh_page()
        comp = prober.fresh_comp()
        result = prober.probe_memcpy(src, dst, comp)
        assert result.record is not None


class TestCalibration:
    def test_threshold_in_paper_band(self, prober):
        """Fig. 4: the threshold falls between hit (~500) and miss (>1000)."""
        calibration = calibrate_threshold(prober, samples=60)
        assert 550 <= calibration.threshold <= 1000
        assert calibration.hit_mean < 700
        assert calibration.miss_mean > 900

    def test_separation_is_large(self, prober):
        calibration = calibrate_threshold(prober, samples=60)
        assert calibration.separation > 300

    def test_overlap_error_is_small(self, prober):
        calibration = calibrate_threshold(prober, samples=100)
        assert calibration.overlap_error < 0.05

    def test_classify(self, prober):
        calibration = calibrate_threshold(prober, samples=30)
        assert calibration.classify(calibration.threshold + 1000)
        assert not calibration.classify(100)

    def test_too_few_samples_rejected(self, prober):
        with pytest.raises(ValueError):
            calibrate_threshold(prober, samples=1)

    def test_calibration_works_in_noisy_cloud(self):
        """Fig. 4's claim: the band survives all four environments."""
        from repro.hw.noise import Environment

        for env in Environment:
            system = CloudSystem(seed=11, environment=env)
            system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
            prober = Prober(system.vms["attacker-vm"].process("attacker"), wq_id=0)
            calibration = calibrate_threshold(prober, samples=80)
            assert calibration.overlap_error < 0.10, env
            assert calibration.separation > 200, env
