"""Tests for the trace samplers."""

import numpy as np
import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.sampling import DevTlbSampler, SamplerConfig, SwqSampler
from repro.core.swq_attack import DsaSwqAttack
from repro.dsa.descriptor import Descriptor, make_noop
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.hw.units import us_to_cycles
from repro.virt.system import AttackTopology, CloudSystem


class TestSamplerConfig:
    def test_slot_and_trace_durations(self):
        config = SamplerConfig(sample_period_us=10, samples_per_slot=400, slots=250)
        assert config.slot_us == 4000
        assert config.trace_us == 1_000_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_period_us": 0},
            {"samples_per_slot": 0},
            {"slots": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplerConfig(**kwargs)


class TestDevTlbSampler:
    def _build(self):
        system = CloudSystem(seed=5)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=40)
        return system, handles, attack

    def test_quiet_trace_is_near_zero(self):
        system, handles, attack = self._build()
        sampler = DevTlbSampler(
            attack, system.timeline, SamplerConfig(samples_per_slot=20, slots=5)
        )
        trace = sampler.collect_trace()
        assert trace.shape == (5,)
        assert trace.sum() == 0

    def test_victim_bursts_land_in_right_slots(self):
        system, handles, attack = self._build()
        victim = handles.victim
        v_portal = victim.portal(handles.victim_wq)
        v_comp = victim.comp_record()

        config = SamplerConfig(sample_period_us=10, samples_per_slot=20, slots=6)
        # Victim is active only during slots 1 and 4 (200 us per slot),
        # measured from the trace start (i.e. the current clock).
        start = system.clock.now
        for slot in (1, 4):
            base_us = slot * config.slot_us + 20
            for k in range(8):
                system.timeline.schedule_at(
                    start + us_to_cycles(base_us + k * 20),
                    lambda: v_portal.enqcmd(make_noop(victim.pasid, v_comp)),
                )
        sampler = DevTlbSampler(attack, system.timeline, config)
        trace = sampler.collect_trace()
        assert trace[1] > 0
        assert trace[4] > 0
        assert trace[0] == trace[2] == trace[3] == trace[5] == 0

    def test_collect_events_timestamps_monotonic(self):
        system, handles, attack = self._build()
        sampler = DevTlbSampler(attack, system.timeline)
        events = sampler.collect_events(samples=30)
        assert events.shape == (30, 2)
        assert np.all(np.diff(events[:, 0]) > 0)
        assert set(np.unique(events[:, 1])).issubset({0, 1})


class TestSwqSampler:
    def _build(self):
        system = CloudSystem(seed=9)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 19)
        return system, handles, attack

    def test_quiet_trace_is_zero(self):
        system, handles, attack = self._build()
        sampler = SwqSampler(
            attack,
            system.timeline,
            idle_cycles=us_to_cycles(10),
            config=SamplerConfig(samples_per_slot=3, slots=4),
        )
        trace = sampler.collect_trace()
        assert trace.shape == (4,)
        assert trace.sum() == 0

    def test_victim_activity_counted(self):
        system = CloudSystem(seed=9)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        # Anchor of 2 MiB executes for ~70 us — longer than the 40 us idle
        # window, per the paper's requirement for step 2.
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 21)
        victim = handles.victim
        v_portal = victim.portal(0)
        noop = Descriptor(
            opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
        )
        # A steady victim stream: one submission every 30 us for 4 ms.
        start = system.clock.now
        for k in range(130):
            system.timeline.schedule_at(
                start + us_to_cycles(30 * (k + 1)), lambda: v_portal.enqcmd(noop)
            )
        sampler = SwqSampler(
            attack,
            system.timeline,
            idle_cycles=us_to_cycles(40),
            config=SamplerConfig(samples_per_slot=3, slots=3),
        )
        trace = sampler.collect_trace()
        assert trace.sum() > 0

    def test_collect_events(self):
        system, handles, attack = self._build()
        sampler = SwqSampler(attack, system.timeline, idle_cycles=us_to_cycles(10))
        events = sampler.collect_events(rounds=5)
        assert events.shape == (5, 2)
        assert np.all(np.diff(events[:, 0]) > 0)
