"""Tests for whole-device monitoring and WQ disable semantics."""

import numpy as np
import pytest

from repro.core.multi_engine import MultiEngineMonitor
from repro.dsa.completion import CompletionRecord, CompletionStatus
from repro.dsa.descriptor import make_memcpy, make_noop
from repro.hw.units import us_to_cycles

from tests.core.test_recon import build_multi_engine_system
from tests.conftest import build_host


class TestMultiEngineMonitor:
    def test_needs_queues(self):
        system, attacker, _ = build_multi_engine_system()
        with pytest.raises(ValueError):
            MultiEngineMonitor(attacker, [])

    def test_quiet_device_reads_nothing(self):
        system, attacker, _ = build_multi_engine_system()
        monitor = MultiEngineMonitor(attacker, [0, 1, 2])
        activity = monitor.watch(system.timeline, duration_us=400)
        assert all(a.evictions == 0 for a in activity.values())

    def test_localizes_the_busy_engine(self):
        system, attacker, victim = build_multi_engine_system()
        monitor = MultiEngineMonitor(attacker, [0, 1, 2])
        v_portal = victim.portal(1)
        v_comp = victim.comp_record()
        start = system.clock.now
        for k in range(40):
            system.timeline.schedule_at(
                start + us_to_cycles(20.0 * (k + 1)),
                lambda: v_portal.enqcmd(make_noop(victim.pasid, v_comp)),
            )
        activity = monitor.watch(system.timeline, duration_us=900)
        assert monitor.busiest(activity) == 1
        assert activity[1].activity_rate > 0.3
        assert activity[0].evictions == 0
        assert activity[2].evictions == 0


class TestWqDisable:
    def test_disable_aborts_queued_descriptors(self):
        host = build_host(wq_size=8)
        proc = host.new_process()
        comp_addrs = [proc.comp_record() for _ in range(4)]
        anchor = make_memcpy(
            proc.pasid, proc.buffer(1 << 22), proc.buffer(1 << 22), 1 << 22,
            proc.comp_record(),
        )
        anchor_ticket = proc.portal.submit(anchor)  # occupies the engine
        tickets = [
            proc.portal.submit(make_noop(proc.pasid, addr)) for addr in comp_addrs
        ]
        aborted = host.device.disable_wq(0)
        assert aborted == 4
        for ticket, addr in zip(tickets, comp_addrs):
            assert ticket.record.status is CompletionStatus.ABORT
            record = CompletionRecord.decode(proc.read(addr, 32))
            assert record.status is CompletionStatus.ABORT
        # The in-flight anchor still completes normally.
        proc.portal.wait(anchor_ticket)
        assert anchor_ticket.record.status is CompletionStatus.SUCCESS

    def test_disable_empty_queue_is_noop(self):
        host = build_host()
        assert host.device.disable_wq(0) == 0

    def test_slots_freed_after_disable(self):
        host = build_host(wq_size=4)
        proc = host.new_process()
        anchor = make_memcpy(
            proc.pasid, proc.buffer(1 << 22), proc.buffer(1 << 22), 1 << 22,
            proc.comp_record(),
        )
        proc.portal.submit(anchor)
        for _ in range(3):
            proc.portal.submit(make_noop(proc.pasid, proc.comp_record()))
        assert host.device.wq(0).is_full
        host.device.disable_wq(0)
        # Only the executing anchor still holds a slot.
        assert host.device.wq(0).occupancy == 1
