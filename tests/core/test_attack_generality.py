"""Attack generality: victims on dedicated queues, mixed topologies.

The DevTLB primitive only requires an *engine* shared with the victim —
the victim may sit behind a dedicated queue (movdir64b) and still leak,
which these tests pin down.
"""

import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.dsa.descriptor import make_memcpy, make_noop
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.virt.system import CloudSystem


def build_mixed_queue_system():
    """Engine 0 serves a SWQ (attacker) and a DWQ (victim)."""
    system = CloudSystem(seed=47)
    device = system.device
    device.configure_group(0, (0,))
    device.configure_wq(
        WorkQueueConfig(wq_id=0, size=16, mode=WqMode.SHARED, group_id=0)
    )
    device.configure_wq(
        WorkQueueConfig(wq_id=1, size=16, mode=WqMode.DEDICATED, group_id=0)
    )
    attacker = system.create_vm("attacker-vm").spawn_process("attacker")
    victim = system.create_vm("victim-vm").spawn_process("victim")
    system.open_portal(attacker, 0)
    system.open_portal(victim, 1)
    return system, attacker, victim


class TestDedicatedQueueVictim:
    def test_dwq_victim_still_leaks_through_devtlb(self):
        system, attacker, victim = build_mixed_queue_system()
        attack = DsaDevTlbAttack(attacker, wq_id=0)
        attack.calibrate(samples=40)
        v_portal = victim.portal(1)
        v_comp = victim.comp_record()

        attack.prime()
        assert not attack.probe().evicted  # quiet

        v_portal.movdir64b(make_noop(victim.pasid, v_comp))
        v_portal.wait(v_portal.last_ticket)
        assert attack.probe().evicted  # the DWQ submission was visible

    def test_dwq_victim_memcpy_visible(self):
        system, attacker, victim = build_mixed_queue_system()
        attack = DsaDevTlbAttack(attacker, wq_id=0)
        attack.calibrate(samples=40)
        v_portal = victim.portal(1)
        src, dst = victim.buffer(16384), victim.buffer(16384)
        comp = victim.comp_record()

        attack.prime()
        v_portal.movdir64b(make_memcpy(victim.pasid, src, dst, 8192, comp))
        v_portal.wait(v_portal.last_ticket)
        assert attack.probe().evicted

    def test_swq_attack_cannot_reach_dwq_victim(self):
        """Congest+Probe needs a *shared* queue: the DWQ victim never
        takes the armed slot, so the SWQ primitive reads silence."""
        from repro.core.swq_attack import DsaSwqAttack
        from repro.hw.units import us_to_cycles

        system, attacker, victim = build_mixed_queue_system()
        attack = DsaSwqAttack(attacker, wq_id=0, anchor_bytes=1 << 21)
        v_portal = victim.portal(1)
        v_comp = victim.comp_record()
        system.timeline.schedule_after_us(
            20, lambda: v_portal.movdir64b(make_noop(victim.pasid, v_comp))
        )
        result = attack.run_round(
            idle_cycles=us_to_cycles(40), timeline=system.timeline
        )
        assert not result.victim_detected
