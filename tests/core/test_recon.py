"""Tests for victim engine/queue reconnaissance."""

import pytest

from repro.core.recon import find_victim_engine, find_victim_swq
from repro.dsa.descriptor import Descriptor, make_noop
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import ConfigurationError
from repro.virt.system import CloudSystem


def build_multi_engine_system():
    """Three engines, three SWQs (0,1,2), victim on WQ 1 (engine 1)."""
    system = CloudSystem(seed=81)
    device = system.device
    for engine in range(3):
        device.configure_group(engine, (engine,))
        device.configure_wq(
            WorkQueueConfig(wq_id=engine, size=16, mode=WqMode.SHARED, group_id=engine)
        )
    attacker_vm = system.create_vm("attacker-vm")
    victim_vm = system.create_vm("victim-vm")
    attacker = attacker_vm.spawn_process("attacker")
    victim = victim_vm.spawn_process("victim")
    for wq in range(3):
        system.open_portal(attacker, wq)
    system.open_portal(victim, 1)
    return system, attacker, victim


class TestEngineRecon:
    def test_finds_the_victim_engine(self):
        system, attacker, victim = build_multi_engine_system()
        v_portal = victim.portal(1)
        v_comp = victim.comp_record()

        def trigger():
            v_portal.enqcmd(make_noop(victim.pasid, v_comp))

        result = find_victim_engine(
            attacker, [0, 1, 2], trigger, system.timeline, windows=5
        )
        assert result.best.wq_id == 1
        assert result.confident

    def test_silent_victim_gives_no_confidence(self):
        system, attacker, victim = build_multi_engine_system()
        result = find_victim_engine(
            attacker, [0, 1, 2], lambda: None, system.timeline, windows=4
        )
        assert not result.confident
        assert all(o.hits == 0 for o in result.observations)

    def test_no_candidates_rejected(self):
        system, attacker, victim = build_multi_engine_system()
        with pytest.raises(ConfigurationError):
            find_victim_engine(attacker, [], lambda: None, system.timeline)


class TestSwqRecon:
    def test_finds_the_victim_queue(self):
        system, attacker, victim = build_multi_engine_system()
        v_portal = victim.portal(1)
        noop = Descriptor(
            opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
        )

        def trigger():
            v_portal.enqcmd(noop)

        result = find_victim_swq(
            attacker, [0, 1, 2], trigger, system.timeline, windows=5
        )
        assert result.best.wq_id == 1
        assert result.confident

    def test_observation_hit_rate(self):
        from repro.core.recon import ReconObservation

        assert ReconObservation(wq_id=0, windows=4, hits=2).hit_rate == 0.5
        assert ReconObservation(wq_id=0, windows=0, hits=0).hit_rate == 0.0
