"""The linter's own test suite: golden fixtures, suppressions,
baselines, rule selection, the CLI, and the self-scan of ``src/``.

Each rule has a positive fixture (every construct it must flag) and a
negative fixture (the sanctioned alternatives) under ``lint_fixtures/``;
``expected.json`` is the golden ``{filename: [[rule, line], ...]}`` map.
Fixtures claim their pretend module scope with a
``# repro-lint-fixture-module:`` directive, since scoped rules key off
the dotted module name.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import PROJECT_RULES, Baseline, LintEngine, RULES
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import fingerprint, suppressed_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
EXPECTED = json.loads((FIXTURES / "expected.json").read_text())


def _findings(engine: LintEngine, *paths, baseline=None):
    return engine.run([str(p) for p in paths], baseline=baseline)


# ----------------------------------------------------------------------
# Golden fixtures: every rule fires where expected — and nowhere else.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(EXPECTED), ids=lambda n: n)
def test_fixture_matches_golden(name):
    engine = LintEngine(root=FIXTURES)
    report = _findings(engine, FIXTURES / name)
    got = [[f.rule, f.line] for f in report.all_findings]
    assert got == EXPECTED[name], (
        f"{name}: expected {EXPECTED[name]}, got {got}"
    )


def test_every_file_rule_has_a_firing_fixture():
    # Project rules (DET101/…) have their own multi-file fixtures under
    # proj_*/, asserted in test_lint_project.py.
    covered = {rule for findings in EXPECTED.values() for rule, _ in findings}
    per_file = set(RULES) - PROJECT_RULES
    assert covered == per_file, (
        "each per-file rule needs a positive fixture; missing:"
        f" {per_file - covered}"
    )


def test_every_file_rule_has_a_negative_fixture():
    prefixes = {rule.lower() for rule in RULES} - {
        rule.lower() for rule in PROJECT_RULES
    }
    negatives = {
        p.name.split("_negative")[0]
        for p in FIXTURES.glob("*_negative.py")
    }
    assert prefixes <= negatives


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_inline_suppressions_scoped_and_blanket():
    engine = LintEngine(root=FIXTURES)
    report = _findings(engine, FIXTURES / "suppressions.py")
    # Two suppressed (ignore[DET001] + blanket ignore); the mis-scoped
    # ignore[DET002] does not silence a DET001 finding.
    assert report.suppressed == 2
    assert [[f.rule, f.line] for f in report.all_findings] == [["DET001", 16]]


def test_suppressed_rules_parser():
    assert suppressed_rules("x = 1") is None
    assert suppressed_rules("x = 1  # repro-lint: ignore") == frozenset()
    assert suppressed_rules(
        "x = 1  # repro-lint: ignore[DET001, EXC001]"
    ) == {"DET001", "EXC001"}
    assert suppressed_rules("x = 1  # repro-lint:ignore[det001]") == {"DET001"}


# ----------------------------------------------------------------------
# Baseline: fingerprints survive line shifts; round-trips are stable.
# ----------------------------------------------------------------------
def test_baseline_roundtrip_and_line_shift(tmp_path):
    src = FIXTURES / "det001_positive.py"
    work = tmp_path / "det001_positive.py"
    work.write_text(src.read_text())

    engine = LintEngine(root=tmp_path)
    first = _findings(engine, work)
    assert first.findings

    baseline = Baseline.from_findings(first)
    baseline_path = tmp_path / "lint-baseline.json"
    baseline.save(baseline_path)
    reloaded = Baseline.load(baseline_path)
    assert reloaded.fingerprints == baseline.fingerprints

    # Shift every finding down two lines; fingerprints must still match.
    lines = work.read_text().splitlines()
    lines.insert(1, "# shifted")
    lines.insert(1, "# shifted")
    work.write_text("\n".join(lines) + "\n")

    second = _findings(engine, work, baseline=reloaded)
    assert second.findings == []
    assert second.baselined == len(first.findings)


def test_fingerprint_disambiguates_identical_lines():
    from repro.lint.checker import Finding

    finding = Finding(path="a.py", line=3, col=1, rule="DET001", message="m")
    assert fingerprint(finding, "x = random.random()", 1) != fingerprint(
        finding, "x = random.random()", 2
    )


def test_malformed_baseline_rejected(tmp_path):
    bad = tmp_path / "lint-baseline.json"
    bad.write_text('{"version": 99, "findings": {}}')
    with pytest.raises(ValueError):
        Baseline.load(bad)


# ----------------------------------------------------------------------
# Rule selection
# ----------------------------------------------------------------------
def test_select_runs_only_chosen_rules():
    engine = LintEngine(root=FIXTURES, select=["DET001"])
    report = _findings(engine, FIXTURES / "det002_positive.py")
    assert report.all_findings == []


def test_ignore_skips_rules():
    engine = LintEngine(root=FIXTURES, ignore=["DET002"])
    report = _findings(engine, FIXTURES / "det002_positive.py")
    assert report.all_findings == []


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule id"):
        LintEngine(select=["DET999"])


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    engine = LintEngine(root=tmp_path)
    report = _findings(engine, bad)
    assert [f.rule for f in report.all_findings] == ["SYN000"]


# ----------------------------------------------------------------------
# CLI (in-process via main(argv))
# ----------------------------------------------------------------------
def test_cli_reports_findings_and_exit_code(capsys):
    code = lint_main(
        ["det001_positive.py", "--root", str(FIXTURES), "--no-baseline",
         "--no-cache"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out
    assert "det001_positive.py:10:" in out


def test_cli_clean_file_exits_zero(capsys):
    code = lint_main(
        ["det001_negative.py", "--root", str(FIXTURES), "--no-baseline",
         "--no-cache"]
    )
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_format(capsys):
    code = lint_main(
        [
            "det002_positive.py",
            "--root",
            str(FIXTURES),
            "--no-baseline",
            "--no-cache",
            "--format",
            "json",
        ]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"] == {"DET002": 6}
    assert all(f["rule"] == "DET002" for f in doc["findings"])


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    work = tmp_path / "fixture.py"
    work.write_text((FIXTURES / "det003_positive.py").read_text())
    assert lint_main(["fixture.py", "--root", str(tmp_path)]) == 1
    assert (
        lint_main(["fixture.py", "--root", str(tmp_path), "--write-baseline"])
        == 0
    )
    capsys.readouterr()
    assert lint_main(["fixture.py", "--root", str(tmp_path)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_cli_unknown_rule_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--select", "NOPE", "src"])
    assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# Self-scan: the tree this linter ships in must itself be clean.
# ----------------------------------------------------------------------
def test_src_tree_is_clean_in_process():
    engine = LintEngine(root=REPO_ROOT)
    baseline_path = REPO_ROOT / "lint-baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
    report = engine.run(["src"], baseline=baseline)
    assert report.all_findings == [], [
        f.format_text() for f in report.all_findings
    ]


def test_committed_baseline_is_empty():
    # Acceptance criterion: every real finding was fixed, not baselined.
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert baseline.fingerprints == {}


@pytest.mark.lint
def test_src_tree_is_clean_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
