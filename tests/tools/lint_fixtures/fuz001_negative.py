# repro-lint-fixture-module: repro.fuzz.fixture_fuz001_ok
"""FUZ001 negative fixture: the sanctioned derivation funnel.

Constructors live only in ``derive_*`` helpers; everything else takes a
``numpy.random.Generator`` parameter and draws from it.
"""

import numpy as np

_STREAM = 0xF022


def derive_rng(seed: int, *lanes: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence((_STREAM, seed, *lanes)))


def derive_case_rng(seed: int, iteration: int) -> np.random.Generator:
    sequence = np.random.SeedSequence((_STREAM, seed, 1, iteration))
    return np.random.default_rng(sequence)


def draw_size(rng: np.random.Generator, sizes: tuple) -> int:
    return int(sizes[int(rng.integers(0, len(sizes)))])


def shuffle_ops(rng: np.random.Generator, ops: list) -> list:
    order = rng.permutation(len(ops))
    return [ops[int(index)] for index in order]
