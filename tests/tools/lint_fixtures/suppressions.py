# repro-lint-fixture-module: repro.analysis.fixture_suppressions
"""Suppression fixture: inline directives silence scoped rules."""

import random


def scoped_suppression() -> float:
    return random.random()  # repro-lint: ignore[DET001]


def blanket_suppression() -> float:
    return random.random()  # repro-lint: ignore


def wrong_scope_still_fires() -> float:
    return random.random()  # repro-lint: ignore[DET002]
