# repro-lint-fixture-module: repro.workloads.fixture_exc001
"""EXC001 positive fixture: handlers wide enough to hide corruption."""

import contextlib


def bare_except(trial) -> None:
    try:
        trial()
    except:  # noqa: E722
        pass


def broad_except(trial):
    try:
        return trial()
    except Exception:
        return None


def broad_in_tuple(trial):
    try:
        return trial()
    except (ValueError, Exception):
        return None


def broad_suppress(journal) -> None:
    with contextlib.suppress(Exception):
        journal.flush()
