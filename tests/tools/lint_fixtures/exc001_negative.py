# repro-lint-fixture-module: repro.workloads.fixture_exc001_ok
"""EXC001 negative fixture: narrow or re-raising handlers."""

import contextlib

from repro.errors import ReproError


def narrow_except(trial):
    try:
        return trial()
    except ReproError:
        return None


def stdlib_narrow(path):
    try:
        return path.read_text()
    except FileNotFoundError:
        return ""


def broad_but_reraises(trial, log):
    try:
        return trial()
    except Exception:
        log.error("trial blew up")
        raise


def narrow_suppress(path) -> None:
    with contextlib.suppress(FileNotFoundError):
        path.unlink()
