# repro-lint-fixture-module: repro.analysis.fixture_det001
"""DET001 positive fixture: every form of global/unseeded RNG."""

import random
import secrets

import numpy as np
from numpy.random import default_rng

_MODULE_RNG = random.Random(42)  # module-level: draw order <- import order


def stdlib_global() -> float:
    return random.random()


def stdlib_shuffle(items: list) -> None:
    random.shuffle(items)


def numpy_legacy() -> float:
    return np.random.rand()


def numpy_legacy_choice(items: list):
    return np.random.choice(items)


def numpy_random_state():
    return np.random.RandomState(7)


def unseeded_generator():
    return default_rng()


def unseeded_seed_sequence():
    return np.random.SeedSequence()


def unseeded_stdlib_instance():
    return random.Random()


def os_entropy() -> bytes:
    return secrets.token_bytes(16)
