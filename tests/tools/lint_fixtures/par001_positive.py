# repro-lint-fixture-module: repro.experiments.fixture_par001
"""PAR001 positive fixture: trial closures capturing mutable state."""

from repro.experiments.runner import TrialSpec


def late_bound_loop_variable(windows):
    specs = []
    for window in windows:
        specs.append(TrialSpec(key=f"w/{window}", fn=lambda: run(window)))
    return specs


def mutated_counter_capture(windows):
    specs = []
    attempt = 0
    for window in windows:
        attempt += 1
        specs.append(
            TrialSpec(key=f"w/{window}", fn=lambda w=window: run(w, attempt))
        )
    return specs


def shared_accumulator_capture(windows):
    shared = []

    def fn():
        shared.append(observe())
        return shared

    return [TrialSpec(key="agg", fn=fn)]


def positional_fn_argument(windows):
    specs = []
    for window in windows:
        specs.append(TrialSpec(f"w/{window}", lambda: run(window)))
    return specs
