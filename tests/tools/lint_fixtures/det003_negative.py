# repro-lint-fixture-module: repro.core.fixture_det003_ok
"""DET003 negative fixture: sorted sets, benign dict iteration."""


def sorted_set(points) -> list:
    out = []
    for name in sorted({p.name for p in points}):
        out.append(name)
    return out


def values_loop_without_sink(buckets: dict) -> int:
    total = 0
    for bucket in buckets.values():
        total += len(bucket)
    return total


def plain_dict_loop(counts: dict) -> list:
    # Insertion-ordered, hence deterministic.
    return [key for key in counts]


def membership_not_iteration(items, wanted) -> bool:
    return wanted in set(items)
