# repro-lint-fixture-module: repro.core.fixture_det003
"""DET003 positive fixture: hash-ordered iteration."""


def over_set_literal(points) -> list:
    out = []
    for name in {p.name for p in points}:
        out.append(name)
    return out


def over_set_call(items) -> list:
    return [item for item in set(items)]


def over_union(a: set, b: set) -> list:
    out = []
    for item in a.union(b):
        out.append(item)
    return out


def over_local_set_name() -> list:
    pending = {"alpha", "beta"}
    out = []
    for name in pending:
        out.append(name)
    return out


def values_loop_feeding_scheduler(timeline, queues: dict) -> None:
    for queue in queues.values():
        timeline.schedule_at(queue.deadline, queue.drain)
