# repro-lint-fixture-module: repro.dsa.fixture_det002_ok
"""DET002 negative fixture: model code reads only the simulated clock."""


def elapsed_cycles(clock) -> int:
    return clock.now()


def deadline(clock, budget_cycles: int) -> int:
    return clock.now() + budget_cycles


def stamp_from_helper() -> float:
    # The sanctioned indirection: the runner owns the host clock.
    from repro.experiments.runner import wall_clock

    return wall_clock()
