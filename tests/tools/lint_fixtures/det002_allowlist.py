# repro-lint-fixture-module: repro.experiments.runner
"""DET002 negative fixture: the allowlisted runner module itself."""

import time


def wall_clock() -> float:
    return time.time()


def monotonic_clock() -> float:
    return time.monotonic()
