# repro-lint-fixture-module: repro.covert.fixture_sim001
"""SIM001 positive fixture: site contract violations from a non-owner."""

from repro.faults.plan import FaultSite


def fire_unowned_site(injector, now: int) -> None:
    # PREEMPTION belongs to repro.virt.scheduler, not this module.
    injector.fire(FaultSite.PREEMPTION, now)


def fire_unknown_site(injector, now: int) -> None:
    injector.fire("bogus_site", now)


def mutate_tlb_directly(devtlb) -> None:
    devtlb.invalidate_all()


def hand_wired_attachment(device, injector) -> None:
    device.fault_injector = injector
