# repro-lint-fixture-module: repro.experiments.fixture_par001_ok
"""PAR001 negative fixture: self-contained, shard-safe trial closures."""

import functools

from repro.experiments.runner import TrialSpec


def default_rebinding_idiom(windows, seed):
    specs = []
    for window in windows:
        specs.append(
            TrialSpec(key=f"w/{window}", fn=lambda window=window: run(window, seed))
        )
    return specs


def immutable_parameter_reads(windows, settings):
    # `settings` is never mutated or loop-bound: reading it free is fine.
    return [
        TrialSpec(key=f"w/{w}", fn=lambda w=w: collect(w, settings))
        for w in windows
    ]


def module_level_callable(windows):
    return [TrialSpec(key=f"w/{w}", fn=functools.partial(run, w)) for w in windows]


def local_def_with_defaults(windows):
    specs = []
    for window in windows:

        def fn(window=window):
            return run(window)

        specs.append(TrialSpec(key=f"w/{window}", fn=fn))
    return specs
