# repro-lint-fixture-module: repro.experiments.parallel
"""Negative twin: worker state threaded through returns, no globals."""


def _worker_main(payload):
    seen = []
    seen.append(payload)
    return seen


def _run_shard(items):
    out = {}
    for item in items:
        out[item] = _worker_main(item)
    return out
