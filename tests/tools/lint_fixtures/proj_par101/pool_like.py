# repro-lint-fixture-module: repro.experiments.pool
"""Pretend pool module: a worker entry point two hops from a global."""

_SEEN = []


def _pool_worker_main(payload):
    return _handle(payload)


def _handle(payload):
    _note(payload)
    return payload


def _note(payload):
    # Module-level mutable state written from worker-reachable code:
    # each forked worker mutates its own copy, silently diverging.
    _SEEN.append(payload)


def parent_side_note(payload):
    # Same write, but not reachable from any worker entry — allowed.
    _SEEN.append(payload)
