# repro-lint-fixture-module: repro.analysis.fixture_det001_ok
"""DET001 negative fixture: all randomness threads through seeds."""

import random

import numpy as np


def seeded_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def seeded_sequence(seed: int) -> np.random.SeedSequence:
    return np.random.SeedSequence(seed)


def seeded_stdlib_inside_function(seed: int) -> random.Random:
    # Seeded and function-local: draw order is the caller's business.
    return random.Random(seed)


def generator_methods(rng: np.random.Generator) -> float:
    rng.shuffle(values := list(range(4)))
    return rng.random() + values[0]


def spawned(parent: np.random.SeedSequence) -> list:
    return parent.spawn(3)
