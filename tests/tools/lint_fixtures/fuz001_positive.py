# repro-lint-fixture-module: repro.fuzz.fixture_fuz001
"""FUZ001 positive fixture: RNG lineage forks inside ``repro.fuzz``.

Every constructor here is *seeded*, so DET001 stays quiet — FUZ001's
whole point is that a seed alone is not enough inside the fuzzer.
"""

import random

import numpy as np
from numpy.random import SeedSequence, default_rng


def module_scope_rng():
    return default_rng(7)  # seeded, but not a derive_* helper


def fork_seed_sequence(seed: int):
    return SeedSequence((0xF022, seed))


def wrap_bit_generator(seed: int):
    return np.random.Generator(np.random.PCG64(seed))


def local_stdlib_instance():
    rng = random.Random(42)
    return rng.random()


def derives_but_misnamed(seed: int, lane: int):
    return np.random.default_rng((seed, lane))
