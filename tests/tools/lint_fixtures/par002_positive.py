# repro-lint-fixture-module: repro.experiments.fixture_par002
"""PAR002 positive fixture: pool resources acquired with no release."""

from multiprocessing import shared_memory

from repro.experiments.pool import ShmRing
from repro.experiments.supervisor import HeartbeatBoard


def bare_segment(slots):
    shm = shared_memory.SharedMemory(create=True, size=slots)
    return shm.name  # the handle itself is dropped, segment leaks


def unmanaged_ring(lock, capacity):
    ring = ShmRing.create(lock, capacity)
    ring.write(b"payload")
    ring.close()  # not reached if write raises: no finally, no with


def unmanaged_attach(name, lock, capacity):
    ring = ShmRing.attach(name, lock, capacity)
    return ring.read()


def board_without_owner(workers):
    board = HeartbeatBoard(workers)
    board.beat(0)


def attach_expression_statement(name, slots):
    HeartbeatBoard.attach(name, slots).read(0)
