# repro-lint-fixture-module: fixproj.factory
"""Resource factories: returning an acquisition is sanctioned (PAR002)."""

from repro.experiments.pool import ShmRing


def make_ring(lock, capacity):
    return ShmRing.create(lock, capacity)


def make_ring_indirect(lock, capacity):
    # Still a factory two levels deep — callers own the result.
    return make_ring(lock, capacity)
