# repro-lint-fixture-module: fixproj.user
"""Consumers: the leak is invisible without the factory's summary."""

from contextlib import ExitStack

from fixproj.factory import make_ring, make_ring_indirect


def bad_consume(lock, payload):
    ring = make_ring(lock, 4096)  # leaked: nothing ever closes it
    ring.write(payload)


def bad_consume_indirect(lock, payload):
    ring = make_ring_indirect(lock, 4096)  # leaked through two hops
    ring.write(payload)


def good_with_stack(lock, payload):
    with ExitStack() as stack:
        ring = stack.enter_context(make_ring(lock, 4096))
        ring.write(payload)


def good_finally(lock, payload):
    ring = make_ring(lock, 4096)
    try:
        ring.write(payload)
    finally:
        ring.close()


def good_factory_onward(lock):
    return make_ring(lock, 4096)
