# repro-lint-fixture-module: repro.dsa.wq
"""SIM002 negative fixture: the owning module manages its own state."""

from collections import deque


class WorkQueue:
    def __init__(self) -> None:
        self._outstanding = 0  # owner mutates its own register
        self._entries: deque = deque()  # declaration idiom on self
        self.invariant_monitor = None  # declaration idiom: allowed

    def try_enqueue(self, entry) -> bool:
        self._entries.append(entry)
        self._outstanding += 1
        return True

    def release_slot(self) -> None:
        self._outstanding -= 1
