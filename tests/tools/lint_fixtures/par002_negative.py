# repro-lint-fixture-module: repro.experiments.fixture_par002_ok
"""PAR002 negative fixture: every acquisition has a tied release path."""

import atexit
import contextlib
import weakref
from multiprocessing import shared_memory

from repro.experiments.pool import ShmRing
from repro.experiments.supervisor import HeartbeatBoard


def context_manager(lock, capacity):
    with ShmRing.create(lock, capacity) as ring:
        ring.write(b"payload")


def with_statement_segment(slots):
    with shared_memory.SharedMemory(create=True, size=slots) as shm:
        return bytes(shm.buf[:8])


def exit_stack(name, lock, capacity, slots):
    with contextlib.ExitStack() as stack:
        ring = stack.enter_context(ShmRing.attach(name, lock, capacity))
        board = stack.enter_context(HeartbeatBoard.attach(name, slots))
        board.beat(0)
        return ring.read()


def try_finally(workers):
    board = HeartbeatBoard(workers)
    try:
        board.beat(0)
    finally:
        board.close()


def registered_finalizers(workers, slots):
    board = HeartbeatBoard(workers)
    atexit.register(board.close)
    spare = HeartbeatBoard(slots)
    weakref.finalize(spare, spare.close)
    return board, spare


class Owner:
    def __init__(self, slots):
        # Ownership moves to the object; its close() manages the segment.
        self._shm = shared_memory.SharedMemory(create=True, size=slots)

    def close(self):
        self._shm.close()
        self._shm.unlink()


def factory(slots):
    shm = shared_memory.SharedMemory(create=True, size=slots)
    return shm  # the caller's scope owns (and is checked for) release
