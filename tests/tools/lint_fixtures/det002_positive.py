# repro-lint-fixture-module: repro.dsa.fixture_det002
"""DET002 positive fixture: host-clock reads inside a model package."""

import datetime
import os
import time
import uuid
from time import perf_counter as pc


def stamp() -> float:
    return time.time()


def measure() -> float:
    return pc()


def monotonic_budget() -> float:
    return time.monotonic()


def now() -> datetime.datetime:
    return datetime.datetime.now()


def entropy() -> bytes:
    return os.urandom(8)


def run_id() -> uuid.UUID:
    return uuid.uuid4()
