# repro-lint-fixture-module: repro.experiments.fixture_api001
"""API001 positive fixture: trial keys derived from execution order."""

import itertools

from repro.experiments.runner import TrialSpec


def keys_from_enumerate(windows):
    specs = []
    for index, window in enumerate(windows):
        specs.append(TrialSpec(key=f"trial-{index}", run=lambda: window))
    return specs


def keys_from_counter(windows):
    specs = []
    count = 0
    for window in windows:
        count += 1
        specs.append(TrialSpec(key=f"t{count}", run=lambda: window))
    return specs


def keys_from_next(windows):
    counter = itertools.count()
    return [
        TrialSpec(key=f"t{next(counter)}", run=lambda: w) for w in windows
    ]


def keys_from_accumulator_len(windows):
    specs = []
    for window in windows:
        specs.append(TrialSpec(key=f"t{len(specs)}", run=lambda: window))
    return specs
