# repro-lint-fixture-module: fixproj.writer
"""Artifact writers: clock taint arriving through two helper hops."""

from fixproj.clocky import label, stamp

from repro.experiments.checkpoint import CheckpointJournal, atomic_write_json
from repro.experiments.runner import TrialSpec


def bad_manifest(run_dir, run_id):
    payload = {"run": run_id, "started": stamp()}
    atomic_write_json(run_dir / "manifest.json", payload)


def bad_trial_key(run_id, fn):
    return TrialSpec(key=label(run_id), fn=fn)


def good_journal(journal: CheckpointJournal, index, key, result, t0):
    # elapsed_s is the sanctioned telemetry field (exempt kwarg): the
    # differential layer strips it before comparing journals.
    journal.record_success(index, key, result, elapsed_s=stamp() - t0)


def good_manifest(run_dir, run_id, config):
    atomic_write_json(run_dir / "manifest.json", {"run": run_id, "cfg": config})
