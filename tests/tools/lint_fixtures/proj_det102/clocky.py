# repro-lint-fixture-module: fixproj.clocky
"""Helper that reads the (injectable) host clock — legitimate per-file."""

from repro.experiments.runner import wall_clock


def stamp():
    return wall_clock()


def label(run_id):
    return f"run-{run_id}-{stamp()}"
