# repro-lint-fixture-module: fixproj.rng_helper
"""Helper module constructing RNG streams — nothing wrong *locally*."""

import numpy as np


def make_stream():
    # Unseeded: OS entropy.  Fine here; a bug only once it reaches model
    # code (two calls away, in another module).
    return np.random.default_rng()


def make_seeded_stream(seed):
    return np.random.default_rng(seed)
