# repro-lint-fixture-module: fixproj.mid
"""Middle hop: launders the stream through one more call."""

from fixproj.rng_helper import make_seeded_stream, make_stream

from repro.experiments.runner import spawn_trial_seed


def build():
    return make_stream()


def build_blessed(run_seed, key):
    return make_seeded_stream(spawn_trial_seed(run_seed, key))
