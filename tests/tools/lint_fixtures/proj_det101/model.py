# repro-lint-fixture-module: repro.dsa.fixmodel
"""Pretend model code: consumes an RNG stream for device timing."""


def consume(rng):
    return rng.integers(0, 8)
