# repro-lint-fixture-module: fixproj.driver
"""Driver: the provenance bug becomes visible only whole-program."""

from fixproj.mid import build, build_blessed

from repro.dsa.fixmodel import consume


def bad(run_seed):
    stream = build()  # unseeded two calls up the chain
    return consume(stream)


def good(run_seed):
    return consume(build_blessed(run_seed, "trial-0"))
