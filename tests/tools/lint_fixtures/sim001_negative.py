# repro-lint-fixture-module: repro.virt.scheduler
"""SIM001 negative fixture: the owning module hooks its own site."""

from repro.faults.plan import FaultSite


class Timeline:
    def __init__(self) -> None:
        self.fault_injector = None  # declaration idiom: allowed

    def maybe_preempt(self, now: int):
        if self.fault_injector is None:
            return None
        return self.fault_injector.fire(FaultSite.PREEMPTION, now)
