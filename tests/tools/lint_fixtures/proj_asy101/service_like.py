# repro-lint-fixture-module: repro.service.fake
"""Pretend service module: a coroutine two hops from a host blocker."""

import time


async def dispatcher(queue):
    spec = await queue.get()
    return _handle(spec)


def _handle(spec):
    return _settle(spec)


def _settle(spec):
    # Host sleep on the device-time loop: every multiplexed session
    # freezes, and the schedule re-couples to the wall clock.
    time.sleep(0.1)
    return spec


def _snapshot(path, done):
    # Both blockers sit in a sync helper a coroutine can reach: the
    # bare Event.wait and the sync pathlib write.
    done.wait()
    path.write_text("snapshot")


async def drainer(path, done):
    return _snapshot(path, done)


def parent_side(path):
    # Same sync write, but unreachable from any coroutine — allowed.
    path.write_text("parent")
