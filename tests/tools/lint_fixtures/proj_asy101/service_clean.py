# repro-lint-fixture-module: repro.service.fake_clean
"""Negative twin: coroutines park on loop primitives only."""


async def worker(loop, queue, done):
    spec = await queue.get()
    await loop.sleep_cycles(100)
    # The awaited form is the loop's own VirtualEvent primitive.
    await done.wait()
    return spec


async def helper_chain(loop):
    return await _parked(loop)


async def _parked(loop):
    await loop.sleep_cycles(1)
    return loop.now
