# repro-lint-fixture-module: repro.experiments.fixture_api001_ok
"""API001 negative fixture: keys spelled from the spec's own values."""

from repro.experiments.runner import TrialSpec


def keys_from_spec_values(sites, windows):
    specs = []
    for site in sites:
        for window in windows:
            specs.append(
                TrialSpec(key=f"{site}/w{window:g}", run=lambda: None)
            )
    return specs


def keys_from_range(runs: int):
    # range() indices are part of the spec, not of execution order.
    return [
        TrialSpec(key=f"run-{r}", run=lambda: None) for r in range(runs)
    ]


def enumerate_used_only_for_labels(sites):
    specs = []
    for index, site in enumerate(sites):
        label = f"#{index}"
        print(label)
        specs.append(TrialSpec(key=f"site/{site}", run=lambda: None))
    return specs
