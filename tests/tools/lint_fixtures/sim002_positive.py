# repro-lint-fixture-module: repro.experiments.fixture_sim002
"""SIM002 positive fixture: guarded-field mutations from a non-owner."""


def tamper_occupancy(wq) -> None:
    # _outstanding belongs to repro.dsa.wq, not this module.
    wq._outstanding -= 1


def forge_completion(ticket, record) -> None:
    ticket.record = record


def rewind_clock(clock, cycles: int) -> None:
    clock._now = clock._now - cycles


def evict_by_hand(sub_entry) -> None:
    sub_entry.slots.pop()


def scrub_queue(wq) -> None:
    wq._entries.clear()


def hand_wired_monitor(device, monitor) -> None:
    device.invariant_monitor = monitor


class UnrelatedLedger:
    """A non-owner class declaring a same-named private attribute."""

    def __init__(self) -> None:
        # Fresh empty value on self reads as a declaration, not a
        # mutation of monitored state (cf. CheckpointJournal._entries).
        # Deliberately NOT in expected.json.
        self._entries = {}
        self.invariant_monitor = None  # declaration idiom: allowed
