"""Tests for the accel-config topology loader."""

import json

import numpy as np
import pytest

from repro.dsa.device import DsaDevice, DsaDeviceConfig
from repro.dsa.wq import WqMode
from repro.errors import ConfigurationError, QueueConfigurationError
from repro.hw.clock import TscClock
from repro.hw.memory import PhysicalMemory
from repro.tools.config_loader import apply_topology, dump_topology, load_topology

VALID = {
    "groups": [
        {"id": 0, "engines": [0, 1]},
        {"id": 1, "engines": [2]},
    ],
    "work_queues": [
        {"id": 0, "size": 64, "mode": "shared", "priority": 4, "group": 0},
        {"id": 1, "size": 32, "mode": "dedicated", "group": 1},
    ],
}


def fresh_device():
    return DsaDevice(
        PhysicalMemory(), TscClock(), np.random.default_rng(0),
        DsaDeviceConfig(engine_count=4),
    )


class TestLoadTopology:
    def test_from_dict(self):
        topology = load_topology(VALID)
        assert len(topology.groups) == 2
        assert topology.work_queues[1].mode is WqMode.DEDICATED

    def test_from_json_string(self):
        topology = load_topology(json.dumps(VALID))
        assert topology.work_queues[0].size == 64

    def test_from_file(self, tmp_path):
        path = tmp_path / "topology.json"
        path.write_text(json.dumps(VALID))
        topology = load_topology(path)
        assert topology.work_queues[0].priority == 4

    def test_garbage_source_rejected(self):
        with pytest.raises(ConfigurationError):
            load_topology("not json and not a file")

    def test_missing_groups_rejected(self):
        with pytest.raises(ConfigurationError):
            load_topology({"work_queues": VALID["work_queues"]})

    def test_missing_queues_rejected(self):
        with pytest.raises(ConfigurationError):
            load_topology({"groups": VALID["groups"]})

    def test_undeclared_group_reference_rejected(self):
        bad = {
            "groups": [{"id": 0, "engines": [0]}],
            "work_queues": [{"id": 0, "size": 8, "group": 7}],
        }
        with pytest.raises(ConfigurationError):
            load_topology(bad)

    def test_unknown_mode_rejected(self):
        bad = {
            "groups": [{"id": 0, "engines": [0]}],
            "work_queues": [{"id": 0, "size": 8, "group": 0, "mode": "turbo"}],
        }
        with pytest.raises(ConfigurationError):
            load_topology(bad)


class TestApplyTopology:
    def test_apply_configures_device(self):
        device = fresh_device()
        apply_topology(device, VALID)
        assert device.wq(0).config.size == 64
        assert device.group_of_wq(1).engine_ids == (2,)

    def test_oversubscribed_queue_storage_rejected_by_device(self):
        device = fresh_device()
        bad = {
            "groups": [{"id": 0, "engines": [0]}],
            "work_queues": [
                {"id": 0, "size": 100, "group": 0},
                {"id": 1, "size": 100, "group": 0},
            ],
        }
        with pytest.raises(QueueConfigurationError):
            apply_topology(device, bad)

    def test_roundtrip_through_dump(self):
        device = fresh_device()
        apply_topology(device, VALID)
        dumped = dump_topology(device)
        second = fresh_device()
        apply_topology(second, dumped)
        assert dump_topology(second) == dumped
