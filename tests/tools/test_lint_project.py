"""Tests for the whole-program half of the linter: summary extraction,
call-graph construction, taint propagation, the SHA-256 summary cache,
the interprocedural golden fixtures, and SARIF output.

The ``proj_*`` directories under ``lint_fixtures/`` are multi-file
mini-projects (fixture-module directives fake their dotted paths);
``expected_project.json`` is the golden
``{dirname: [[rule, file, line], ...]}`` map.  Everything else builds
throwaway projects in ``tmp_path`` and drives :class:`LintEngine` or the
phase-1/2 APIs directly.
"""

import json
from pathlib import Path

import jsonschema
import pytest

from repro.lint import LintEngine
from repro.lint.cache import SummaryCache, engine_fingerprint
from repro.lint.checker import FileContext
from repro.lint.project import summarize
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.taint import analyze

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
EXPECTED_PROJECT = json.loads(
    (FIXTURES / "expected_project.json").read_text()
)
SARIF_SCHEMA = json.loads(
    (Path(__file__).resolve().parent / "sarif-2.1.0-subset.json").read_text()
)


def _summarize_source(tmp_path, name, module, source):
    path = tmp_path / name
    path.write_text(source)
    ctx = FileContext.parse(path, name, module)
    return summarize(ctx)


# ----------------------------------------------------------------------
# Golden multi-file fixtures: the interprocedural rules fire where
# expected — and nowhere else (the negative halves live in the same
# directories).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dirname", sorted(EXPECTED_PROJECT), ids=lambda d: d)
def test_project_fixture_matches_golden(dirname):
    engine = LintEngine(root=FIXTURES)
    report = engine.run([FIXTURES / dirname])
    got = [
        [f.rule, f.path.rsplit("/", 1)[-1], f.line]
        for f in report.all_findings
    ]
    assert got == EXPECTED_PROJECT[dirname], (
        f"{dirname}: expected {EXPECTED_PROJECT[dirname]}, got {got}"
    )


def test_every_project_rule_has_a_firing_fixture():
    from repro.lint import PROJECT_RULES

    covered = {
        rule for rows in EXPECTED_PROJECT.values() for rule, _, _ in rows
    }
    assert covered == set(PROJECT_RULES)


def test_project_findings_honor_inline_suppressions(tmp_path):
    bad = (FIXTURES / "proj_par101" / "pool_like.py").read_text()
    bad = bad.replace(
        "    _SEEN.append(payload)\n\n\ndef parent_side_note",
        "    _SEEN.append(payload)  # repro-lint: ignore[PAR101]\n\n\n"
        "def parent_side_note",
    )
    (tmp_path / "pool_like.py").write_text(bad)
    engine = LintEngine(root=tmp_path)
    report = engine.run([tmp_path])
    assert report.all_findings == []
    assert report.suppressed == 1


# ----------------------------------------------------------------------
# Call-graph construction
# ----------------------------------------------------------------------
def test_call_graph_resolves_imports_and_local_names(tmp_path):
    helper = _summarize_source(
        tmp_path,
        "helper.py",
        "fix.helper",
        "def leaf():\n"
        "    return 1\n"
        "\n"
        "def branch():\n"
        "    return leaf()\n",
    )
    main = _summarize_source(
        tmp_path,
        "main.py",
        "fix.main",
        "from fix.helper import branch\n"
        "\n"
        "def top():\n"
        "    return branch()\n",
    )
    analysis = analyze([helper, main])
    assert analysis.call_graph["fix.main.top"] == {"fix.helper.branch"}
    assert analysis.call_graph["fix.helper.branch"] == {"fix.helper.leaf"}
    assert analysis.callers["fix.helper.leaf"] == {"fix.helper.branch"}
    assert analysis.resolve_callee("fix.main.top", "json.dumps") is None


def test_call_graph_resolves_class_instantiation_to_init(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "fix.mod",
        "class Gadget:\n"
        "    def __init__(self, n):\n"
        "        self.n = n\n"
        "\n"
        "def build():\n"
        "    return Gadget(3)\n",
    )
    analysis = analyze([mod])
    assert analysis.call_graph["fix.mod.build"] == {"fix.mod.Gadget.__init__"}


def test_reachability_attributes_functions_to_entries(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "fix.mod",
        "def entry():\n"
        "    return a()\n"
        "\n"
        "def a():\n"
        "    return b()\n"
        "\n"
        "def b():\n"
        "    return 0\n"
        "\n"
        "def island():\n"
        "    return 0\n",
    )
    analysis = analyze([mod])
    reached = analysis.reachable_from(["fix.mod.entry"])
    assert set(reached) == {"fix.mod.entry", "fix.mod.a", "fix.mod.b"}
    assert all(entry == "fix.mod.entry" for entry in reached.values())


# ----------------------------------------------------------------------
# Taint propagation
# ----------------------------------------------------------------------
def test_seed_label_crosses_two_function_boundaries(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "fix.mod",
        "from repro.experiments.runner import spawn_trial_seed\n"
        "\n"
        "def source(run_seed, key):\n"
        "    return spawn_trial_seed(run_seed, key)\n"
        "\n"
        "def middle(run_seed):\n"
        "    return source(run_seed, 'k')\n"
        "\n"
        "def consume(value):\n"
        "    return value\n"
        "\n"
        "def top(run_seed):\n"
        "    return consume(middle(run_seed))\n",
    )
    analysis = analyze([mod])
    assert "seed" in analysis.return_labels["fix.mod.source"]
    assert "seed" in analysis.return_labels["fix.mod.middle"]
    # The call argument's labels reached consume's parameter slot.
    assert "seed" in analysis.param_labels["fix.mod.consume"]["value"]


def test_clock_label_flows_through_helpers(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "fix.mod",
        "from repro.experiments.runner import wall_clock\n"
        "\n"
        "def stamp():\n"
        "    return wall_clock()\n"
        "\n"
        "def wrap():\n"
        "    return {'t': stamp()}\n",
    )
    analysis = analyze([mod])
    assert analysis.return_labels["fix.mod.wrap"] == {"clock"}


def test_api_boundary_params_stay_optimistic(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "repro.dsa.fake",
        "import numpy as np\n"
        "\n"
        "def public_entry(seed):\n"
        "    return np.random.default_rng(seed)\n",
    )
    analysis = analyze([mod])
    assert "api" in analysis.param_labels["repro.dsa.fake.public_entry"]["seed"]
    (key,) = [k for k in analysis.rng_blessed]
    assert analysis.rng_blessed[key] is True


def test_unseeded_rng_is_unblessed_everywhere(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "repro.dsa.fake",
        "import numpy as np\n"
        "\n"
        "def public_entry():\n"
        "    return np.random.default_rng()\n",
    )
    analysis = analyze([mod])
    (key,) = [k for k in analysis.rng_blessed]
    assert analysis.rng_blessed[key] is False
    assert analysis.return_labels["repro.dsa.fake.public_entry"] == {
        "rng-unblessed"
    }


def test_resource_return_is_transitive(tmp_path):
    mod = _summarize_source(
        tmp_path,
        "mod.py",
        "fix.mod",
        "from repro.experiments.pool import ShmRing\n"
        "\n"
        "def make(lock):\n"
        "    return ShmRing.create(lock, 64)\n"
        "\n"
        "def make2(lock):\n"
        "    return make(lock)\n"
        "\n"
        "def make3(lock):\n"
        "    return make2(lock)\n",
    )
    analysis = analyze([mod])
    assert analysis.returns_resource["fix.mod.make"]
    assert analysis.returns_resource["fix.mod.make2"]
    assert analysis.returns_resource["fix.mod.make3"]


def test_import_graph_transitive_importers(tmp_path):
    base = _summarize_source(
        tmp_path, "base.py", "fix.base", "def f():\n    return 1\n"
    )
    mid = _summarize_source(
        tmp_path,
        "mid.py",
        "fix.mid",
        "from fix.base import f\n\ndef g():\n    return f()\n",
    )
    top = _summarize_source(
        tmp_path,
        "top.py",
        "fix.top",
        "from fix.mid import g\n\ndef h():\n    return g()\n",
    )
    other = _summarize_source(
        tmp_path, "other.py", "fix.other", "def k():\n    return 0\n"
    )
    analysis = analyze([base, mid, top, other])
    assert analysis.importers_of("fix.base") == {"fix.mid"}
    assert analysis.transitive_importers({"fix.base"}) == {
        "fix.base",
        "fix.mid",
        "fix.top",
    }
    assert analysis.transitive_importers({"fix.other"}) == {"fix.other"}


# ----------------------------------------------------------------------
# Summary cache: warm runs reuse summaries; an edit invalidates exactly
# the changed module plus its reverse importers.
# ----------------------------------------------------------------------
def _write_project(root):
    (root / "base.py").write_text(
        "# repro-lint-fixture-module: fix.base\n"
        "def f():\n"
        "    return 1\n"
    )
    (root / "mid.py").write_text(
        "# repro-lint-fixture-module: fix.mid\n"
        "from fix.base import f\n"
        "\n"
        "def g():\n"
        "    return f()\n"
    )
    (root / "top.py").write_text(
        "# repro-lint-fixture-module: fix.top\n"
        "from fix.mid import g\n"
        "\n"
        "def h():\n"
        "    return g()\n"
    )
    (root / "lone.py").write_text(
        "# repro-lint-fixture-module: fix.lone\n"
        "def k():\n"
        "    return 0\n"
    )


def test_warm_relint_reanalyzes_only_reverse_deps(tmp_path):
    _write_project(tmp_path)
    cache_path = tmp_path / ".cache.json"

    cold = LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    assert cold.parsed == 4 and cold.cache_hits == 0
    assert set(cold.invalidated_modules) == {
        "fix.base",
        "fix.mid",
        "fix.top",
        "fix.lone",
    }

    warm = LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    assert warm.parsed == 0 and warm.cache_hits == 4
    assert warm.invalidated_modules == []

    # Edit one file: only it is re-parsed; it and its transitive
    # reverse importers are re-verified by phase 2.
    base = tmp_path / "base.py"
    base.write_text(base.read_text() + "\n\ndef f2():\n    return 2\n")
    third = LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    assert third.parsed == 1 and third.cache_hits == 3
    assert set(third.invalidated_modules) == {
        "fix.base",
        "fix.mid",
        "fix.top",
    }

    # Editing a leaf nobody imports invalidates only itself.
    lone = tmp_path / "lone.py"
    lone.write_text(lone.read_text() + "\n\ndef k2():\n    return 0\n")
    fourth = LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    assert fourth.parsed == 1 and fourth.cache_hits == 3
    assert fourth.invalidated_modules == ["fix.lone"]


def test_cached_findings_and_suppressions_replay(tmp_path):
    (tmp_path / "dirty.py").write_text(
        "# repro-lint-fixture-module: repro.dsa.dirty\n"
        "import random\n"
        "\n"
        "def roll():\n"
        "    return random.random()\n"
        "\n"
        "def quiet():\n"
        "    return random.random()  # repro-lint: ignore[DET001]\n"
    )
    cache_path = tmp_path / ".cache.json"
    cold = LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    warm = LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    assert warm.cache_hits == 1
    assert [f.rule for f in warm.all_findings] == [
        f.rule for f in cold.all_findings
    ]
    assert warm.suppressed == cold.suppressed == 1


def test_cache_keyed_to_rule_selection(tmp_path):
    _write_project(tmp_path)
    cache_path = tmp_path / ".cache.json"
    LintEngine(root=tmp_path, cache_path=cache_path).run([tmp_path])
    # A different rule selection must not reuse the old entries.
    narrowed = LintEngine(
        root=tmp_path, cache_path=cache_path, select=["DET101"]
    ).run([tmp_path])
    assert narrowed.cache_hits == 0 and narrowed.parsed == 4


def test_malformed_cache_is_discarded(tmp_path):
    cache_path = tmp_path / ".cache.json"
    cache_path.write_text("{not json")
    cache = SummaryCache.load(cache_path, engine_fingerprint(["DET101"]))
    assert cache.get("x.py", "0" * 64) is None


def test_summary_roundtrips_through_json(tmp_path):
    summary = _summarize_source(
        tmp_path,
        "mod.py",
        "fix.mod",
        "from repro.experiments.runner import wall_clock\n"
        "\n"
        "_CACHE = []\n"
        "\n"
        "def f(x):\n"
        "    _CACHE.append(x)\n"
        "    return wall_clock()\n",
    )
    from repro.lint.project import ModuleSummary

    clone = ModuleSummary.from_json(
        json.loads(json.dumps(summary.to_json()))
    )
    assert clone.to_json() == summary.to_json()


# ----------------------------------------------------------------------
# SARIF 2.1.0
# ----------------------------------------------------------------------
def test_sarif_output_validates_against_schema():
    engine = LintEngine(root=FIXTURES)
    report = engine.run([FIXTURES / "proj_det101"])
    assert report.all_findings  # the fixture fires
    doc = json.loads(render_sarif(report))
    jsonschema.validate(doc, SARIF_SCHEMA)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    assert {r["ruleId"] for r in run["results"]} == {"DET101"}
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"DET001", "DET101", "DET102", "PAR101", "EXC101"} <= rule_ids


def test_sarif_clean_report_has_empty_results():
    engine = LintEngine(root=FIXTURES)
    report = engine.run([FIXTURES / "det001_negative.py"])
    doc = to_sarif(report)
    jsonschema.validate(doc, SARIF_SCHEMA)
    assert doc["runs"][0]["results"] == []


def test_cli_sarif_format(tmp_path, capsys):
    from repro.lint.__main__ import main as lint_main

    work = tmp_path / "dirty.py"
    work.write_text(
        "# repro-lint-fixture-module: repro.dsa.dirty\n"
        "import random\n"
        "\n"
        "def roll():\n"
        "    return random.random()\n"
    )
    code = lint_main(
        [
            "dirty.py",
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--no-cache",
            "--format",
            "sarif",
        ]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    jsonschema.validate(doc, SARIF_SCHEMA)
    assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"
