"""Tests for the dsa-perf-micros equivalent."""

import numpy as np
import pytest

from repro.dsa.opcodes import Opcode
from repro.tools.perf_micros import PerfMicros, format_results
from repro.virt.system import AttackTopology, CloudSystem


@pytest.fixture
def micros():
    system = CloudSystem(seed=61)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=16)
    return PerfMicros(system.vms["victim-vm"].process("victim"), wq_id=0)


class TestLatencySweep:
    def test_latency_result_fields(self, micros):
        result = micros.latency(Opcode.MEMMOVE, 4096, iterations=20)
        assert result.mean_latency_cycles > 0
        assert result.throughput_gbps > 0
        assert result.ops_per_second > 0

    def test_throughput_grows_with_size(self, micros):
        small = micros.latency(Opcode.MEMMOVE, 256, iterations=20)
        big = micros.latency(Opcode.MEMMOVE, 65536, iterations=20)
        assert big.throughput_gbps > 5 * small.throughput_gbps

    @pytest.mark.parametrize(
        "opcode",
        [Opcode.MEMMOVE, Opcode.FILL, Opcode.COMPARE, Opcode.CRCGEN, Opcode.DUALCAST],
    )
    def test_all_supported_opcodes(self, micros, opcode):
        result = micros.latency(opcode, 1024, iterations=10)
        assert result.opcode is opcode
        assert np.isfinite(result.mean_latency_cycles)

    def test_unsupported_opcode_rejected(self, micros):
        with pytest.raises(ValueError):
            micros.latency(Opcode.DRAIN, 64)

    def test_sweep_shape(self, micros):
        results = micros.sweep(
            opcodes=(Opcode.MEMMOVE, Opcode.FILL), sizes=(256, 4096), iterations=10
        )
        assert len(results) == 4
        table = format_results(results)
        assert "MEMMOVE" in table
        assert "GB/s" in table


class TestQueueDepth:
    def test_depth_improves_small_op_throughput(self, micros):
        """Submission latency overlaps execution at depth > 1."""
        serial = micros.queue_depth_throughput(2048, depth=1, iterations=40)
        deep = micros.queue_depth_throughput(2048, depth=8, iterations=40)
        assert deep.ops_per_second > serial.ops_per_second

    def test_invalid_depth_rejected(self, micros):
        with pytest.raises(ValueError):
            micros.queue_depth_throughput(1024, depth=0)


class TestBatching:
    def test_batch_beats_serial_for_tiny_ops(self, micros):
        """One submission for N copies amortizes the portal cost.

        The serial baseline must rotate completion records like the batch
        children do (distinct records are mandatory within a batch), so
        both sides see the same DevTLB comp-entry behavior and the
        difference isolates the submission amortization.
        """
        from repro.dsa.descriptor import make_memcpy

        process = micros.process
        src = process.buffer(4096)
        dst = process.buffer(4096)
        comps = [process.comp_record() for _ in range(8)]
        clock = micros.portal.clock
        started = clock.now
        iterations = 16
        for i in range(iterations):
            micros.portal.submit_wait(
                make_memcpy(process.pasid, src, dst, 512, comps[i % 8])
            )
        serial_ops = iterations / ((clock.now - started) / clock.freq_hz)

        batched = micros.batch_throughput(512, batch_size=8, batches=2)
        assert batched.ops_per_second > serial_ops

    def test_invalid_batch_rejected(self, micros):
        with pytest.raises(ValueError):
            micros.batch_throughput(512, batch_size=0)
