"""Tests for engineered features and multi-trace voting."""

import numpy as np
import pytest

from repro.ml.baseline import LogisticRegressionClassifier
from repro.ml.features import MultiTraceVoter, summary_features
from repro.ml.metrics import accuracy
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.train import TrainConfig, Trainer

from tests.ml.test_model_train import synthetic_traces


class TestSummaryFeatures:
    def test_shape(self):
        x = np.random.default_rng(0).poisson(2.0, size=(7, 50)).astype(float)
        features = summary_features(x, spectrum_bins=8)
        assert features.shape == (7, 8 + 8 + 3)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            summary_features(np.zeros(10))

    def test_total_and_peak_columns(self):
        x = np.array([[0.0, 3.0, 1.0, 0.0]])
        features = summary_features(x)
        assert features[0, 0] == 4.0  # total
        assert features[0, 3] == 3.0  # peak

    def test_quiet_trace_is_finite(self):
        features = summary_features(np.zeros((2, 30)))
        assert np.all(np.isfinite(features))

    def test_burst_count(self):
        x = np.array([[0, 1, 1, 0, 2, 0, 3, 0]], dtype=float)
        features = summary_features(x)
        assert features[0, 5] == 3.0  # three 0->active transitions

    def test_features_separate_synthetic_classes(self):
        x, y = synthetic_traces(classes=3, per_class=20, steps=40, seed=2)
        model = LogisticRegressionClassifier(epochs=200).fit(summary_features(x), y)
        assert accuracy(y, model.predict(summary_features(x))) > 0.9

    def test_short_traces_pad_spectrum(self):
        features = summary_features(np.ones((2, 6)), spectrum_bins=8)
        assert features.shape[1] == 8 + 8 + 3


class TestMultiTraceVoter:
    def _fitted_trainer(self):
        x, y = synthetic_traces(classes=3, per_class=12, steps=24, seed=9)
        model = AttentionBiLstmClassifier(
            classes=3, hidden=8, dropout=0.0, rng=np.random.default_rng(4)
        )
        trainer = Trainer(model, TrainConfig(epochs=25, batch_size=12))
        trainer.fit(x, y)
        return trainer

    def test_from_unfitted_trainer_raises(self):
        model = AttentionBiLstmClassifier(classes=2, hidden=4)
        trainer = Trainer(model)
        with pytest.raises(RuntimeError):
            MultiTraceVoter.from_trainer(trainer)

    def test_vote_on_fresh_traces(self):
        trainer = self._fitted_trainer()
        voter = MultiTraceVoter.from_trainer(trainer)
        x, y = synthetic_traces(classes=3, per_class=5, steps=24, seed=77)
        votes = [voter.predict(x[y == cls][:5]) for cls in range(3)]
        assert votes == [0, 1, 2]

    def test_voting_at_least_as_good_as_singles(self):
        trainer = self._fitted_trainer()
        voter = MultiTraceVoter.from_trainer(trainer)
        x, y = synthetic_traces(classes=3, per_class=9, steps=24, seed=55)
        single_correct = 0
        voted_correct = 0
        for cls in range(3):
            group = x[y == cls]
            singles = [voter.predict(group[i]) == cls for i in range(len(group))]
            single_correct += np.mean(singles)
            voted_correct += voter.predict(group) == cls
        assert voted_correct / 3 >= single_correct / 3 - 1e-9

    def test_confidence_in_unit_interval(self):
        trainer = self._fitted_trainer()
        voter = MultiTraceVoter.from_trainer(trainer)
        x, _ = synthetic_traces(classes=3, per_class=2, steps=24, seed=8)
        confidence = voter.confidence(x[:2])
        assert 0.0 < confidence <= 1.0
