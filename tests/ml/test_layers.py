"""Gradient checks and unit tests for the hand-written layers.

Every backward pass is validated against central finite differences —
the only way to trust a from-scratch BPTT implementation.
"""

import numpy as np
import pytest

from repro.ml.layers import (
    AdditiveAttention,
    BiLstmLayer,
    Dense,
    Dropout,
    LstmCell,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)


def numeric_gradient(f, array, epsilon=1e-6):
    """Central-difference gradient of scalar f w.r.t. *array* (in place)."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + epsilon
        plus = f()
        array[idx] = original - epsilon
        minus = f()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return grad


class TestActivations:
    def test_sigmoid_range_and_stability(self):
        x = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert s[2] == pytest.approx(0.5)
        assert not np.any(np.isnan(s))

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 7)) * 50
        p = softmax(x, axis=1)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_cross_entropy_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = softmax_cross_entropy(logits, labels)
        numeric = numeric_gradient(
            lambda: softmax_cross_entropy(logits, labels)[0], logits
        )
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))


class TestDense:
    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(4, 3))
        grad_out = rng.normal(size=(4, 2))

        def loss():
            return float((layer.forward(x) * grad_out).sum())

        loss()  # populate cache
        grad_x = layer.backward(grad_out)
        assert np.allclose(grad_x, numeric_gradient(loss, x), atol=1e-5)
        assert np.allclose(layer.grad_weight, numeric_gradient(loss, layer.weight), atol=1e-5)
        assert np.allclose(layer.grad_bias, numeric_gradient(loss, layer.bias), atol=1e-5)


class TestLstm:
    def test_output_shape(self):
        cell = LstmCell(3, 5, np.random.default_rng(0))
        out = cell.forward(np.zeros((2, 7, 3)))
        assert out.shape == (2, 7, 5)

    def test_forget_bias_initialized_to_one(self):
        cell = LstmCell(3, 4, np.random.default_rng(0))
        assert np.all(cell.bias[4:8] == 1.0)

    def test_bptt_gradient_check(self):
        rng = np.random.default_rng(3)
        cell = LstmCell(2, 3, rng)
        x = rng.normal(size=(2, 4, 2))
        grad_out = rng.normal(size=(2, 4, 3))

        def loss():
            return float((cell.forward(x) * grad_out).sum())

        loss()
        grad_x = cell.backward(grad_out)
        assert np.allclose(grad_x, numeric_gradient(loss, x), atol=1e-5)
        for param, grad in zip(cell.params(), cell.grads()):
            loss()
            cell.backward(grad_out)
            assert np.allclose(grad, numeric_gradient(loss, param), atol=1e-5)


class TestBiLstm:
    def test_output_concatenates_directions(self):
        layer = BiLstmLayer(2, 3, np.random.default_rng(0))
        out = layer.forward(np.random.default_rng(1).normal(size=(2, 5, 2)))
        assert out.shape == (2, 5, 6)
        assert layer.out_features == 6

    def test_gradient_check(self):
        rng = np.random.default_rng(4)
        layer = BiLstmLayer(2, 2, rng)
        x = rng.normal(size=(2, 3, 2))
        grad_out = rng.normal(size=(2, 3, 4))

        def loss():
            return float((layer.forward(x) * grad_out).sum())

        loss()
        grad_x = layer.backward(grad_out)
        assert np.allclose(grad_x, numeric_gradient(loss, x), atol=1e-5)

    def test_direction_sensitivity(self):
        """A BiLSTM output at step t depends on future inputs too."""
        layer = BiLstmLayer(1, 3, np.random.default_rng(5))
        x = np.zeros((1, 6, 1))
        base = layer.forward(x)[0, 0].copy()
        x[0, 5, 0] = 10.0  # change the last step
        changed = layer.forward(x)[0, 0]
        assert not np.allclose(base, changed)


class TestAttention:
    def test_weights_sum_to_one(self):
        attention = AdditiveAttention(4, 3, np.random.default_rng(0))
        attention.forward(np.random.default_rng(1).normal(size=(2, 5, 4)))
        assert np.allclose(attention.last_attention.sum(axis=1), 1.0)

    def test_gradient_check(self):
        rng = np.random.default_rng(6)
        attention = AdditiveAttention(3, 2, rng)
        h = rng.normal(size=(2, 4, 3))
        grad_out = rng.normal(size=(2, 3))

        def loss():
            return float((attention.forward(h) * grad_out).sum())

        loss()
        grad_h = attention.backward(grad_out)
        assert np.allclose(grad_h, numeric_gradient(loss, h), atol=1e-5)
        for param, grad in zip(attention.params(), attention.grads()):
            loss()
            attention.backward(grad_out)
            assert np.allclose(grad, numeric_gradient(loss, param), atol=1e-5)

    def test_attention_prefers_informative_step(self):
        """A step with a huge score should dominate the pooling."""
        rng = np.random.default_rng(7)
        attention = AdditiveAttention(2, 4, rng)
        h = np.zeros((1, 3, 2))
        h[0, 1] = [5.0, 5.0]
        attention.forward(h)
        weights = attention.last_attention[0]
        assert weights[1] != pytest.approx(1 / 3, abs=1e-3)


class TestDropout:
    def test_eval_mode_is_identity(self):
        dropout = Dropout(0.5, np.random.default_rng(0))
        dropout.training = False
        x = np.ones((4, 4))
        assert np.array_equal(dropout.forward(x), x)

    def test_training_mode_scales_survivors(self):
        dropout = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((100, 100))
        out = dropout.forward(x)
        survivors = out[out > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7

    def test_backward_uses_same_mask(self):
        dropout = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((10, 10))
        out = dropout.forward(x)
        grad = dropout.backward(np.ones_like(x))
        assert np.array_equal(grad > 0, out > 0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))
