"""Tests for open-world classification."""

import numpy as np
import pytest

from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.openworld import UNKNOWN, OpenWorldClassifier
from repro.ml.train import TrainConfig, Trainer

from tests.ml.test_model_train import synthetic_traces


@pytest.fixture(scope="module")
def fitted():
    x, y = synthetic_traces(classes=3, per_class=14, steps=24, seed=40)
    model = AttentionBiLstmClassifier(
        classes=3, hidden=8, dropout=0.0, rng=np.random.default_rng(2)
    )
    # Train past the early-stop point so the softmax sharpens — an
    # open-world threshold needs calibrated confidence, not just accuracy.
    trainer = Trainer(
        model,
        TrainConfig(epochs=80, batch_size=12, early_stop_train_accuracy=1.01),
    )
    trainer.fit(x, y)
    return trainer


def unknown_traces(count=12, steps=24, seed=123):
    """Traces from a class the model never saw (pure noise bursts)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 0.3, size=(count, steps))
    x += rng.uniform(1.0, 2.5, size=(count, 1))  # flat elevated level
    return x


class TestOpenWorldClassifier:
    def test_invalid_threshold_rejected(self, fitted):
        with pytest.raises(ValueError):
            OpenWorldClassifier.from_trainer(fitted, threshold=0.0)

    def test_unfitted_trainer_rejected(self):
        trainer = Trainer(AttentionBiLstmClassifier(classes=2, hidden=4))
        with pytest.raises(RuntimeError):
            OpenWorldClassifier.from_trainer(trainer)

    def test_known_traces_still_classified(self, fitted):
        open_world = OpenWorldClassifier.from_trainer(fitted, threshold=0.5)
        x, y = synthetic_traces(classes=3, per_class=5, steps=24, seed=88)
        predictions = open_world.predict(x)
        accepted = predictions != UNKNOWN
        assert accepted.mean() > 0.7
        assert (predictions[accepted] == y[accepted]).mean() > 0.8

    def test_high_threshold_rejects_everything(self, fitted):
        open_world = OpenWorldClassifier.from_trainer(fitted, threshold=0.999999)
        x, _ = synthetic_traces(classes=3, per_class=3, steps=24, seed=5)
        assert np.all(open_world.predict(x) == UNKNOWN)

    def test_calibration_meets_recall_target(self, fitted):
        open_world = OpenWorldClassifier.from_trainer(fitted)
        x, _ = synthetic_traces(classes=3, per_class=10, steps=24, seed=66)
        open_world.calibrate_threshold(x, target_known_recall=0.9)
        predictions = open_world.predict(x)
        assert (predictions != UNKNOWN).mean() >= 0.9 - 1e-9

    def test_calibration_target_validated(self, fitted):
        open_world = OpenWorldClassifier.from_trainer(fitted)
        with pytest.raises(ValueError):
            open_world.calibrate_threshold(np.zeros((3, 24)), target_known_recall=0)

    def test_evaluate_scores(self, fitted):
        open_world = OpenWorldClassifier.from_trainer(fitted)
        known_x, known_y = synthetic_traces(classes=3, per_class=8, steps=24, seed=91)
        open_world.calibrate_threshold(known_x, target_known_recall=0.85)
        scores = open_world.evaluate(known_x, known_y, unknown_traces())
        assert 0.0 <= scores.known_accuracy <= 1.0
        assert 0.0 <= scores.unknown_rejection_rate <= 1.0
        assert scores.balanced > 0.5  # better than guessing on both axes
