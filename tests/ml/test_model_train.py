"""End-to-end learning tests for the classifier, trainer, and baselines."""

import numpy as np
import pytest

from repro.ml.baseline import LogisticRegressionClassifier, NearestCentroidClassifier
from repro.ml.metrics import accuracy, confusion_matrix, f1_score, macro_f1
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.train import TrainConfig, Trainer, standardize_traces, train_test_split


def synthetic_traces(classes=3, per_class=20, steps=30, seed=0):
    """Class c gets a bump at a class-specific position plus noise."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 0.3, size=(classes * per_class, steps))
    y = np.repeat(np.arange(classes), per_class)
    for c in range(classes):
        position = 3 + c * (steps - 6) // max(classes - 1, 1)
        x[y == c, position : position + 3] += 3.0
    return x, y


class TestModelBasics:
    def test_logit_shape(self):
        model = AttentionBiLstmClassifier(classes=4, hidden=6, rng=np.random.default_rng(0))
        logits = model.forward(np.zeros((5, 10)))
        assert logits.shape == (5, 4)

    def test_predict_proba_sums_to_one(self):
        model = AttentionBiLstmClassifier(classes=3, hidden=4, rng=np.random.default_rng(0))
        proba = model.predict_proba(np.random.default_rng(1).normal(size=(4, 8)))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValueError):
            AttentionBiLstmClassifier(classes=1)

    def test_parameter_count_positive(self):
        model = AttentionBiLstmClassifier(classes=2, hidden=4, rng=np.random.default_rng(0))
        assert model.parameter_count() > 100

    def test_whole_model_gradient_direction(self):
        """One Adam step on one batch must reduce that batch's loss."""
        from repro.ml.optim import Adam

        model = AttentionBiLstmClassifier(
            classes=3, hidden=5, dropout=0.0, rng=np.random.default_rng(2)
        )
        x, y = synthetic_traces(classes=3, per_class=4, steps=12, seed=3)
        optimizer = Adam(model.params(), model.grads(), learning_rate=1e-2)
        loss_before, grad = model.loss(x, y)
        model.backward(grad)
        optimizer.step()
        loss_after, _ = model.loss(x, y)
        assert loss_after < loss_before


class TestTrainer:
    def test_learns_separable_classes(self):
        x, y = synthetic_traces(classes=3, per_class=15, steps=24, seed=5)
        x_train, y_train, x_test, y_test = train_test_split(
            x, y, rng=np.random.default_rng(0)
        )
        model = AttentionBiLstmClassifier(
            classes=3, hidden=8, dropout=0.1, rng=np.random.default_rng(1)
        )
        trainer = Trainer(model, TrainConfig(epochs=25, batch_size=16, seed=2))
        result = trainer.fit(x_train, y_train)
        assert result.epochs_run >= 1
        assert trainer.evaluate(x_test, y_test) >= 0.8

    def test_early_stop(self):
        x, y = synthetic_traces(classes=2, per_class=10, steps=16, seed=6)
        model = AttentionBiLstmClassifier(
            classes=2, hidden=8, dropout=0.0, rng=np.random.default_rng(3)
        )
        trainer = Trainer(model, TrainConfig(epochs=200, batch_size=10))
        result = trainer.fit(x, y)
        assert result.epochs_run < 200

    def test_standardize(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        z = standardize_traces(x)
        assert z.mean() == pytest.approx(0.0)
        assert z.std() == pytest.approx(1.0)

    def test_standardize_constant_input(self):
        z = standardize_traces(np.ones((3, 3)))
        assert np.all(z == 0)


class TestSplit:
    def test_split_is_stratified(self):
        y = np.repeat(np.arange(4), 10)
        x = np.zeros((40, 5))
        _, y_train, _, y_test = train_test_split(x, y, 0.2, np.random.default_rng(0))
        for cls in range(4):
            assert (y_test == cls).sum() == 2
            assert (y_train == cls).sum() == 8

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 2)), np.zeros(4), 0.0)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 2)), np.zeros(5), 0.2)


class TestBaselines:
    def test_nearest_centroid_separable(self):
        x, y = synthetic_traces(seed=7)
        model = NearestCentroidClassifier().fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.95

    def test_logistic_regression_separable(self):
        x, y = synthetic_traces(seed=8)
        model = LogisticRegressionClassifier(epochs=200).fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NearestCentroidClassifier().predict(np.zeros((1, 3)))
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.zeros((1, 3)))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]), classes=2)
        assert matrix.tolist() == [[1, 1], [0, 1]]
        assert matrix.sum() == 3

    def test_f1_from_counts(self):
        """The paper's DevTLB keystroke numbers: 500 TP, 15 FP, 61 FN."""
        assert f1_score(500, 15, 61) == pytest.approx(0.9294, abs=1e-3)

    def test_f1_zero_cases(self):
        assert f1_score(0, 0, 0) == 0.0
        assert f1_score(0, 5, 5) == 0.0

    def test_macro_f1_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(y, y, classes=3) == pytest.approx(1.0)
