"""Tests for the Section VII mitigations and the Fig. 14 harness."""

import numpy as np
import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.dsa.descriptor import make_noop
from repro.hw.units import us_to_cycles
from repro.mitigation.overhead import (
    measure_dsa_throughput,
    mitigation_overhead_sweep,
)
from repro.mitigation.partitioning import (
    DevTlbScrubber,
    hardware_partitioned_config,
    privileged_dmwr_config,
)
from repro.virt.system import AttackTopology, CloudSystem


class TestHardwarePartitioning:
    def test_partitioned_devtlb_blocks_cross_vm_eviction(self):
        """Hardware fix #1 kills DSA_DevTLB."""
        system = CloudSystem(seed=1, device_config=hardware_partitioned_config())
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=40)
        victim = handles.victim
        v_portal = victim.portal(handles.victim_wq)
        v_comp = victim.comp_record()
        attack.prime()
        v_portal.submit_wait(make_noop(victim.pasid, v_comp))
        assert not attack.probe().evicted  # victim no longer observable

    def test_partitioned_config_preserves_other_settings(self):
        from repro.dsa.device import DsaDeviceConfig

        base = DsaDeviceConfig(engine_count=2)
        config = hardware_partitioned_config(base)
        assert config.engine_count == 2
        assert config.devtlb.pasid_partitioned


class TestPrivilegedDmwr:
    def test_zf_always_clear_for_unprivileged(self):
        """Hardware fix #2 kills DSA_SWQ: the probe learns nothing."""
        system = CloudSystem(seed=2, device_config=privileged_dmwr_config())
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 21)
        victim = handles.victim
        v_portal = victim.portal(0)

        from repro.dsa.descriptor import Descriptor
        from repro.dsa.opcodes import DescriptorFlags, Opcode

        noop = Descriptor(
            opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
        )
        system.timeline.schedule_after_us(20, lambda: v_portal.enqcmd(noop))
        result = attack.run_round(idle_cycles=us_to_cycles(40), timeline=system.timeline)
        assert not result.victim_detected  # flag hidden even though full

    def test_submissions_still_work(self):
        system = CloudSystem(seed=3, device_config=privileged_dmwr_config())
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        victim = handles.victim
        portal = victim.portal(0)
        comp = victim.comp_record()
        result = portal.submit_wait(make_noop(victim.pasid, comp))
        from repro.dsa.completion import CompletionStatus

        assert result.record.status is CompletionStatus.SUCCESS

    def test_overfull_submission_silently_dropped(self):
        system = CloudSystem(seed=4, device_config=privileged_dmwr_config())
        handles = system.setup_topology(
            AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=3
        )
        victim = handles.victim
        portal = victim.portal(0)
        comp = victim.comp_record()
        from repro.dsa.descriptor import make_memcpy

        big = make_memcpy(
            victim.pasid, victim.buffer(1 << 22), victim.buffer(1 << 22), 1 << 22, comp
        )
        for _ in range(3):
            portal.enqcmd(big)
        assert portal.hidden_dmwr_drops == 0
        portal.enqcmd(big)  # fourth cannot fit within the retry slot
        assert portal.hidden_dmwr_drops == 1


class TestScrubber:
    def test_scrubber_evicts_attacker_entries(self):
        system = CloudSystem(seed=5)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        daemon_vm = system.create_vm("host")
        daemon = daemon_vm.spawn_process("scrubber")
        system.open_portal(daemon, handles.attacker_wq)
        scrubber = DevTlbScrubber(
            daemon, handles.attacker_wq, period_us=5.0, rng=np.random.default_rng(0)
        )
        scrubber.start(system.timeline)

        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.prime()
        evictions = 0
        for _ in range(40):
            system.timeline.idle_for_us(10)
            evictions += attack.probe().evicted
        scrubber.stop()
        # The attacker sees constant evictions even with a quiet victim:
        # its observations no longer correlate with tenant activity.
        assert evictions > 20
        assert scrubber.scrubs > 0

    def test_scrubber_invalid_period_rejected(self):
        system = CloudSystem(seed=6)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        with pytest.raises(ValueError):
            DevTlbScrubber(handles.attacker, 0, period_us=0)

    def test_stop_halts_scrubbing(self):
        system = CloudSystem(seed=7)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        daemon = system.create_vm("host").spawn_process("scrubber")
        system.open_portal(daemon, 0)
        scrubber = DevTlbScrubber(daemon, 0, period_us=5.0)
        scrubber.start(system.timeline)
        system.timeline.idle_for_us(50)
        scrubber.stop()
        system.timeline.idle_for_us(20)  # lets the stop tick drain
        count = scrubber.scrubs
        system.timeline.idle_for_us(100)
        assert scrubber.scrubs == count


class TestOverheadHarness:
    def test_throughput_increases_with_size(self):
        system = CloudSystem(seed=8)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        small = measure_dsa_throughput(handles.victim, handles.victim_wq, 256, 50)
        big = measure_dsa_throughput(handles.victim, handles.victim_wq, 65536, 50)
        assert big > 10 * small

    def test_fig14_shape(self):
        """Mitigation overhead is largest at the smallest transfer size
        and positive everywhere (paper: up to 15.7%/17.9% at 256 B)."""
        rows = mitigation_overhead_sweep([256, 65536], iterations=80)
        by_key = {(r.size_bytes, r.path): r for r in rows}
        for path in ("dsa", "dto"):
            small = by_key[(256, path)]
            large = by_key[(65536, path)]
            assert small.overhead_percent > large.overhead_percent
            assert 8 <= small.overhead_percent <= 25
            assert large.overhead_percent > 0
