"""Tests for the attack detector."""

import numpy as np
import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.dsa.descriptor import make_memcpy
from repro.hw.units import us_to_cycles
from repro.mitigation.detector import AttackDetector, DetectorConfig, FindingKind
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.vpp import PacketEvent, VppVictim


class TestSwqDetection:
    def test_congest_probe_pattern_flagged(self):
        system = CloudSystem(seed=1)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        detector = AttackDetector(
            system.device, DetectorConfig(poll_period_us=200.0)
        )
        detector.start(system.timeline)

        # Long anchors keep the armed state pinned across detector polls.
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 24)
        for _ in range(4):
            attack.run_round(idle_cycles=us_to_cycles(400), timeline=system.timeline)
        system.timeline.idle_for_us(3000)
        detector.stop()
        assert detector.findings_of(FindingKind.SWQ_CONGESTION_PROBING)

    def test_quiet_system_not_flagged(self):
        system = CloudSystem(seed=2)
        system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        detector = AttackDetector(system.device)
        detector.start(system.timeline)
        system.timeline.idle_for_us(10_000)
        detector.stop()
        assert not detector.triggered
        assert detector.polls >= 9


class TestDevTlbDetection:
    def test_probe_cadence_flagged(self):
        system = CloudSystem(seed=3)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        detector = AttackDetector(system.device)
        detector.start(system.timeline)

        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.prime()
        for _ in range(120):
            system.timeline.idle_for_us(10)
            attack.probe()
        system.timeline.idle_for_us(2000)
        detector.stop()
        assert detector.findings_of(FindingKind.DEVTLB_PROBE_CADENCE)

    def test_bulk_victim_traffic_not_flagged(self):
        """A genuine bulk workload moves real bytes: no probe finding."""
        system = CloudSystem(seed=4)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        detector = AttackDetector(system.device)
        detector.start(system.timeline)

        victim = VppVictim(handles.victim, wq_id=handles.victim_wq)
        packets = [PacketEvent(time_us=20.0 * i, size_bytes=1500) for i in range(100)]
        victim.schedule_trace(system.timeline, packets, system.clock.now)
        system.timeline.idle_for_us(5000)
        detector.stop()
        assert not detector.findings_of(FindingKind.DEVTLB_PROBE_CADENCE)


class TestDetectorLifecycle:
    def test_stop_halts_polling(self):
        system = CloudSystem(seed=5)
        system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        detector = AttackDetector(system.device)
        detector.start(system.timeline)
        system.timeline.idle_for_us(3000)
        detector.stop()
        system.timeline.idle_for_us(2000)
        polls = detector.polls
        system.timeline.idle_for_us(5000)
        assert detector.polls == polls

    def test_custom_thresholds(self):
        config = DetectorConfig(rejection_ratio_threshold=0.9, min_submissions=1000)
        system = CloudSystem(seed=6)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        detector = AttackDetector(system.device, config)
        detector.start(system.timeline)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 21)
        for _ in range(5):
            attack.run_round(idle_cycles=us_to_cycles(50), timeline=system.timeline)
        detector.stop()
        # Thresholds set absurdly high: nothing flagged.
        assert not detector.findings_of(FindingKind.SWQ_CONGESTION_PROBING)
