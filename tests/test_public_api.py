"""Public-API hygiene: exports resolve, __all__ is honest, docs exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.hw",
    "repro.ats",
    "repro.dsa",
    "repro.virt",
    "repro.faults",
    "repro.core",
    "repro.covert",
    "repro.workloads",
    "repro.ml",
    "repro.mitigation",
    "repro.analysis",
    "repro.tools",
    "repro.experiments",
]


class TestPublicApi:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a package docstring"

    @pytest.mark.parametrize(
        "name",
        [p for p in PACKAGES if p not in ("repro", "repro.experiments")],
    )
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} lacks __all__"
        for item in module.__all__:
            assert hasattr(module, item), f"{name}.__all__ lists missing {item}"

    def test_public_items_have_docstrings(self):
        import inspect

        undocumented = []
        for name in PACKAGES:
            module = importlib.import_module(name)
            for item in getattr(module, "__all__", []):
                obj = getattr(module, item)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{name}.{item}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_version_marker(self):
        import repro

        assert repro.__version__

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        import repro

        assert (Path(repro.__file__).parent / "py.typed").exists()


class TestMiscEdgeCases:
    def test_overhead_row_zero_baseline(self):
        from repro.mitigation.overhead import OverheadRow

        row = OverheadRow(size_bytes=1, path="dsa", baseline_gbps=0.0, mitigated_gbps=0.0)
        assert row.overhead_percent == 0.0

    def test_cloud_system_memory_budget(self):
        from repro.hw.units import GIB
        from repro.virt.system import CloudSystem

        system = CloudSystem(seed=1, memory_bytes=1 * GIB)
        assert system.memory.total_bytes == GIB

    def test_wf_paper_scale_geometry(self):
        from repro.experiments.wf_common import PAPER_SCALE

        config = PAPER_SCALE.sampler_config()
        assert config.slot_us == 4000  # 10 us x 400
        assert config.trace_us == 1_000_000  # 250 slots = 1 s

    def test_probe_result_exposes_record(self):
        from repro.dsa.descriptor import make_noop
        from tests.conftest import build_host

        host = build_host()
        proc = host.new_process()
        result = proc.portal.submit_wait(make_noop(proc.pasid, proc.comp_record()))
        assert result.record is result.ticket.record
        assert result.ticket.completed
