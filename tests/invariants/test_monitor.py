"""The invariant monitor core: attachment, cadence, and violation reports."""

import pytest

from repro.dsa.descriptor import make_memcpy, make_noop
from repro.errors import ConfigurationError, InvariantViolation
from repro.invariants import (
    InvariantChecker,
    InvariantMonitor,
    MonitorMode,
    coerce_mode,
)
from repro.virt.system import CloudSystem

from tests.conftest import build_host

pytestmark = pytest.mark.invariants


class TestModeCoercion:
    def test_accepts_enum_and_values(self):
        assert coerce_mode(MonitorMode.STRICT) is MonitorMode.STRICT
        assert coerce_mode("strict") is MonitorMode.STRICT
        assert coerce_mode("sampling") is MonitorMode.SAMPLING
        assert coerce_mode("sample") is MonitorMode.SAMPLING  # alias
        assert coerce_mode(" STRICT ") is MonitorMode.STRICT

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            coerce_mode("paranoid")

    def test_rejects_bad_cadence(self):
        with pytest.raises(ConfigurationError):
            InvariantMonitor(sample_every=0)
        with pytest.raises(ConfigurationError):
            InvariantMonitor(event_window=0)


class TestAttachment:
    def test_attach_device_hooks_all_satellites(self, host):
        monitor = InvariantMonitor()
        monitor.attach_device(host.device)
        assert host.device.invariant_monitor is monitor
        assert host.device.devtlb.invariant_monitor is monitor
        assert host.device.agent.invariant_monitor is monitor
        assert host.device.clock.invariant_monitor is monitor
        assert monitor.device is host.device
        # Re-attaching the same device is idempotent.
        monitor.attach_device(host.device)

    def test_one_monitor_per_device(self, host):
        monitor = InvariantMonitor()
        monitor.attach_device(host.device)
        other = build_host(seed=7)
        with pytest.raises(ConfigurationError):
            monitor.attach_device(other.device)

    def test_attach_system_adopts_seed(self):
        system = CloudSystem(seed=99, invariants="off")
        monitor = InvariantMonitor()
        monitor.attach_system(system)
        assert monitor.seed == 99
        assert system.invariant_monitor is monitor

    def test_system_invariants_param_builds_monitor(self):
        system = CloudSystem(seed=3, invariants="strict")
        assert system.invariant_monitor is not None
        assert system.invariant_monitor.mode is MonitorMode.STRICT
        assert system.invariant_monitor.seed == 3

    def test_system_defaults_to_off(self):
        assert CloudSystem(seed=3).invariant_monitor is None

    def test_env_var_turns_monitoring_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "sampling")
        system = CloudSystem(seed=3)
        assert system.invariant_monitor is not None
        assert system.invariant_monitor.mode is MonitorMode.SAMPLING
        # An explicit param beats the environment.
        monkeypatch.setenv("REPRO_INVARIANTS", "strict")
        assert CloudSystem(seed=3, invariants="off").invariant_monitor is None


class _CountingChecker(InvariantChecker):
    name = "counting"
    kinds = frozenset({"submit"})

    def __init__(self):
        self.observed = 0
        self.audited = 0
        self.last_context = None
        self.last_payload = None

    def observe(self, monitor, kind, timestamp, context, payload):
        self.observed += 1
        self.last_context = dict(context)
        self.last_payload = payload

    def audit(self, monitor):
        self.audited += 1


class TestEventStream:
    def test_kinds_scope_observation(self):
        checker = _CountingChecker()
        monitor = InvariantMonitor(checkers=[checker])
        monitor.note("submit", 10, wq_id=0)
        monitor.note("dispatch", 11, wq_id=0)
        assert checker.observed == 1

    def test_none_context_values_are_dropped(self):
        checker = _CountingChecker()
        monitor = InvariantMonitor(checkers=[checker])
        monitor.note("submit", 10, wq_id=0, pasid=None)
        assert checker.last_context == {"wq_id": 0}
        assert "pasid" not in monitor.event_window()[-1]

    def test_payload_not_retained_in_window(self):
        checker = _CountingChecker()
        monitor = InvariantMonitor(checkers=[checker])
        sentinel = object()
        monitor.note("submit", 10, payload=sentinel, wq_id=0)
        assert checker.last_payload is sentinel
        window = monitor.event_window()
        assert all(sentinel not in event.values() for event in window)

    def test_event_window_is_bounded(self):
        monitor = InvariantMonitor(checkers=[], event_window=4)
        for i in range(10):
            monitor.note("submit", i)
        window = monitor.event_window()
        assert len(window) == 4
        assert [event["seq"] for event in window] == [7, 8, 9, 10]

    def test_missing_timestamp_reuses_latest(self):
        monitor = InvariantMonitor(checkers=[])
        monitor.note("submit", 500)
        monitor.note("devtlb")  # DevTLB has no clock reference
        assert monitor.event_window()[-1]["t"] == 500

    def test_strict_audits_every_event(self):
        checker = _CountingChecker()
        monitor = InvariantMonitor(mode="strict", checkers=[checker])
        for i in range(5):
            monitor.note("submit", i)
        assert checker.audited == 5

    def test_sampling_audits_every_nth_event(self):
        checker = _CountingChecker()
        monitor = InvariantMonitor(
            mode="sampling", sample_every=4, checkers=[checker]
        )
        for i in range(10):
            monitor.note("submit", i)
        assert checker.audited == 2  # events 4 and 8
        monitor.check_all()
        assert checker.audited == 3


class TestViolationReports:
    def test_clock_backwards_trips_timeline(self, host):
        monitor = InvariantMonitor()
        monitor.attach_device(host.device)
        host.clock.advance(1_000)
        with pytest.raises(InvariantViolation) as info:
            monitor.observe_clock(10)
        assert info.value.invariant == "timeline"

    def test_violation_is_replayable(self):
        system = CloudSystem(seed=41, invariants="off")
        monitor = InvariantMonitor(
            mode="strict", seed=None, repro_hint="python -m repro.invariants.soak --seed 41"
        )
        monitor.attach_system(system)
        system.clock.advance(10)
        monitor.note("submit", 10, wq_id=0)
        with pytest.raises(InvariantViolation) as info:
            monitor.fail("wq-credits", "synthetic trip")
        violation = info.value
        assert violation.seed == 41
        assert violation.repro == "python -m repro.invariants.soak --seed 41"
        assert violation.events[-1]["kind"] == "submit"
        assert violation.snapshot["monitor.mode"] == "strict"
        assert "clock.now" in violation.snapshot
        described = violation.describe()
        assert "seed" in described and "41" in described

    def test_monitor_is_read_only(self):
        """An attached strict monitor must not perturb the simulation."""

        def run(invariants):
            system = CloudSystem(seed=17, invariants=invariants)
            system.device.configure_group(0, (0,))
            from repro.dsa.wq import WorkQueueConfig, WqMode

            system.device.configure_wq(
                WorkQueueConfig(wq_id=0, size=16, mode=WqMode.SHARED, group_id=0)
            )
            vm = system.create_vm("vm")
            proc = vm.spawn_process("p")
            system.open_portal(proc, 0)
            src = proc.space.mmap(4096)
            dst = proc.space.mmap(4096)
            comp = proc.space.mmap(4096)
            latencies = []
            for _ in range(8):
                ticket = proc.portals[0].submit_wait(
                    make_memcpy(proc.pasid, src, dst, 256, comp)
                )
                latencies.append(ticket.latency_cycles)
                proc.portals[0].submit_wait(make_noop(proc.pasid, comp))
            return latencies, system.clock.now

        assert run("off") == run("strict")


class TestRunnerWiring:
    def test_invariant_exit_code_is_distinct(self):
        from repro.experiments.checkpoint import STATUS_INVARIANT
        from repro.experiments.runner import _STATUS_EXIT, EXIT_INVARIANT

        assert EXIT_INVARIANT == 6
        assert _STATUS_EXIT[STATUS_INVARIANT] == EXIT_INVARIANT
        assert list(_STATUS_EXIT.values()).count(EXIT_INVARIANT) == 1
