"""Each checker catches its class of silent corruption — and only that.

Every positive case here tampers with model state the way a real bug
would (a leaked credit, a double record write, an overfull sub-entry)
and asserts the matching checker trips with its own ``invariant`` name;
the negative cases run genuine workloads and assert silence.
"""

import pytest

from repro.ats.devtlb import FieldType
from repro.dsa.descriptor import make_memcpy, make_noop
from repro.dsa.device import SubmissionTicket
from repro.errors import InvariantViolation
from repro.invariants import InvariantMonitor
from repro.invariants.checkers import (
    ArbiterFairnessChecker,
    CompletionChecker,
    DevTlbChecker,
    TimelineChecker,
    WqCreditChecker,
)

from tests.conftest import build_host

pytestmark = pytest.mark.invariants


def _attached(host, **kwargs):
    monitor = InvariantMonitor(mode="strict", **kwargs)
    monitor.attach_device(host.device)
    return monitor


def _submit_some(proc, n=4):
    src = proc.buffer(4096)
    dst = proc.buffer(4096)
    comp = proc.comp_record()
    for _ in range(n):
        proc.portal.submit_wait(make_memcpy(proc.pasid, src, dst, 256, comp))


class TestWqCredits:
    def test_clean_workload_is_silent(self, host):
        monitor = _attached(host)
        _submit_some(host.new_process())
        monitor.check_all()

    def test_leaked_credit_trips(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        _submit_some(proc)
        # A credit leak: the occupancy register diverges from the event
        # ledger (as if a completion forgot to release its slot).
        host.device.queue_space.get(0)._outstanding += 1
        with pytest.raises(InvariantViolation) as info:
            monitor.check_all()
        assert info.value.invariant == "wq-credits"
        assert "credit" in str(info.value)

    def test_occupancy_bounds_trip(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        _submit_some(proc, n=1)
        wq = host.device.queue_space.get(0)
        wq._outstanding = wq.config.size + 3
        with pytest.raises(InvariantViolation) as info:
            monitor.check_all()
        assert info.value.invariant == "wq-credits"

    def test_negative_ledger_trips_at_observe_time(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        _submit_some(proc, n=1)
        ticket = SubmissionTicket(
            descriptor=None,
            wq_id=0,
            enqueue_time=0,
            dispatch_time=0,
            completion_time=0,
            record=object(),
            ticket_id=10_000,
        )
        with pytest.raises(InvariantViolation) as info:
            # More completions than accepted submissions on WQ 0.
            for _ in range(8):
                monitor.note("complete", payload=ticket, wq_id=0)
        assert info.value.invariant == "wq-credits"
        assert "more slot releases" in str(info.value)


class TestCompletion:
    def _ticket(self, **kwargs):
        defaults = dict(descriptor=None, wq_id=0, enqueue_time=100, ticket_id=1)
        defaults.update(kwargs)
        ticket = SubmissionTicket(**defaults)
        if "record" not in kwargs:
            ticket.record = object()
        return ticket

    def test_double_record_write_trips(self):
        monitor = InvariantMonitor(mode="strict", checkers=[CompletionChecker()])
        ticket = self._ticket(dispatch_time=110, completion_time=120)
        monitor.note("complete", payload=ticket, wq_id=0)
        with pytest.raises(InvariantViolation) as info:
            monitor.note("complete", payload=ticket, wq_id=0)
        assert info.value.invariant == "completion"
        assert "twice" in str(info.value)

    def test_missing_record_trips(self):
        monitor = InvariantMonitor(mode="strict", checkers=[CompletionChecker()])
        ticket = self._ticket(record=None)
        with pytest.raises(InvariantViolation) as info:
            monitor.note("complete", payload=ticket, wq_id=0)
        assert "without a" in str(info.value)

    def test_dispatch_before_enqueue_trips(self):
        monitor = InvariantMonitor(mode="strict", checkers=[CompletionChecker()])
        ticket = self._ticket(dispatch_time=50)  # enqueue_time=100
        with pytest.raises(InvariantViolation) as info:
            monitor.note("complete", payload=ticket, wq_id=0)
        assert "before its" in str(info.value)

    def test_completion_before_dispatch_trips(self):
        monitor = InvariantMonitor(mode="strict", checkers=[CompletionChecker()])
        ticket = self._ticket(dispatch_time=110, completion_time=105)
        with pytest.raises(InvariantViolation):
            monitor.note("complete", payload=ticket, wq_id=0)

    def test_history_bound_forgets_old_tickets(self):
        monitor = InvariantMonitor(
            mode="strict", checkers=[CompletionChecker(history=4)]
        )
        for ticket_id in range(6):
            ticket = self._ticket(
                ticket_id=ticket_id, dispatch_time=110, completion_time=120
            )
            monitor.note("complete", payload=ticket, wq_id=0)
        # Ticket 0 rotated out of the dedup window: no false trip.
        monitor.note(
            "complete",
            payload=self._ticket(
                ticket_id=0, dispatch_time=110, completion_time=120
            ),
            wq_id=0,
        )

    def test_premature_record_on_inflight_descriptor_trips(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        src, dst = proc.buffer(1 << 20), proc.buffer(1 << 20)
        proc.portal.submit(
            make_memcpy(proc.pasid, src, dst, 1 << 20, proc.comp_record())
        )
        engine = host.device.engines[0]
        assert engine.inflight, "large copy should still be in flight"
        engine.inflight[0].token.record = object()  # written before retirement
        with pytest.raises(InvariantViolation) as info:
            monitor.check_all()
        assert info.value.invariant == "completion"


class TestDevTlb:
    def test_clean_traffic_is_silent(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        _submit_some(proc)
        monitor.check_all()

    def test_unbound_pasid_traffic_trips(self, host):
        monitor = _attached(host)
        with pytest.raises(InvariantViolation) as info:
            host.device.devtlb.access(0, FieldType.SRC, 0x100, pasid=777)
        assert info.value.invariant == "devtlb"
        assert "PASID" in str(info.value)

    def test_overfull_sub_entry_trips(self, host):
        from repro.ats.devtlb import _Slot

        monitor = _attached(host)
        proc = host.new_process()
        tlb = host.device.devtlb
        tlb.access(0, FieldType.SRC, 0x100, pasid=proc.pasid)
        key = next(iter(tlb._entries))
        sub = tlb._entries[key]
        limit = tlb.config.slots_per_subentry
        for extra in range(limit + 1):
            sub.slots.append(_Slot(base_vpn=0x200 + extra, pages=1, pasid=proc.pasid))
        with pytest.raises(InvariantViolation) as info:
            monitor.check_all()
        assert info.value.invariant == "devtlb"
        assert "associativity" in str(info.value)


class TestArbiterFairness:
    def _monitor(self, **kwargs):
        return InvariantMonitor(
            mode="strict", checkers=[ArbiterFairnessChecker(**kwargs)]
        )

    def test_batch_beating_ready_wq_trips(self):
        monitor = self._monitor()
        snapshot = ((0, 0, 5),)  # WQ 0 ready at choice time
        with pytest.raises(InvariantViolation) as info:
            monitor.note(
                "dispatch", 10, payload=snapshot, policy="wq-priority",
                source="batch-parent",
            )
        assert info.value.invariant == "arbiter"
        assert "batch" in str(info.value)

    def test_priority_inversion_trips(self):
        monitor = self._monitor()
        snapshot = ((0, 0, 5), (1, 3, 6))  # WQ 1 outranks the chosen WQ 0
        with pytest.raises(InvariantViolation) as info:
            monitor.note(
                "dispatch", 10, payload=snapshot,
                wq_id=0, priority=0, policy="wq-priority",
            )
        assert "inversion" in str(info.value)

    def test_priority_order_is_silent(self):
        monitor = self._monitor()
        snapshot = ((0, 3, 5), (1, 0, 6))
        monitor.note(
            "dispatch", 10, payload=snapshot,
            wq_id=0, priority=3, policy="wq-priority",
        )

    def test_starvation_bound_trips(self):
        monitor = self._monitor(starvation_limit=10)
        snapshot = ((0, 0, 5), (1, 0, 6))
        with pytest.raises(InvariantViolation) as info:
            for _ in range(12):  # WQ 1 passed over every time
                monitor.note(
                    "dispatch", 10, payload=snapshot,
                    wq_id=0, priority=0, policy="round-robin",
                )
        assert "starved" in str(info.value)

    def test_dispatch_resets_starvation_counter(self):
        monitor = self._monitor(starvation_limit=10)
        for turn in range(40):
            chosen = turn % 2
            monitor.note(
                "dispatch", 10,
                payload=((0, 0, 5), (1, 0, 6)),
                wq_id=chosen, priority=0, policy="round-robin",
            )


class TestTimeline:
    def test_future_stamped_event_trips(self, host):
        monitor = _attached(host)
        host.clock.advance(100)
        with pytest.raises(InvariantViolation) as info:
            monitor.note("submit", 10_000, wq_id=0)
        assert info.value.invariant == "timeline"
        assert "beyond" in str(info.value)

    def test_device_time_ahead_of_tsc_trips(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        _submit_some(proc, n=1)
        host.device._time = host.clock.now + 500
        with pytest.raises(InvariantViolation) as info:
            monitor.check_all()
        assert info.value.invariant == "timeline"
        assert "ahead" in str(info.value)

    def test_real_workload_is_silent(self, host):
        monitor = _attached(host)
        proc = host.new_process()
        _submit_some(proc, n=6)
        host.clock.advance(10_000)
        host.device.advance_to(host.clock.now)
        monitor.check_all()
