"""The pool's conscience: supervision narration that stops adding up
must trip :class:`~repro.invariants.PoolStateChecker` (exit code 6),
because every silent inconsistency here is a dropped or double-run
trial in the artifact.
"""

import pytest

from repro.errors import InvariantViolation
from repro.invariants import PoolStateChecker
from repro.invariants.pool import (
    STATE_HEALTHY,
    STATE_RESPAWNING,
    STATE_RETIRED,
    STATE_SPAWNING,
    STATE_SUSPECT,
)


def _checker(total=4) -> PoolStateChecker:
    return PoolStateChecker(total)


class TestWorkerLifecycle:
    def test_documented_cycle_is_legal(self):
        checker = _checker()
        for state in (
            STATE_SPAWNING,
            STATE_HEALTHY,
            STATE_SUSPECT,
            STATE_HEALTHY,
            STATE_RESPAWNING,
            STATE_SPAWNING,
            STATE_HEALTHY,
            STATE_RETIRED,
        ):
            checker.note_worker(0, state)
        assert checker.worker_state(0) == STATE_RETIRED

    def test_reasserting_the_current_state_is_idempotent(self):
        checker = _checker()
        checker.note_worker(0, STATE_SPAWNING)
        checker.note_worker(0, STATE_SPAWNING)
        assert checker.worker_state(0) == STATE_SPAWNING

    def test_worker_must_spawn_before_being_healthy(self):
        with pytest.raises(InvariantViolation, match="pool-state"):
            _checker().note_worker(0, STATE_HEALTHY)

    def test_retired_is_terminal(self):
        checker = _checker()
        checker.note_worker(0, STATE_SPAWNING)
        checker.note_worker(0, STATE_RETIRED)
        with pytest.raises(InvariantViolation):
            checker.note_worker(0, STATE_SPAWNING)

    def test_unknown_state_name_trips(self):
        with pytest.raises(InvariantViolation):
            _checker().note_worker(0, "zombie")


class TestAssignment:
    def _healthy(self, checker, worker_id=0):
        checker.note_worker(worker_id, STATE_SPAWNING)
        checker.note_worker(worker_id, STATE_HEALTHY)

    def test_exactly_once_completion(self):
        checker = _checker()
        self._healthy(checker)
        checker.note_dispatch(0, [0, 1])
        checker.note_result(0, 0)
        checker.note_result(1, 0)
        checker.final_audit(accounted=2, skipped=2)

    def test_double_assignment_trips(self):
        checker = _checker()
        self._healthy(checker, 0)
        self._healthy(checker, 1)
        checker.note_dispatch(0, [0])
        with pytest.raises(InvariantViolation):
            checker.note_dispatch(1, [0])

    def test_result_from_the_wrong_worker_trips(self):
        checker = _checker()
        self._healthy(checker, 0)
        self._healthy(checker, 1)
        checker.note_dispatch(0, [0])
        with pytest.raises(InvariantViolation):
            checker.note_result(0, 1)

    def test_rerunning_a_completed_trial_trips(self):
        checker = _checker()
        self._healthy(checker)
        checker.note_dispatch(0, [0])
        checker.note_result(0, 0)
        with pytest.raises(InvariantViolation):
            checker.note_dispatch(0, [0])

    def test_requeue_then_redispatch_is_legal(self):
        checker = _checker()
        self._healthy(checker, 0)
        self._healthy(checker, 1)
        checker.note_dispatch(0, [0, 1])
        checker.note_unassign([0, 1])  # crash: shard requeued
        checker.note_dispatch(1, [0, 1])
        checker.note_result(0, 1)
        checker.note_result(1, 1)

    def test_poisoned_trial_cannot_be_dispatched_again(self):
        checker = _checker()
        self._healthy(checker)
        checker.note_dispatch(0, [0])
        checker.note_unassign([0])
        checker.note_poison(0)
        with pytest.raises(InvariantViolation):
            checker.note_dispatch(0, [0])


class TestFinalAudit:
    def test_unaccounted_trial_trips(self):
        checker = _checker(total=3)
        with pytest.raises(InvariantViolation, match="pool-state"):
            checker.final_audit(accounted=2, skipped=0)

    def test_poisoned_trials_count_toward_the_audit(self):
        checker = _checker(total=3)
        checker.note_worker(0, STATE_SPAWNING)
        checker.note_worker(0, STATE_HEALTHY)
        checker.note_dispatch(0, [0, 1, 2])
        checker.note_result(0, 0)
        checker.note_result(1, 0)
        checker.note_unassign([2])
        checker.note_poison(2)
        checker.final_audit(accounted=2, skipped=0)
        assert checker.poisoned == frozenset({2})

    def test_still_assigned_trial_trips_the_audit(self):
        checker = _checker(total=1)
        checker.note_worker(0, STATE_SPAWNING)
        checker.note_worker(0, STATE_HEALTHY)
        checker.note_dispatch(0, [0])
        with pytest.raises(InvariantViolation):
            checker.final_audit(accounted=1, skipped=0)
