"""Unit tests for :class:`repro.invariants.service.ServiceStateChecker`.

Every violation class the checker guards — illegal lifecycle
transitions, double exits, lane custody breaches, negative budgets,
queue-bound breaches, unfair sheds, and the end-of-run conservation
law — must trip as a replayable :class:`InvariantViolation`, and the
legal narration paths must stay silent.
"""

import pytest

from repro.errors import InvariantViolation
from repro.invariants.service import (
    STATE_ACTIVE,
    STATE_ADMITTED,
    STATE_CALIBRATING,
    STATE_CLOSED,
    STATE_DRAINING,
    STATE_OFFERED,
    ServiceStateChecker,
)

pytestmark = pytest.mark.invariants


def _walk(checker, sid, *states):
    for state in states:
        checker.note_state(sid, state)


class TestLifecycle:
    def test_full_happy_path_is_legal(self):
        checker = ServiceStateChecker()
        _walk(
            checker, "s0",
            STATE_OFFERED, STATE_ADMITTED, STATE_CALIBRATING,
            STATE_ACTIVE, STATE_CLOSED,
        )
        checker.note_exit("s0", "completed")

    def test_recalibration_cycle_is_legal(self):
        checker = ServiceStateChecker()
        _walk(
            checker, "s0",
            STATE_OFFERED, STATE_ADMITTED, STATE_CALIBRATING,
            STATE_ACTIVE, STATE_CALIBRATING, STATE_ACTIVE, STATE_CLOSED,
        )

    def test_idempotent_reassertion_is_not_a_transition(self):
        checker = ServiceStateChecker()
        _walk(checker, "s0", STATE_OFFERED, STATE_OFFERED, STATE_ADMITTED)

    def test_entering_midstream_trips(self):
        checker = ServiceStateChecker()
        with pytest.raises(InvariantViolation, match="illegal transition"):
            checker.note_state("s0", STATE_ACTIVE)

    def test_skipping_admission_trips(self):
        checker = ServiceStateChecker()
        checker.note_state("s0", STATE_OFFERED)
        with pytest.raises(InvariantViolation, match="illegal transition"):
            checker.note_state("s0", STATE_ACTIVE)

    def test_draining_only_reaches_closed(self):
        checker = ServiceStateChecker()
        _walk(checker, "s0", STATE_OFFERED, STATE_ADMITTED, STATE_DRAINING)
        with pytest.raises(InvariantViolation, match="illegal transition"):
            checker.note_state("s0", STATE_ACTIVE)

    def test_unknown_state_trips(self):
        checker = ServiceStateChecker()
        with pytest.raises(InvariantViolation, match="unknown state"):
            checker.note_state("s0", "zombie")


class TestExits:
    def _closed(self, sid="s0"):
        checker = ServiceStateChecker()
        _walk(checker, sid, STATE_OFFERED, STATE_CLOSED)
        return checker

    def test_double_exit_trips(self):
        checker = self._closed()
        checker.note_exit("s0", "rejected")
        with pytest.raises(InvariantViolation, match="exited twice"):
            checker.note_exit("s0", "rejected")

    def test_exit_while_live_trips(self):
        checker = ServiceStateChecker()
        _walk(checker, "s0", STATE_OFFERED, STATE_ADMITTED)
        with pytest.raises(InvariantViolation, match="while still"):
            checker.note_exit("s0", "completed")

    def test_unknown_exit_path_trips(self):
        checker = self._closed()
        with pytest.raises(InvariantViolation, match="unknown path"):
            checker.note_exit("s0", "vanished")

    def test_exit_holding_lane_trips(self):
        checker = ServiceStateChecker()
        _walk(
            checker, "s0",
            STATE_OFFERED, STATE_ADMITTED, STATE_CALIBRATING, STATE_ACTIVE,
        )
        checker.note_lane_acquired("s0", 0)
        checker.note_state("s0", STATE_CLOSED)
        with pytest.raises(InvariantViolation, match="holding lane"):
            checker.note_exit("s0", "completed")


class TestLaneCustody:
    def test_exclusive_custody_both_directions(self):
        checker = ServiceStateChecker()
        checker.note_lane_acquired("s0", 0)
        with pytest.raises(InvariantViolation, match="still holds it"):
            checker.note_lane_acquired("s1", 0)
        with pytest.raises(InvariantViolation, match="already holding"):
            checker.note_lane_acquired("s0", 1)

    def test_release_by_non_holder_trips(self):
        checker = ServiceStateChecker()
        checker.note_lane_acquired("s0", 0)
        with pytest.raises(InvariantViolation, match="held by"):
            checker.note_lane_released("s1", 0)

    def test_handoff_counter_and_rebuild_narration(self):
        checker = ServiceStateChecker()
        checker.note_lane_acquired("s0", 0)
        checker.note_lane_released("s0", 0)
        checker.note_lane_acquired("s1", 0)
        checker.note_lane_released("s1", 0)
        assert checker.lane_handoffs == 2
        checker.note_lane_rebuilt(0, 4)  # legal whether held or not


class TestBudgetsQueueShed:
    def test_negative_tokens_trip(self):
        with pytest.raises(InvariantViolation, match="negative"):
            ServiceStateChecker().note_tokens(-0.5)

    def test_tenant_cap_breach_trips(self):
        checker = ServiceStateChecker()
        checker.note_tenant("t0", 100, 4, 4)
        with pytest.raises(InvariantViolation, match="isolation breached"):
            checker.note_tenant("t0", 100, 5, 4)

    def test_tenant_negative_budget_trips(self):
        with pytest.raises(InvariantViolation, match="negative"):
            ServiceStateChecker().note_tenant("t0", -1, 0, 4)

    def test_queue_bound_breach_trips(self):
        checker = ServiceStateChecker()
        checker.note_queue(8, 8)
        with pytest.raises(InvariantViolation, match="outside"):
            checker.note_queue(9, 8)

    def test_unfair_shed_trips(self):
        checker = ServiceStateChecker()
        checker.note_shed("s0", 0, 0)  # floor victim: fine
        with pytest.raises(InvariantViolation, match="unfair shed"):
            checker.note_shed("s1", 2, 0)


class TestFinalAudit:
    @staticmethod
    def _closed_checker(n):
        checker = ServiceStateChecker()
        for i in range(n):
            _walk(checker, f"s{i}", STATE_OFFERED, STATE_CLOSED)
            checker.note_exit(f"s{i}", "rejected")
        return checker

    def test_balanced_books_pass(self):
        checker = self._closed_checker(3)
        checker.final_audit(
            offered=3, resumed=0, rejected=3, completed=0, shed=0,
            failed=0, quarantined=0, checkpointed=0, in_flight=0,
        )

    def test_conservation_mismatch_trips(self):
        checker = self._closed_checker(3)
        with pytest.raises(InvariantViolation, match="accounting mismatch"):
            checker.final_audit(
                offered=4, resumed=0, rejected=3, completed=0, shed=0,
                failed=0, quarantined=0, checkpointed=0, in_flight=0,
            )

    def test_in_flight_remainder_trips(self):
        checker = self._closed_checker(1)
        with pytest.raises(InvariantViolation, match="in flight"):
            checker.final_audit(
                offered=1, resumed=0, rejected=1, completed=0, shed=0,
                failed=0, quarantined=0, checkpointed=0, in_flight=1,
            )

    def test_unclosed_session_trips(self):
        checker = self._closed_checker(1)
        checker.note_state("s9", STATE_OFFERED)
        with pytest.raises(InvariantViolation, match="not closed"):
            checker.final_audit(
                offered=1, resumed=0, rejected=1, completed=0, shed=0,
                failed=0, quarantined=0, checkpointed=0, in_flight=0,
            )

    def test_lost_exit_narration_trips(self):
        # Books balance numerically, but one exit was never narrated:
        # the session was lost between accounting and the ledger.
        checker = self._closed_checker(2)
        with pytest.raises(InvariantViolation, match="lost or double"):
            checker.final_audit(
                offered=3, resumed=0, rejected=3, completed=0, shed=0,
                failed=0, quarantined=0, checkpointed=0, in_flight=0,
            )

    def test_violation_carries_snapshot_and_events(self):
        checker = self._closed_checker(1)
        try:
            checker.final_audit(
                offered=2, resumed=0, rejected=1, completed=0, shed=0,
                failed=0, quarantined=0, checkpointed=0, in_flight=0,
            )
        except InvariantViolation as violation:
            assert violation.invariant == "service-state"
            assert violation.snapshot["sessions_seen"] == 1
            assert violation.events
        else:
            pytest.fail("mismatch did not trip")
