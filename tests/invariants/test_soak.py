"""The soak driver: determinism, clean runs, shrinking, and the CLI."""

import pytest

import repro.invariants.soak as soak
from repro.errors import InvariantViolation
from repro.experiments.runner import EXIT_INVARIANT
from repro.invariants.soak import (
    SoakConfig,
    generate_topology,
    generate_workload,
    repro_command,
    run_soak,
    shrink,
)

pytestmark = pytest.mark.invariants


class TestGeneration:
    def test_workload_is_deterministic(self):
        config = SoakConfig(seed=7, operations=100)
        assert generate_workload(config) == generate_workload(config)

    def test_different_seeds_differ(self):
        a = generate_workload(SoakConfig(seed=1, operations=100))
        b = generate_workload(SoakConfig(seed=2, operations=100))
        assert a != b

    def test_ops_reference_configured_queues_only(self):
        config = SoakConfig(seed=5, operations=200, processes=4)
        topology, ops = generate_workload(config)
        wq_ids = {wq["wq_id"] for wq in topology["wqs"]}
        assert len(ops) == 200
        for op in ops:
            if "wq" in op:
                assert op["wq"] in wq_ids
            if "proc" in op:
                assert 0 <= op["proc"] < config.processes

    def test_topology_within_model_bounds(self):
        for seed in range(12):
            topology = generate_topology(soak._derive_rng(seed))
            assert 1 <= topology["engines"] <= 4
            spanned = [e for group in topology["groups"] for e in group]
            assert sorted(spanned) == list(range(topology["engines"]))
            for wq in topology["wqs"]:
                assert 4 <= wq["size"] <= 24


class TestExecution:
    def test_clean_strict_soak_on_unfaulted_model(self):
        result = run_soak(SoakConfig(seed=1, operations=120))
        assert result.ok
        assert result.outcome.violation is None
        assert result.outcome.ops_executed == 120
        assert result.outcome.submissions > 0
        assert result.outcome.events_seen > 0
        # Strict mode audits at every event plus the final sweep.
        assert result.outcome.audits_run >= result.outcome.events_seen

    def test_clean_sampling_soak(self):
        result = run_soak(
            SoakConfig(seed=2, operations=120, mode="sampling", sample_every=16)
        )
        assert result.ok
        assert 0 < result.outcome.audits_run < result.outcome.events_seen

    def test_repro_command_carries_the_config(self):
        config = SoakConfig(seed=9, operations=150, processes=2, mode="sampling")
        command = repro_command(config)
        assert "--seed 9" in command
        assert "--operations 150" in command
        assert "--processes 2" in command
        assert "--mode sampling" in command
        assert "repro.invariants.soak" in command

    def test_violation_carries_repro_hint(self, monkeypatch):
        """A tripped soak reports the one-command reproduction line."""
        original = soak.execute

        def tripping(config, ops, repro_hint=""):
            outcome = original(config, ops, repro_hint=repro_hint)
            violation = InvariantViolation(
                message="synthetic", invariant="wq-credits",
                seed=config.seed, repro=repro_hint,
            )
            return soak.SoakOutcome(
                ok=False, violation=violation,
                ops_executed=outcome.ops_executed,
                submissions=outcome.submissions, waits=outcome.waits,
                handled_errors=outcome.handled_errors,
                events_seen=outcome.events_seen,
                audits_run=outcome.audits_run,
            )

        monkeypatch.setattr(soak, "execute", tripping)
        result = run_soak(SoakConfig(seed=3, operations=40), shrink_failures=False)
        assert not result.ok
        assert result.outcome.violation.repro == result.repro
        assert "--seed 3" in result.repro


class TestShrink:
    def _shrinkable(self, monkeypatch):
        """Fake executor: trips iff a marker op survives in the list."""

        def fake_execute(config, ops, repro_hint=""):
            tripped = any(op.get("marker") for op in ops)
            violation = (
                InvariantViolation(message="m", invariant="wq-credits")
                if tripped
                else None
            )
            return soak.SoakOutcome(
                ok=not tripped, violation=violation, ops_executed=len(ops),
                submissions=0, waits=0, handled_errors=0,
                events_seen=0, audits_run=0,
            )

        monkeypatch.setattr(soak, "execute", fake_execute)

    def test_shrinks_to_the_culprit(self, monkeypatch):
        self._shrinkable(monkeypatch)
        ops = [{"kind": "advance", "cycles": 1} for _ in range(63)]
        ops.insert(40, {"kind": "advance", "cycles": 1, "marker": True})
        config = SoakConfig(seed=0, operations=len(ops))
        minimal, runs = shrink(config, ops, "wq-credits")
        assert minimal == [{"kind": "advance", "cycles": 1, "marker": True}]
        assert 0 < runs <= config.shrink_budget

    def test_shrink_respects_budget(self, monkeypatch):
        self._shrinkable(monkeypatch)
        ops = [{"kind": "advance", "cycles": 1} for _ in range(200)]
        ops.append({"kind": "advance", "cycles": 1, "marker": True})
        minimal, runs = shrink(
            SoakConfig(seed=0), ops, "wq-credits", budget=5
        )
        assert runs <= 5
        assert any(op.get("marker") for op in minimal)

    def test_wrong_invariant_does_not_shrink(self, monkeypatch):
        self._shrinkable(monkeypatch)
        ops = [{"kind": "advance", "cycles": 1, "marker": True} for _ in range(8)]
        minimal, _runs = shrink(SoakConfig(seed=0), ops, "devtlb")
        # The fake trips "wq-credits"; asked for "devtlb", nothing drops.
        assert len(minimal) == len(ops)


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert soak.main(["--seed", "4", "--operations", "60"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_failing_run_exits_with_invariant_code(self, monkeypatch, capsys):
        def failing(config, shrink_failures=True):
            violation = InvariantViolation(
                message="m", invariant="wq-credits", seed=config.seed
            )
            outcome = soak.SoakOutcome(
                ok=False, violation=violation, ops_executed=1,
                submissions=1, waits=0, handled_errors=0,
                events_seen=1, audits_run=1,
            )
            return soak.SoakResult(
                config=config, outcome=outcome,
                repro=repro_command(config),
                minimal_ops=({"kind": "advance", "cycles": 1},),
                shrink_runs=3,
            )

        monkeypatch.setattr(soak, "run_soak", failing)
        code = soak.main(["--seed", "4", "--operations", "60"])
        assert code == EXIT_INVARIANT == 6
        out = capsys.readouterr().out
        assert "wq-credits" in out


@pytest.mark.soak
class TestLongSoak:
    """The real budgeted soak: excluded from tier-1 (scripts/run_soak.sh)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_strict_soak_across_seeds(self, seed):
        result = run_soak(SoakConfig(seed=seed, operations=300))
        assert result.ok, result.outcome.violation

    def test_sampling_soak(self):
        result = run_soak(
            SoakConfig(seed=11, operations=400, mode="sampling", sample_every=8)
        )
        assert result.ok, result.outcome.violation
