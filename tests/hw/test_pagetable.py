"""Unit and property tests for virtual address spaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TranslationFault
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import AddressSpace
from repro.hw.units import HUGE_PAGE_SIZE, MIB, PAGE_SIZE


@pytest.fixture
def memory():
    return PhysicalMemory(total_bytes=256 * MIB)


@pytest.fixture
def space(memory):
    return AddressSpace(memory)


class TestMapping:
    def test_mmap_returns_aligned_va(self, space):
        va = space.mmap(PAGE_SIZE)
        assert va % PAGE_SIZE == 0

    def test_mmap_huge_returns_huge_aligned_va(self, space):
        va = space.mmap(HUGE_PAGE_SIZE, huge=True)
        assert va % HUGE_PAGE_SIZE == 0
        assert space.page_is_huge(va)

    def test_translate_unmapped_faults(self, space):
        with pytest.raises(TranslationFault):
            space.translate(0xDEAD_0000)

    def test_translate_preserves_offset(self, space):
        va = space.mmap(PAGE_SIZE)
        pa = space.translate(va + 0x123)
        assert pa % PAGE_SIZE == 0x123

    def test_consecutive_mmaps_disjoint(self, space):
        first = space.mmap(3 * PAGE_SIZE)
        second = space.mmap(PAGE_SIZE)
        assert second >= first + 3 * PAGE_SIZE

    def test_map_range_rejects_unaligned(self, space):
        with pytest.raises(ValueError):
            space.map_range(0x1001, PAGE_SIZE)

    def test_map_range_rejects_overlap(self, space):
        space.map_range(0x10_0000, PAGE_SIZE)
        with pytest.raises(ValueError):
            space.map_range(0x10_0000, PAGE_SIZE)

    def test_unmap_releases_pages(self, space):
        va = space.mmap(2 * PAGE_SIZE)
        assert space.is_mapped(va)
        space.unmap(va)
        assert not space.is_mapped(va)
        with pytest.raises(TranslationFault):
            space.translate(va)

    def test_unmap_unknown_va_rejected(self, space):
        with pytest.raises(ValueError):
            space.unmap(0x123000)

    def test_read_only_mapping_rejects_write(self, space):
        va = space.mmap(PAGE_SIZE, writable=False)
        space.translate(va)  # read is fine
        with pytest.raises(TranslationFault):
            space.translate(va, write=True)

    def test_page_is_huge_faults_when_unmapped(self, space):
        with pytest.raises(TranslationFault):
            space.page_is_huge(0x999000)

    def test_mapped_pages_counts_4k_units(self, space):
        space.mmap(HUGE_PAGE_SIZE, huge=True)
        assert space.mapped_pages == HUGE_PAGE_SIZE // PAGE_SIZE


class TestDataThroughMapping:
    def test_write_read_roundtrip(self, space):
        va = space.mmap(PAGE_SIZE)
        space.write(va, b"payload")
        assert space.read(va, 7) == b"payload"

    def test_cross_page_write(self, space):
        va = space.mmap(2 * PAGE_SIZE)
        data = b"z" * 200
        space.write(va + PAGE_SIZE - 100, data)
        assert space.read(va + PAGE_SIZE - 100, 200) == data

    def test_distinct_spaces_are_isolated(self, memory):
        a = AddressSpace(memory, base_va=0x10_0000_0000)
        b = AddressSpace(memory, base_va=0x10_0000_0000)
        va_a = a.mmap(PAGE_SIZE)
        va_b = b.mmap(PAGE_SIZE)
        assert va_a == va_b  # same VA ...
        a.write(va_a, b"AAAA")
        b.write(va_b, b"BBBB")
        assert a.read(va_a, 4) == b"AAAA"  # ... different frames
        assert b.read(va_b, 4) == b"BBBB"


class TestAddressSpaceProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_every_mapped_page_translates(self, page_counts):
        memory = PhysicalMemory(total_bytes=256 * MIB)
        space = AddressSpace(memory)
        for pages in page_counts:
            va = space.mmap(pages * PAGE_SIZE)
            for i in range(pages):
                pa = space.translate(va + i * PAGE_SIZE)
                assert pa % PAGE_SIZE == 0

    @given(st.binary(min_size=1, max_size=2048), st.integers(min_value=0, max_value=4096))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any_payload(self, payload, offset):
        memory = PhysicalMemory(total_bytes=64 * MIB)
        space = AddressSpace(memory)
        va = space.mmap(2 * PAGE_SIZE)
        space.write(va + offset, payload)
        assert space.read(va + offset, len(payload)) == payload
