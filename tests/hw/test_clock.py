"""Unit tests for the TSC clock model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.clock import RDTSC_OVERHEAD_CYCLES, TscClock
from repro.hw.units import DEFAULT_TSC_HZ


class TestTscClock:
    def test_starts_at_zero(self):
        assert TscClock().now == 0

    def test_rdtsc_charges_overhead(self):
        clock = TscClock()
        first = clock.rdtsc()
        second = clock.rdtsc()
        assert first == RDTSC_OVERHEAD_CYCLES
        assert second - first == RDTSC_OVERHEAD_CYCLES

    def test_back_to_back_rdtsc_never_zero_interval(self):
        clock = TscClock()
        assert clock.rdtsc() < clock.rdtsc()

    def test_advance_returns_new_time(self):
        clock = TscClock()
        assert clock.advance(100) == 100
        assert clock.now == 100

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            TscClock().advance(-1)

    def test_advance_us_uses_frequency(self):
        clock = TscClock(freq_hz=DEFAULT_TSC_HZ)
        clock.advance_us(10)
        assert clock.now == 20_000  # 10 us at 2 GHz

    def test_advance_to_future(self):
        clock = TscClock()
        clock.advance_to(500)
        assert clock.now == 500

    def test_advance_to_past_is_noop(self):
        clock = TscClock()
        clock.advance(1000)
        clock.advance_to(500)
        assert clock.now == 1000

    def test_now_us_conversion(self):
        clock = TscClock(freq_hz=2_000_000_000)
        clock.advance(2_000_000)
        assert clock.now_us == pytest.approx(1000.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            TscClock(freq_hz=0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            TscClock(rdtsc_overhead=-1)

    def test_repr_mentions_time(self):
        clock = TscClock()
        clock.advance(42)
        assert "42" in repr(clock)


class TestClockProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    def test_monotonic_under_any_advance_sequence(self, steps):
        clock = TscClock()
        previous = clock.now
        for step in steps:
            clock.advance(step)
            assert clock.now >= previous
            previous = clock.now

    @given(st.integers(min_value=0, max_value=10**12))
    def test_advance_is_exact(self, cycles):
        clock = TscClock()
        clock.advance(cycles)
        assert clock.now == cycles
