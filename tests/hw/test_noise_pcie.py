"""Unit tests for noise models and the PCIe link."""

import numpy as np
import pytest

from repro.hw.noise import Environment, noise_model_for
from repro.hw.pcie import (
    BASE_ROUND_TRIP_CYCLES,
    PcieLink,
    TransactionKind,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestNoiseModels:
    def test_all_environments_have_models(self):
        for env in Environment:
            assert noise_model_for(env).environment is env

    def test_noisy_flag(self):
        assert Environment.LOCAL_NOISE.noisy
        assert Environment.CLOUD_NOISE.noisy
        assert not Environment.LOCAL.noisy
        assert not Environment.CLOUD.noisy

    def test_cloud_noise_shift_matches_paper(self, rng):
        """Paper: Cloud+Noise shifts latency by ~89 cycles on average."""
        model = noise_model_for(Environment.CLOUD_NOISE)
        samples = model.sample_many(rng, 20_000)
        local = noise_model_for(Environment.LOCAL).sample_many(rng, 20_000)
        shift = samples.mean() - local.mean()
        assert 75 <= shift <= 115

    def test_local_is_zero_centered(self, rng):
        model = noise_model_for(Environment.LOCAL)
        samples = model.sample_many(rng, 20_000)
        assert abs(samples.mean()) < 10

    def test_sample_many_matches_sample_distribution(self, rng):
        model = noise_model_for(Environment.LOCAL_NOISE)
        singles = np.array([model.sample(rng) for _ in range(5_000)])
        batch = model.sample_many(rng, 5_000)
        assert abs(singles.mean() - batch.mean()) < 10
        assert abs(singles.std() - batch.std()) < 20

    def test_noise_ordering(self, rng):
        """Noisier environments shift the mean upward."""
        means = {
            env: noise_model_for(env).sample_many(rng, 10_000).mean()
            for env in Environment
        }
        assert means[Environment.LOCAL] < means[Environment.CLOUD]
        assert means[Environment.CLOUD] < means[Environment.CLOUD_NOISE]
        assert means[Environment.LOCAL] < means[Environment.LOCAL_NOISE]


class TestPcieLink:
    def test_transaction_counts(self, rng):
        link = PcieLink(rng=rng)
        link.transaction_cycles(TransactionKind.POSTED_WRITE)
        link.transaction_cycles(TransactionKind.NON_POSTED_READ)
        link.transaction_cycles(TransactionKind.DMWR)
        link.transaction_cycles(TransactionKind.DMWR)
        assert link.stats.posted_writes == 1
        assert link.stats.non_posted_reads == 1
        assert link.stats.dmwr == 2
        assert link.stats.count(TransactionKind.DMWR) == 2
        assert link.stats.count(TransactionKind.POSTED_WRITE) == 1
        assert link.stats.count(TransactionKind.NON_POSTED_READ) == 1

    def test_latency_has_floor(self, rng):
        link = PcieLink(rng=rng)
        for _ in range(1000):
            cycles = link.transaction_cycles(TransactionKind.POSTED_WRITE)
            assert cycles >= BASE_ROUND_TRIP_CYCLES // 2

    def test_non_posted_slower_on_average(self, rng):
        link = PcieLink(rng=rng)
        posted = np.mean(
            [link.transaction_cycles(TransactionKind.POSTED_WRITE) for _ in range(2000)]
        )
        non_posted = np.mean(
            [link.transaction_cycles(TransactionKind.NON_POSTED_READ) for _ in range(2000)]
        )
        assert non_posted > posted

    def test_set_environment_changes_noise(self, rng):
        link = PcieLink(rng=rng)
        quiet = np.mean(
            [link.transaction_cycles(TransactionKind.DMWR) for _ in range(3000)]
        )
        link.set_environment(Environment.CLOUD_NOISE)
        assert link.noise.environment is Environment.CLOUD_NOISE
        noisy = np.mean(
            [link.transaction_cycles(TransactionKind.DMWR) for _ in range(3000)]
        )
        assert noisy > quiet + 40

    def test_total_cycles_accumulates(self, rng):
        link = PcieLink(rng=rng)
        spent = sum(
            link.transaction_cycles(TransactionKind.POSTED_WRITE) for _ in range(10)
        )
        assert link.stats.total_cycles == spent
