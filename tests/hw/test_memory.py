"""Unit and property tests for physical memory and the frame allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemoryError
from repro.hw.memory import PhysicalMemory
from repro.hw.units import HUGE_PAGE_SIZE, MIB, PAGE_SIZE


@pytest.fixture
def memory():
    return PhysicalMemory(total_bytes=64 * MIB)


class TestAllocation:
    def test_allocation_is_page_aligned(self, memory):
        rng = memory.allocate(100)
        assert rng.base % PAGE_SIZE == 0
        assert rng.size == PAGE_SIZE

    def test_huge_allocation_is_huge_aligned(self, memory):
        rng = memory.allocate(HUGE_PAGE_SIZE, huge=True)
        assert rng.base % HUGE_PAGE_SIZE == 0
        assert rng.size == HUGE_PAGE_SIZE
        assert rng.huge

    def test_allocations_do_not_overlap(self, memory):
        a = memory.allocate(3 * PAGE_SIZE)
        b = memory.allocate(2 * PAGE_SIZE)
        assert a.end <= b.base or b.end <= a.base

    def test_out_of_memory(self):
        small = PhysicalMemory(total_bytes=4 * PAGE_SIZE)
        small.allocate(4 * PAGE_SIZE)
        with pytest.raises(OutOfMemoryError):
            small.allocate(PAGE_SIZE)

    def test_zero_size_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.allocate(0)

    def test_free_allows_reuse_of_small_pages(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        memory.free(rng)
        again = memory.allocate(PAGE_SIZE)
        assert again.base == rng.base

    def test_double_free_rejected(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        memory.free(rng)
        with pytest.raises(ValueError):
            memory.free(rng)

    def test_allocated_bytes_tracks(self, memory):
        memory.allocate(PAGE_SIZE)
        memory.allocate(2 * PAGE_SIZE)
        assert memory.allocated_bytes == 3 * PAGE_SIZE

    def test_range_contains(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        assert rng.base in rng
        assert rng.end not in rng

    def test_memory_too_small_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(total_bytes=100)


class TestDataAccess:
    def test_read_untouched_memory_is_zero(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        assert memory.read(rng.base, 16) == bytes(16)

    def test_write_then_read(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        memory.write(rng.base + 10, b"hello")
        assert memory.read(rng.base + 10, 5) == b"hello"

    def test_write_spanning_frames(self, memory):
        rng = memory.allocate(2 * PAGE_SIZE)
        data = bytes(range(256)) * 20
        start = rng.base + PAGE_SIZE - 100
        memory.write(start, data)
        assert memory.read(start, len(data)) == data

    def test_fill(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        memory.fill(rng.base, 64, 0xAB)
        assert memory.read(rng.base, 64) == b"\xab" * 64

    def test_fill_invalid_value(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        with pytest.raises(ValueError):
            memory.fill(rng.base, 4, 300)

    def test_out_of_bounds_read(self, memory):
        with pytest.raises(ValueError):
            memory.read(memory.total_bytes - 1, 2)

    def test_out_of_bounds_write(self, memory):
        with pytest.raises(ValueError):
            memory.write(memory.total_bytes, b"x")

    def test_free_drops_contents(self, memory):
        rng = memory.allocate(PAGE_SIZE)
        memory.write(rng.base, b"secret")
        memory.free(rng)
        again = memory.allocate(PAGE_SIZE)
        assert again.base == rng.base
        assert memory.read(again.base, 6) == bytes(6)


class TestMemoryProperties:
    @given(
        offsets_and_data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3 * PAGE_SIZE),
                st.binary(min_size=1, max_size=300),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_last_write_wins(self, offsets_and_data):
        memory = PhysicalMemory(total_bytes=16 * MIB)
        rng = memory.allocate(4 * PAGE_SIZE)
        shadow = bytearray(4 * PAGE_SIZE)
        for offset, data in offsets_and_data:
            data = data[: 4 * PAGE_SIZE - offset]
            if not data:
                continue
            memory.write(rng.base + offset, data)
            shadow[offset : offset + len(data)] = data
        assert memory.read(rng.base, len(shadow)) == bytes(shadow)

    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_mixed_allocations_never_overlap(self, huge_flags):
        memory = PhysicalMemory(total_bytes=256 * MIB)
        ranges = [memory.allocate(PAGE_SIZE, huge=huge) for huge in huge_flags]
        ranges.sort(key=lambda r: r.base)
        for first, second in zip(ranges, ranges[1:]):
            assert first.end <= second.base
