"""Unit tests for constants and conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import units


class TestPageHelpers:
    def test_page_number(self):
        assert units.page_number(0) == 0
        assert units.page_number(0xFFF) == 0
        assert units.page_number(0x1000) == 1

    def test_page_offset(self):
        assert units.page_offset(0x1234) == 0x234

    def test_huge_page_number(self):
        assert units.huge_page_number(units.HUGE_PAGE_SIZE) == 1

    def test_page_size_constants(self):
        assert units.PAGE_SIZE == 4096
        assert units.HUGE_PAGE_SIZE == 2 * units.MIB


class TestAlignment:
    def test_align_up(self):
        assert units.align_up(1, 4096) == 4096
        assert units.align_up(4096, 4096) == 4096
        assert units.align_up(4097, 4096) == 8192

    def test_align_down(self):
        assert units.align_down(4097, 4096) == 4096

    def test_is_aligned(self):
        assert units.is_aligned(8192, 4096)
        assert not units.is_aligned(8193, 4096)

    @pytest.mark.parametrize("func", [units.align_up, units.align_down, units.is_aligned])
    def test_zero_alignment_rejected(self, func):
        with pytest.raises(ValueError):
            func(10, 0)

    @given(
        st.integers(min_value=0, max_value=2**48),
        st.sampled_from([1, 64, 4096, 2 * units.MIB]),
    )
    def test_align_up_properties(self, value, alignment):
        aligned = units.align_up(value, alignment)
        assert aligned >= value
        assert aligned % alignment == 0
        assert aligned - value < alignment


class TestTimeConversions:
    def test_roundtrip_us(self):
        assert units.cycles_to_us(units.us_to_cycles(10)) == pytest.approx(10)

    def test_seconds(self):
        assert units.seconds_to_cycles(1.0) == units.DEFAULT_TSC_HZ
        assert units.cycles_to_seconds(units.DEFAULT_TSC_HZ) == pytest.approx(1.0)

    def test_us_to_cycles_at_2ghz(self):
        assert units.us_to_cycles(1) == 2000

    @given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_conversion_roundtrip_close(self, microseconds):
        cycles = units.us_to_cycles(microseconds)
        assert units.cycles_to_us(cycles) == pytest.approx(microseconds, abs=1e-3)
