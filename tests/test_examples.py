"""The fast example scripts must stay runnable (import-and-main smoke).

The long examples (fingerprinting demos) are exercised through the
experiments they wrap; the quick ones run here end-to-end so the README
never rots.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "cross-VM DSA activity observed" in out

    def test_defense_monitoring(self, capsys):
        run_example("defense_monitoring.py")
        out = capsys.readouterr().out
        assert "detector raised" in out
        assert "jammed" in out

    def test_reverse_engineering_tour(self, capsys):
        run_example("reverse_engineering_tour.py")
        out = capsys.readouterr().out
        assert "every paper observation reproduced: True" in out

    def test_all_examples_importable(self):
        """Every example at least parses and imports its dependencies."""
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            compile(source, str(path), "exec")

    def test_examples_have_docstrings_and_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), path
            assert "def main()" in source, path
            assert '__main__' in source, path
