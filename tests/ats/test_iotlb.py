"""Unit and property tests for the PASID-tagged IOTLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ats.iotlb import IoTlb


class TestIoTlbBasics:
    def test_miss_then_hit(self):
        tlb = IoTlb()
        assert tlb.lookup(1, 0x100) is None
        tlb.insert(1, 0x100, 0x55)
        assert tlb.lookup(1, 0x100) == 0x55
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_pasid_isolation(self):
        """VT-d scalable mode: entries of one PASID are invisible to another."""
        tlb = IoTlb()
        tlb.insert(1, 0x100, 0x55)
        assert tlb.lookup(2, 0x100) is None

    def test_invalidate_pasid_is_selective(self):
        tlb = IoTlb()
        tlb.insert(1, 0x100, 0x55)
        tlb.insert(2, 0x200, 0x66)
        assert tlb.invalidate_pasid(1) == 1
        assert tlb.lookup(1, 0x100) is None
        assert tlb.lookup(2, 0x200) == 0x66

    def test_invalidate_all(self):
        tlb = IoTlb()
        tlb.insert(1, 0x100, 0x55)
        tlb.insert(2, 0x200, 0x66)
        tlb.invalidate_all()
        assert tlb.occupancy == 0

    def test_lru_eviction_within_set(self):
        tlb = IoTlb(sets=1, ways=2)
        tlb.insert(1, 0xA, 1)
        tlb.insert(1, 0xB, 2)
        tlb.lookup(1, 0xA)  # A becomes MRU
        tlb.insert(1, 0xC, 3)  # evicts B
        assert tlb.lookup(1, 0xA) == 1
        assert tlb.lookup(1, 0xB) is None
        assert tlb.lookup(1, 0xC) == 3

    def test_reinsert_updates_frame(self):
        tlb = IoTlb()
        tlb.insert(1, 0x100, 0x55)
        tlb.insert(1, 0x100, 0x77)
        assert tlb.lookup(1, 0x100) == 0x77
        assert tlb.occupancy == 1

    def test_set_indexing_uses_low_bits(self):
        tlb = IoTlb(sets=4, ways=1)
        tlb.insert(1, 0b000, 1)
        tlb.insert(1, 0b100, 2)  # same set (low 2 bits), evicts first
        assert tlb.lookup(1, 0b000) is None
        assert tlb.lookup(1, 0b100) == 2

    def test_hit_rate(self):
        tlb = IoTlb()
        assert tlb.stats.hit_rate == 0.0
        tlb.insert(1, 5, 9)
        tlb.lookup(1, 5)
        tlb.lookup(1, 6)
        assert tlb.stats.hit_rate == pytest.approx(0.5)

    @pytest.mark.parametrize("sets", [0, 3, -4])
    def test_invalid_sets_rejected(self, sets):
        with pytest.raises(ValueError):
            IoTlb(sets=sets)

    def test_invalid_ways_rejected(self):
        with pytest.raises(ValueError):
            IoTlb(ways=0)


class TestIoTlbProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),  # pasid
                st.integers(min_value=0, max_value=255),  # vpn
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        tlb = IoTlb(sets=4, ways=2)
        for pasid, vpn in accesses:
            tlb.insert(pasid, vpn, vpn + 1000)
        assert tlb.occupancy <= 4 * 2

    @given(
        st.lists(
            st.tuples(st.integers(1, 3), st.integers(0, 63)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lookup_returns_last_inserted_frame(self, inserts):
        tlb = IoTlb(sets=64, ways=64)  # large enough: no evictions
        latest = {}
        for i, (pasid, vpn) in enumerate(inserts):
            tlb.insert(pasid, vpn, i)
            latest[(pasid, vpn)] = i
        for (pasid, vpn), frame in latest.items():
            assert tlb.lookup(pasid, vpn) == frame
