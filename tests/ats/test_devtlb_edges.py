"""DevTLB eviction edge cases, run under the invariant monitor.

Three corners the paper's reverse engineering implies but the happy-path
tests never reach: the structural five-sub-entry ceiling at exact
capacity, re-fill behaviour after a PRS-level translation fault, and
cross-PASID aliasing in both the vulnerable (shared) and the proposed
partitioned configuration.
"""

import pytest

from repro.ats.devtlb import (
    SUB_ENTRIES_PER_ENGINE,
    DevTlbConfig,
    FieldType,
)
from repro.dsa.descriptor import make_memcpy
from repro.dsa.completion import CompletionStatus
from repro.errors import InvariantViolation
from repro.faults import FaultPlan, FaultSite
from repro.invariants import InvariantMonitor

from tests.conftest import build_host

pytestmark = pytest.mark.invariants


def _monitored_host(**kwargs):
    host = build_host(**kwargs)
    monitor = InvariantMonitor(mode="strict")
    monitor.attach_device(host.device)
    return host, monitor


class TestExactCapacity:
    def test_eviction_at_exactly_five_sub_entries(self):
        """Filling all five field types holds occupancy at the ceiling:
        further traffic evicts within sub-entries, never grows a sixth."""
        host, monitor = _monitored_host()
        proc = host.new_process()
        tlb = host.device.devtlb
        for page, field in enumerate(FieldType):
            assert not tlb.access(0, field, 0x100 + page, pasid=proc.pasid)
        assert tlb.occupancy == SUB_ENTRIES_PER_ENGINE
        # A full second round on new pages: only evictions, same census.
        for page, field in enumerate(FieldType):
            assert not tlb.access(0, field, 0x900 + page, pasid=proc.pasid)
        assert tlb.occupancy == SUB_ENTRIES_PER_ENGINE
        fields = {row[1] for row in tlb.census() if row[0] == 0}
        assert len(fields) == SUB_ENTRIES_PER_ENGINE
        monitor.check_all()

    def test_capacity_is_per_engine(self):
        host, monitor = _monitored_host(engine_count=2)
        proc = host.new_process()
        tlb = host.device.devtlb
        for engine_id in (0, 1):
            for page, field in enumerate(FieldType):
                tlb.access(engine_id, field, 0x100 + page, pasid=proc.pasid)
        assert tlb.occupancy == 2 * SUB_ENTRIES_PER_ENGINE
        monitor.check_all()


class TestRefillAfterPrsFault:
    def test_refill_after_faulted_translation(self):
        """A descriptor killed by an injected PRS drop leaves no usable
        translation behind; the retry re-fills and then hits."""
        host, monitor = _monitored_host()
        host.device.prs.set_handler(lambda pasid, va, write: True)
        proc = host.new_process()
        src = proc.buffer(4096)
        dst = proc.buffer(4096)
        comp = proc.comp_record()
        base = proc.space.mmap(4096)
        proc.space.unmap(base)  # the page whose walk will fault

        injector = (
            FaultPlan(seed=5)
            .with_site(FaultSite.PRS_DROP, probability=1.0)
            .build_injector()
        )
        injector.attach_device(host.device)
        faulted = proc.portal.submit_wait(
            make_memcpy(proc.pasid, base, dst, 256, comp)
        )
        assert faulted.record.status is CompletionStatus.PAGE_FAULT

        # The fault cleared (page mapped back, injector gone): the same
        # stream re-fills the DevTLB and completes.
        host.device.prs.fault_injector = None
        proc.space.map_range(base, 4096)
        stats_before = host.device.devtlb.stats.snapshot()
        ok = proc.portal.submit_wait(
            make_memcpy(proc.pasid, base, dst, 256, comp)
        )
        assert ok.record.status is CompletionStatus.SUCCESS
        refill = host.device.devtlb.stats.delta(stats_before)
        assert refill.alloc_requests > refill.hits  # misses re-filled
        again = proc.portal.submit_wait(
            make_memcpy(proc.pasid, base, dst, 256, comp)
        )
        assert again.record.status is CompletionStatus.SUCCESS
        assert again.ticket.devtlb_hits > 0  # the re-filled entries now hit
        monitor.check_all()


class TestCrossPasidAliasing:
    def test_shared_subentry_aliases_across_pasids(self):
        """The vulnerable configuration: PASID is not part of the tag,
        so one tenant's fill services another tenant's lookup — the
        isolation gap the attack rides.  The monitor must stay silent:
        this is correct (modelled) hardware behaviour, not corruption."""
        host, monitor = _monitored_host()
        attacker = host.new_process()
        victim = host.new_process(base_va=0x20_0000_0000)
        tlb = host.device.devtlb
        assert not tlb.access(0, FieldType.SRC, 0x42, pasid=victim.pasid)
        assert tlb.access(0, FieldType.SRC, 0x42, pasid=attacker.pasid)
        monitor.check_all()

    def test_partitioned_subentries_do_not_alias(self):
        from repro.dsa.device import DsaDeviceConfig

        config = DsaDeviceConfig(devtlb=DevTlbConfig(pasid_partitioned=True))
        host, monitor = _monitored_host(config=config)
        attacker = host.new_process()
        victim = host.new_process(base_va=0x20_0000_0000)
        tlb = host.device.devtlb
        assert not tlb.access(0, FieldType.SRC, 0x42, pasid=victim.pasid)
        assert not tlb.access(0, FieldType.SRC, 0x42, pasid=attacker.pasid)
        assert tlb.access(0, FieldType.SRC, 0x42, pasid=victim.pasid)
        monitor.check_all()

    def test_partition_tag_corruption_trips_the_monitor(self):
        """In the partitioned configuration a slot tagged with a foreign
        PASID is exactly the corruption the devtlb checker exists for."""
        from repro.dsa.device import DsaDeviceConfig

        config = DsaDeviceConfig(devtlb=DevTlbConfig(pasid_partitioned=True))
        host, monitor = _monitored_host(config=config)
        victim = host.new_process()
        tlb = host.device.devtlb
        tlb.access(0, FieldType.SRC, 0x42, pasid=victim.pasid)
        key, sub = next(iter(tlb._entries.items()))
        assert key[2] == victim.pasid  # partitioned key carries the PASID
        sub.slots[0].pasid = victim.pasid + 99  # the "bug"
        with pytest.raises(InvariantViolation) as info:
            monitor.check_all()
        assert info.value.invariant == "devtlb"
        assert "partitioned" in str(info.value)
