"""Unit and property tests for the reverse-engineered DevTLB.

These tests encode the paper's Takeaways 1 and 2 directly: field-type
indexing, single-slot sub-entries, no cross-field interference, page-size
blindness, and the absent PASID isolation that enables the attack.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ats.devtlb import (
    SUB_ENTRIES_PER_ENGINE,
    DevTlb,
    DevTlbConfig,
    FieldType,
)


@pytest.fixture
def tlb():
    return DevTlb()


class TestIndexing:
    def test_five_field_types(self):
        assert SUB_ENTRIES_PER_ENGINE == 5
        assert {f.value for f in FieldType} == {"src", "src2", "dst", "dst2", "comp"}

    def test_miss_then_hit_same_page(self, tlb):
        assert not tlb.access(0, FieldType.SRC, 0x100, pasid=1)
        assert tlb.access(0, FieldType.SRC, 0x100, pasid=1)

    def test_single_slot_eviction(self, tlb):
        """Listing 2: accessing a second page evicts the first directly."""
        tlb.access(0, FieldType.COMP, 0x100, pasid=1)
        tlb.access(0, FieldType.COMP, 0x101, pasid=1)
        assert not tlb.access(0, FieldType.COMP, 0x100, pasid=1)

    def test_fields_are_independent_sub_entries(self, tlb):
        """Listing 3: dst survives although src changed page."""
        tlb.access(0, FieldType.SRC, 0x100, pasid=1)
        tlb.access(0, FieldType.DST, 0x200, pasid=1)
        tlb.access(0, FieldType.SRC, 0x300, pasid=1)  # new src page
        assert tlb.access(0, FieldType.DST, 0x200, pasid=1)  # dst still hits

    def test_src2_and_dst_do_not_interfere(self, tlb):
        """Listing 4: same page via src2 then dst gives only one hit (src)."""
        tlb.access(0, FieldType.SRC, 0x100, pasid=1)
        tlb.access(0, FieldType.SRC2, 0x200, pasid=1)
        # memcpy: src hits, dst misses even though dst page == src2 page
        assert tlb.access(0, FieldType.SRC, 0x100, pasid=1)
        assert not tlb.access(0, FieldType.DST, 0x200, pasid=1)

    def test_engines_are_isolated(self, tlb):
        """E2: separate engines never share sub-entries."""
        tlb.access(0, FieldType.SRC, 0x100, pasid=1)
        assert not tlb.access(1, FieldType.SRC, 0x100, pasid=2)
        assert tlb.access(0, FieldType.SRC, 0x100, pasid=1)

    def test_dualcast_dst_and_dst2_separate(self, tlb):
        tlb.access(0, FieldType.DST, 0x10, pasid=1)
        tlb.access(0, FieldType.DST2, 0x20, pasid=1)
        assert tlb.access(0, FieldType.DST, 0x10, pasid=1)
        assert tlb.access(0, FieldType.DST2, 0x20, pasid=1)


class TestPasidIsolation:
    def test_no_pasid_isolation_by_default(self, tlb):
        """Takeaway 2: a different PASID hits the same sub-entry."""
        tlb.access(0, FieldType.COMP, 0x100, pasid=1)
        assert tlb.access(0, FieldType.COMP, 0x100, pasid=2)

    def test_cross_pasid_eviction(self, tlb):
        """E0/E1: the victim's access evicts the attacker's entry."""
        tlb.access(0, FieldType.COMP, 0x100, pasid=1)  # attacker primes
        tlb.access(0, FieldType.COMP, 0x999, pasid=2)  # victim evicts
        assert not tlb.access(0, FieldType.COMP, 0x100, pasid=1)

    def test_partitioned_config_blocks_cross_pasid_hit(self):
        tlb = DevTlb(DevTlbConfig(pasid_partitioned=True))
        tlb.access(0, FieldType.COMP, 0x100, pasid=1)
        assert not tlb.access(0, FieldType.COMP, 0x100, pasid=2)

    def test_partitioned_config_same_pasid_still_hits(self):
        tlb = DevTlb(DevTlbConfig(pasid_partitioned=True))
        tlb.access(0, FieldType.COMP, 0x100, pasid=1)
        # the cross-PASID access above replaced nothing for pasid 1 ...
        tlb2 = DevTlb(DevTlbConfig(pasid_partitioned=True, slots_per_subentry=2))
        tlb2.access(0, FieldType.COMP, 0x100, pasid=1)
        tlb2.access(0, FieldType.COMP, 0x100, pasid=2)
        assert tlb2.access(0, FieldType.COMP, 0x100, pasid=1)


class TestPageSizes:
    def test_huge_page_evicts_small_entry(self, tlb):
        """No dedicated entries per page size (Section IV-B)."""
        tlb.access(0, FieldType.SRC, 0x100, pasid=1)
        tlb.access(0, FieldType.SRC, 0x8000, pasid=1, huge=True)
        assert not tlb.access(0, FieldType.SRC, 0x100, pasid=1)

    def test_huge_entry_covers_whole_huge_page(self, tlb):
        tlb.access(0, FieldType.SRC, 0x200, pasid=1, huge=True)
        base = 0x200 - (0x200 % 512)
        assert tlb.access(0, FieldType.SRC, base + 511, pasid=1)

    def test_page_granularity_ignores_low_bits(self, tlb):
        """Offsets below 4 KiB map to the same page: two hits in Listing 2."""
        tlb.access(0, FieldType.COMP, 0x100, pasid=1)
        assert tlb.access(0, FieldType.COMP, 0x100, pasid=1)
        assert tlb.access(0, FieldType.COMP, 0x100, pasid=1)


class TestCounters:
    def test_counters_match_events(self, tlb):
        tlb.access(0, FieldType.SRC, 1, pasid=1)  # miss -> alloc
        tlb.access(0, FieldType.SRC, 1, pasid=1)  # hit
        tlb.access(0, FieldType.SRC, 2, pasid=1)  # miss -> alloc
        assert tlb.stats.alloc_requests == 3  # EV_ATC_ALLOC: all requests
        assert tlb.stats.hits == 1  # EV_ATC_HIT_PREV
        assert tlb.stats.no_alloc == 1  # EV_ATC_NO_ALLOC: no replacement

    def test_per_engine_counters(self, tlb):
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        tlb.access(1, FieldType.SRC, 1, pasid=1)
        tlb.access(1, FieldType.SRC, 1, pasid=1)
        assert tlb.engine_stats(0).alloc_requests == 1
        assert tlb.engine_stats(1).hits == 1

    def test_snapshot_delta(self, tlb):
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        before = tlb.stats.snapshot()
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        delta = tlb.stats.delta(before)
        assert delta.hits == 1
        assert delta.alloc_requests == 1

    def test_peek_does_not_mutate(self, tlb):
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        before = tlb.stats.snapshot()
        assert tlb.peek(0, FieldType.SRC, 1, pasid=1)
        assert not tlb.peek(0, FieldType.SRC, 2, pasid=1)
        assert tlb.stats.delta(before).alloc_requests == 0


class TestInvalidation:
    def test_invalidate_engine(self, tlb):
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        tlb.access(1, FieldType.SRC, 1, pasid=1)
        tlb.invalidate_engine(0)
        assert not tlb.peek(0, FieldType.SRC, 1, pasid=1)
        assert tlb.peek(1, FieldType.SRC, 1, pasid=1)

    def test_invalidate_all(self, tlb):
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        tlb.invalidate_all()
        assert tlb.occupancy == 0

    def test_cached_pages(self, tlb):
        tlb.access(0, FieldType.SRC, 0x42, pasid=1)
        assert tlb.cached_pages(0, FieldType.SRC) == [0x42]
        assert tlb.cached_pages(0, FieldType.DST) == []
        assert tlb.cached_pages(9, FieldType.SRC) == []


class TestConfig:
    def test_invalid_slot_count_rejected(self):
        with pytest.raises(ValueError):
            DevTlbConfig(slots_per_subentry=0)

    def test_multi_slot_lru(self):
        tlb = DevTlb(DevTlbConfig(slots_per_subentry=2))
        tlb.access(0, FieldType.SRC, 1, pasid=1)
        tlb.access(0, FieldType.SRC, 2, pasid=1)
        tlb.access(0, FieldType.SRC, 1, pasid=1)  # 1 becomes MRU
        tlb.access(0, FieldType.SRC, 3, pasid=1)  # evicts 2
        assert tlb.peek(0, FieldType.SRC, 1, pasid=1)
        assert not tlb.peek(0, FieldType.SRC, 2, pasid=1)
        assert tlb.peek(0, FieldType.SRC, 3, pasid=1)


class TestDevTlbProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),  # engine
                st.sampled_from(list(FieldType)),
                st.integers(0, 50),  # page
                st.integers(1, 4),  # pasid
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_by_structure(self, accesses):
        tlb = DevTlb()
        engines = {engine for engine, *_ in accesses}
        for engine, ftype, page, pasid in accesses:
            tlb.access(engine, ftype, page, pasid=pasid)
        assert tlb.occupancy <= len(engines) * SUB_ENTRIES_PER_ENGINE

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(1, 4)),
            min_size=2,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_hit_iff_same_page_as_previous_access(self, accesses):
        """Single-slot sub-entry: a hit happens iff the page repeats."""
        tlb = DevTlb()
        previous_page = None
        for page, pasid in accesses:
            hit = tlb.access(0, FieldType.COMP, page, pasid=pasid)
            assert hit == (page == previous_page)
            previous_page = page

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 3)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_counter_invariants(self, accesses):
        tlb = DevTlb()
        for page, pasid in accesses:
            tlb.access(0, FieldType.SRC, page, pasid=pasid)
        stats = tlb.stats
        assert stats.alloc_requests == len(accesses)
        assert stats.hits == stats.no_alloc  # single-slot: hit <=> no replace
        assert stats.hits <= stats.alloc_requests
