"""Unit tests for PASID allocation and the PASID table."""

import pytest

from repro.ats.pasid import MAX_PASID, PasidAllocator, PasidTable
from repro.errors import ConfigurationError
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import AddressSpace


class TestPasidAllocator:
    def test_allocates_unique_nonzero(self):
        allocator = PasidAllocator()
        pasids = {allocator.allocate() for _ in range(100)}
        assert len(pasids) == 100
        assert 0 not in pasids

    def test_release_recycles(self):
        allocator = PasidAllocator()
        pasid = allocator.allocate()
        allocator.release(pasid)
        assert allocator.allocate() == pasid

    def test_release_unallocated_rejected(self):
        with pytest.raises(ConfigurationError):
            PasidAllocator().release(5)

    def test_is_live(self):
        allocator = PasidAllocator()
        pasid = allocator.allocate()
        assert allocator.is_live(pasid)
        allocator.release(pasid)
        assert not allocator.is_live(pasid)

    def test_live_count(self):
        allocator = PasidAllocator()
        a = allocator.allocate()
        allocator.allocate()
        assert allocator.live_count == 2
        allocator.release(a)
        assert allocator.live_count == 1

    def test_max_pasid_is_20_bit(self):
        assert MAX_PASID == (1 << 20) - 1


class TestPasidTable:
    @pytest.fixture
    def space(self):
        return AddressSpace(PhysicalMemory())

    def test_bind_lookup(self, space):
        table = PasidTable()
        table.bind(7, space)
        assert table.lookup(7) is space
        assert table.is_bound(7)
        assert len(table) == 1

    def test_double_bind_rejected(self, space):
        table = PasidTable()
        table.bind(7, space)
        with pytest.raises(ConfigurationError):
            table.bind(7, space)

    def test_lookup_unbound_rejected(self):
        with pytest.raises(ConfigurationError):
            PasidTable().lookup(3)

    def test_unbind(self, space):
        table = PasidTable()
        table.bind(7, space)
        table.unbind(7)
        assert not table.is_bound(7)
        with pytest.raises(ConfigurationError):
            table.unbind(7)
