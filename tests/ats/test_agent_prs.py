"""Unit tests for the Translation Agent and the Page Request Service."""

import pytest

from repro.ats.agent import TranslationAgent
from repro.ats.iotlb import IoTlb
from repro.ats.pasid import PasidTable
from repro.ats.prs import PAGE_REQUEST_CYCLES, PageRequestService
from repro.errors import ConfigurationError, TranslationFault
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import AddressSpace
from repro.hw.units import PAGE_SIZE


@pytest.fixture
def memory():
    return PhysicalMemory()


@pytest.fixture
def space(memory):
    return AddressSpace(memory)


@pytest.fixture
def agent(space):
    table = PasidTable()
    table.bind(1, space)
    return TranslationAgent(table)


class TestTranslationAgent:
    def test_translation_matches_page_table(self, agent, space):
        va = space.mmap(PAGE_SIZE)
        result = agent.translate(1, va + 0x40)
        assert result.physical_address == space.translate(va + 0x40)

    def test_first_translation_walks(self, agent, space):
        va = space.mmap(PAGE_SIZE)
        result = agent.translate(1, va)
        assert not result.iotlb_hit
        assert result.cycles >= space.walk_cycles
        assert agent.walks == 1

    def test_second_translation_hits_iotlb(self, agent, space):
        va = space.mmap(PAGE_SIZE)
        agent.translate(1, va)
        result = agent.translate(1, va)
        assert result.iotlb_hit
        assert result.cycles == agent.iotlb.lookup_cycles
        assert agent.walks == 1

    def test_unknown_pasid_rejected(self, agent):
        with pytest.raises(ConfigurationError):
            agent.translate(99, 0x1000)

    def test_unmapped_address_faults_without_handler(self, agent):
        with pytest.raises(TranslationFault):
            agent.translate(1, 0xDEAD_BEEF_000)

    def test_prs_handler_resolves_fault(self, space):
        table = PasidTable()
        table.bind(1, space)

        def handler(pasid, va, write):
            space.map_range(va & ~(PAGE_SIZE - 1), PAGE_SIZE)
            return True

        agent = TranslationAgent(table, prs=PageRequestService(handler))
        result = agent.translate(1, 0x7000_0000)
        assert result.faulted
        assert result.cycles >= PAGE_REQUEST_CYCLES
        assert agent.prs.resolved == 1

    def test_invalidate_pasid_forces_rewalk(self, agent, space):
        va = space.mmap(PAGE_SIZE)
        agent.translate(1, va)
        agent.invalidate_pasid(1)
        result = agent.translate(1, va)
        assert not result.iotlb_hit
        assert agent.walks == 2

    def test_write_to_readonly_page_faults(self, space):
        table = PasidTable()
        table.bind(1, space)
        agent = TranslationAgent(table)
        va = space.mmap(PAGE_SIZE, writable=False)
        agent.translate(1, va, write=False)
        agent.invalidate_pasid(1)
        with pytest.raises(TranslationFault):
            agent.translate(1, va, write=True)


class TestPageRequestService:
    def test_unhandled_fault_raises_and_logs(self):
        prs = PageRequestService()
        with pytest.raises(TranslationFault):
            prs.report(1, 0x1000, False, timestamp=5)
        assert prs.failed == 1
        assert len(prs.log) == 1
        assert prs.log[0].virtual_address == 0x1000

    def test_handler_returning_false_fails(self):
        prs = PageRequestService(lambda *args: False)
        with pytest.raises(TranslationFault):
            prs.report(1, 0x1000, True, timestamp=0)

    def test_resolved_fault_returns_stall_cycles(self):
        prs = PageRequestService(lambda *args: True)
        assert prs.report(1, 0x1000, False, timestamp=0) == PAGE_REQUEST_CYCLES
        assert prs.resolved == 1

    def test_set_handler_after_construction(self):
        prs = PageRequestService()
        prs.set_handler(lambda *args: True)
        assert prs.report(2, 0x2000, True, timestamp=1) == PAGE_REQUEST_CYCLES
