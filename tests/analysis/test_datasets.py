"""Tests for trace-dataset persistence."""

import numpy as np
import pytest

from repro.analysis.datasets import FORMAT_VERSION, TraceDataset


def sample_dataset(samples_per_class=4, slots=20, classes=("a.com", "b.com")):
    rng = np.random.default_rng(0)
    traces = rng.poisson(2.0, size=(samples_per_class * len(classes), slots))
    labels = np.repeat(np.arange(len(classes)), samples_per_class)
    return TraceDataset(
        traces=traces,
        labels=labels,
        class_names=classes,
        metadata={"sampler": "devtlb", "period_us": 10.0},
    )


class TestValidation:
    def test_rank_validated(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros(5), np.zeros(5), ("x",))

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((3, 4)), np.zeros(2), ("x",))

    def test_label_range_validated(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((2, 4)), np.array([0, 5]), ("x",))

    def test_class_counts(self):
        dataset = sample_dataset()
        assert dataset.class_counts() == {"a.com": 4, "b.com": 4}
        assert dataset.samples == 8
        assert dataset.slots == 20


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        dataset = sample_dataset()
        path = tmp_path / "wf.npz"
        dataset.save(path)
        loaded = TraceDataset.load(path)
        assert np.array_equal(loaded.traces, dataset.traces)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.class_names == dataset.class_names
        assert loaded.metadata == dataset.metadata

    def test_version_checked(self, tmp_path):
        import json

        dataset = sample_dataset()
        path = tmp_path / "wf.npz"
        np.savez_compressed(
            path,
            traces=dataset.traces,
            labels=dataset.labels,
            class_names=np.array(dataset.class_names, dtype=object),
            metadata=json.dumps({"format_version": FORMAT_VERSION + 1}),
        )
        with pytest.raises(ValueError):
            TraceDataset.load(path)


class TestCombinators:
    def test_subset_relabels(self):
        dataset = sample_dataset(classes=("a.com", "b.com", "c.com"))
        subset = dataset.subset([2, 0])
        assert subset.class_names == ("c.com", "a.com")
        assert set(np.unique(subset.labels)) == {0, 1}
        assert subset.samples == 8

    def test_merge(self):
        a = sample_dataset()
        b = sample_dataset()
        merged = TraceDataset.merge(a, b)
        assert merged.samples == a.samples + b.samples
        assert merged.class_names == a.class_names

    def test_merge_mismatched_classes_rejected(self):
        a = sample_dataset()
        b = sample_dataset(classes=("x.com", "y.com"))
        with pytest.raises(ValueError):
            TraceDataset.merge(a, b)

    def test_merge_mismatched_slots_rejected(self):
        a = sample_dataset(slots=20)
        b = sample_dataset(slots=30)
        with pytest.raises(ValueError):
            TraceDataset.merge(a, b)
