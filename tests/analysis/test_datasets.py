"""Tests for trace-dataset persistence."""

import numpy as np
import pytest

from repro.analysis.datasets import FORMAT_VERSION, TraceDataset
from repro.errors import DatasetCorruptionError


def sample_dataset(samples_per_class=4, slots=20, classes=("a.com", "b.com")):
    rng = np.random.default_rng(0)
    traces = rng.poisson(2.0, size=(samples_per_class * len(classes), slots))
    labels = np.repeat(np.arange(len(classes)), samples_per_class)
    return TraceDataset(
        traces=traces,
        labels=labels,
        class_names=classes,
        metadata={"sampler": "devtlb", "period_us": 10.0},
    )


class TestValidation:
    def test_rank_validated(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros(5), np.zeros(5), ("x",))

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((3, 4)), np.zeros(2), ("x",))

    def test_label_range_validated(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((2, 4)), np.array([0, 5]), ("x",))

    def test_class_counts(self):
        dataset = sample_dataset()
        assert dataset.class_counts() == {"a.com": 4, "b.com": 4}
        assert dataset.samples == 8
        assert dataset.slots == 20


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        dataset = sample_dataset()
        path = tmp_path / "wf.npz"
        dataset.save(path)
        loaded = TraceDataset.load(path)
        assert np.array_equal(loaded.traces, dataset.traces)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.class_names == dataset.class_names
        assert loaded.metadata == dataset.metadata

    def test_version_checked(self, tmp_path):
        import json

        dataset = sample_dataset()
        path = tmp_path / "wf.npz"
        np.savez_compressed(
            path,
            traces=dataset.traces,
            labels=dataset.labels,
            class_names=np.array(dataset.class_names, dtype=object),
            metadata=json.dumps({"format_version": FORMAT_VERSION + 1}),
        )
        with pytest.raises(ValueError):
            TraceDataset.load(path)

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        sample_dataset().save(tmp_path / "wf.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["wf.npz"]

    def test_suffix_normalized(self, tmp_path):
        path = sample_dataset().save(tmp_path / "wf")
        assert path.name == "wf.npz"
        TraceDataset.load(path)


class TestCorruptionDetection:
    def test_truncated_archive_detected(self, tmp_path):
        path = sample_dataset().save(tmp_path / "wf.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(DatasetCorruptionError, match="unreadable"):
            TraceDataset.load(path)

    def test_content_checksum_detects_tampered_traces(self, tmp_path):
        dataset = sample_dataset()
        path = dataset.save(tmp_path / "wf.npz")
        # Rewrite the archive with one flipped trace but the old checksum.
        with np.load(path, allow_pickle=True) as archive:
            metadata = str(archive["metadata"])
            traces = archive["traces"].copy()
            labels = archive["labels"]
            class_names = archive["class_names"]
        traces[0, 0] += 1
        np.savez_compressed(
            path, traces=traces, labels=labels, class_names=class_names,
            metadata=metadata,
        )
        with pytest.raises(DatasetCorruptionError, match="checksum mismatch"):
            TraceDataset.load(path)

    def test_missing_arrays_detected(self, tmp_path):
        path = tmp_path / "wf.npz"
        np.savez_compressed(path, traces=np.zeros((2, 4)))
        with pytest.raises(DatasetCorruptionError, match="missing arrays"):
            TraceDataset.load(path)

    def test_corruption_error_is_a_value_error(self):
        assert issubclass(DatasetCorruptionError, ValueError)


class TestPartialRecovery:
    def test_merge_many_folds_segments(self):
        merged = TraceDataset.merge_many([sample_dataset(), sample_dataset()])
        assert merged.samples == 16

    def test_merge_many_requires_input(self):
        with pytest.raises(ValueError):
            TraceDataset.merge_many([])

    def test_load_partial_skips_corrupt_segments(self, tmp_path):
        good = sample_dataset().save(tmp_path / "seg0.npz")
        bad = sample_dataset().save(tmp_path / "seg1.npz")
        bad.write_bytes(b"not a zip")
        merged = TraceDataset.load_partial(
            [good, bad, tmp_path / "missing.npz"]
        )
        assert merged.samples == 8

    def test_load_partial_strict_raises(self, tmp_path):
        good = sample_dataset().save(tmp_path / "seg0.npz")
        bad = sample_dataset().save(tmp_path / "seg1.npz")
        bad.write_bytes(b"not a zip")
        with pytest.raises(DatasetCorruptionError):
            TraceDataset.load_partial([good, bad], strict=True)

    def test_load_partial_nothing_loadable_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceDataset.load_partial([tmp_path / "missing.npz"])


class TestCombinators:
    def test_subset_relabels(self):
        dataset = sample_dataset(classes=("a.com", "b.com", "c.com"))
        subset = dataset.subset([2, 0])
        assert subset.class_names == ("c.com", "a.com")
        assert set(np.unique(subset.labels)) == {0, 1}
        assert subset.samples == 8

    def test_merge(self):
        a = sample_dataset()
        b = sample_dataset()
        merged = TraceDataset.merge(a, b)
        assert merged.samples == a.samples + b.samples
        assert merged.class_names == a.class_names

    def test_merge_mismatched_classes_rejected(self):
        a = sample_dataset()
        b = sample_dataset(classes=("x.com", "y.com"))
        with pytest.raises(ValueError):
            TraceDataset.merge(a, b)

    def test_merge_mismatched_slots_rejected(self):
        a = sample_dataset(slots=20)
        b = sample_dataset(slots=30)
        with pytest.raises(ValueError):
            TraceDataset.merge(a, b)
