"""Tests for statistics, keystroke evaluation, and reporting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.keystroke_eval import evaluate_keystrokes
from repro.analysis.reporting import format_histogram, format_series, format_table
from repro.analysis.stats import confidence_interval_95, geometric_mean, summarize
from repro.hw.units import DEFAULT_TSC_HZ


class TestStats:
    def test_geometric_mean_basic(self):
        assert geometric_mean(np.array([1.0, 4.0])) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            geometric_mean(np.array([]))

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=50)
        mean, h = confidence_interval_95(samples)
        assert mean == pytest.approx(samples.mean())
        assert 0 < h < 2.0

    def test_confidence_interval_needs_samples(self):
        with pytest.raises(ValueError):
            confidence_interval_95(np.array([1.0]))

    def test_ci_covers_population_mean_usually(self):
        rng = np.random.default_rng(1)
        covered = 0
        for _ in range(100):
            samples = rng.normal(5.0, 1.0, size=30)
            mean, h = confidence_interval_95(samples)
            covered += (mean - h) <= 5.0 <= (mean + h)
        assert covered >= 85

    def test_summarize(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s.mean == pytest.approx(2.0)
        assert s.median == 2.0
        assert s.count == 3
        with pytest.raises(ValueError):
            summarize(np.array([]))

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_geometric_leq_arithmetic(self, values):
        values = np.array(values)
        assert geometric_mean(values) <= values.mean() + 1e-6


class TestKeystrokeEvaluation:
    def _ms(self, *values):
        return np.array(values, dtype=np.float64) * 1e-3 * DEFAULT_TSC_HZ

    def test_perfect_detection(self):
        truth = self._ms(100, 300, 500)
        result = evaluate_keystrokes(truth, truth)
        assert result.f1 == pytest.approx(1.0)
        assert result.timestamp_std_ms == pytest.approx(0.0)

    def test_constant_offset_detection(self):
        truth = self._ms(100, 300, 500)
        detected = self._ms(102, 302, 502)
        result = evaluate_keystrokes(truth, detected)
        assert result.true_positives == 3
        assert result.timestamp_std_ms == pytest.approx(0.0, abs=1e-6)
        assert result.timestamp_mae_ms == pytest.approx(2.0)

    def test_missed_and_spurious_events(self):
        truth = self._ms(100, 300, 500, 700)
        detected = self._ms(101, 502, 9000)
        result = evaluate_keystrokes(truth, detected)
        assert result.true_positives == 2
        assert result.false_negatives == 2
        assert result.false_positives == 1
        assert 0 < result.f1 < 1

    def test_tolerance_window(self):
        truth = self._ms(100)
        detected = self._ms(100 + 50)  # outside the default 40 ms window
        result = evaluate_keystrokes(truth, detected)
        assert result.true_positives == 0
        assert result.false_positives == 1
        assert np.isnan(result.timestamp_std_ms)

    def test_one_detection_matches_one_truth_only(self):
        truth = self._ms(100, 110)
        detected = self._ms(105)
        result = evaluate_keystrokes(truth, detected)
        assert result.true_positives == 1
        assert result.false_negatives == 1

    def test_counts_properties(self):
        truth = self._ms(100, 300)
        detected = self._ms(100, 300, 900)
        result = evaluate_keystrokes(truth, detected)
        assert result.detections == 3
        assert result.ground_truth == 2


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_format_table_validates(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_format_histogram(self):
        text = format_histogram(np.array([1.0, 1.0, 2.0, 10.0]), bins=3, label="lat")
        assert text.startswith("lat")
        assert "#" in text
        with pytest.raises(ValueError):
            format_histogram(np.array([]))

    def test_format_series(self):
        text = format_series([1, 2], [10, 20], "capacity")
        assert "capacity" in text
        with pytest.raises(ValueError):
            format_series([1], [1, 2], "x")
