"""End-to-end service scenarios: clean, chaotic, drained, overloaded.

These run whole service lifecycles on the device-time loop (marked
``service``; run via ``scripts/run_service_smoke.sh``):

* a clean run completes every offer with balanced books and a
  bit-identical report on re-run (the determinism bar);
* a chaos storm over every ``SERVICE_SITES`` member plus the
  session-kill lane stays exactly accounted with no unacknowledged
  faults;
* a mid-run drain checkpoints the in-flight sessions and a resumed run
  finishes them — same logical total, no session lost or double-counted
  (restart-resume equivalence);
* a starved configuration opens the circuit and maps to the documented
  ``EXIT_OVERLOAD`` code.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import (
    InvariantViolation,
    ResumeMismatchError,
    ServiceError,
)
from repro.experiments.runner import EXIT_INTERRUPTED, EXIT_OK, EXIT_OVERLOAD
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.sites import SERVICE_SITES
from repro.service.app import CHECKPOINT_NAME, AttackService
from repro.service.config import ServiceConfig
from repro.service.loadgen import LoadConfig, build_schedule, make_session_killer

pytestmark = pytest.mark.service


def _config(**kwargs):
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("lanes", 2)
    kwargs.setdefault("collect_session_ids", True)
    return ServiceConfig(**kwargs)


def _schedule(sessions=20, **kwargs):
    kwargs.setdefault("seed", 3)
    return build_schedule(LoadConfig(sessions=sessions, **kwargs))


class TestCleanRun:
    def test_all_sessions_complete_with_balanced_books(self):
        report = AttackService(_config()).run(_schedule())
        acct = report.accounting
        assert report.status == "completed"
        assert report.exit_code == EXIT_OK
        assert acct.offered == 20
        assert acct.completed == 20
        assert acct.balances()
        assert report.unacknowledged_faults == {}
        assert report.latency_cycles["p50"] > 0
        assert report.latency_cycles["p99"] >= report.latency_cycles["p50"]

    def test_report_is_deterministic_across_runs(self):
        reports = [
            AttackService(_config()).run(_schedule()).to_json()
            for _ in range(2)
        ]
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_service_instance_is_one_shot(self):
        service = AttackService(_config())
        service.run(_schedule(sessions=2))
        with pytest.raises(ServiceError, match="runs once"):
            service.run(_schedule(sessions=2))


class TestLedgerIsLoadBearing:
    def test_duplicate_session_id_is_fatal_not_silent(self):
        # A schedule that replays a finished session's id must abort
        # the run with the checker's violation — not strand an offer
        # task and wedge (the failure mode of a service that resumes a
        # checkpoint AND re-offers the same generated schedule).
        schedule = _schedule(sessions=3)
        replay = replace(schedule[0], arrival_cycles=60_000_000)
        with pytest.raises(InvariantViolation, match="illegal transition"):
            AttackService(_config()).run(list(schedule) + [replay])


class TestChaosStorm:
    def test_every_service_site_plus_kill_lane_stays_accounted(self):
        config = _config(
            fault_plan=FaultPlan(
                seed=11,
                specs=tuple(
                    FaultSpec(
                        site=site,
                        probability=0.08,
                        magnitude_cycles=200_000,
                    )
                    for site in SERVICE_SITES
                ),
            ),
        )
        load = LoadConfig(
            sessions=40,
            seed=3,
            kill_probability=0.5,
            kill_interval_cycles=2_000_000,
        )
        service = AttackService(config)
        report = service.run(
            build_schedule(load), chaos=make_session_killer(load)
        )
        acct = report.accounting
        assert service.injector is not None
        assert service.injector.total_fired >= 1
        assert report.unacknowledged_faults == {}
        assert acct.balances()
        # The storm produced typed non-success outcomes, not silence.
        assert acct.terminal_total == acct.offered
        assert acct.completed < acct.offered


class TestDrainResume:
    @staticmethod
    def _drain_at(cycles):
        async def chaos(service):
            await service.loop.sleep_cycles(cycles)
            service.request_drain()

        return chaos

    def test_drain_then_resume_equals_uninterrupted(self, tmp_path):
        config = _config()
        reference = AttackService(_config()).run(_schedule(sessions=30))
        ref_ids = set(reference.session_ids.get("completed", ()))
        assert len(ref_ids) == 30

        first = AttackService(config).run(
            _schedule(sessions=30),
            chaos=self._drain_at(4_000_000),
            checkpoint_dir=tmp_path,
        )
        assert first.status == "drained"
        assert first.exit_code == EXIT_INTERRUPTED
        assert first.accounting.balances()
        assert first.checkpoint_path == str(tmp_path / CHECKPOINT_NAME)
        assert Path(first.checkpoint_path).exists()
        assert first.accounting.completed < 30

        second = AttackService(_config()).run(
            (), resume_from=first.checkpoint_path, checkpoint_dir=tmp_path
        )
        assert second.status == "completed"
        assert second.accounting.balances()
        assert second.accounting.resumed == first.accounting.checkpointed

        first_done = set(first.session_ids.get("completed", ()))
        second_done = set(second.session_ids.get("completed", ()))
        # No session lost, none double-counted, same logical total.
        assert first_done.isdisjoint(second_done)
        assert first_done | second_done == ref_ids
        assert (
            first.accounting.completed + second.accounting.completed == 30
        )

    def test_resume_refuses_config_drift(self, tmp_path):
        first = AttackService(_config()).run(
            _schedule(sessions=10),
            chaos=self._drain_at(1_000_000),
            checkpoint_dir=tmp_path,
        )
        assert first.status == "drained"
        drifted = _config(lanes=3)
        with pytest.raises(ResumeMismatchError):
            AttackService(drifted).run((), resume_from=first.checkpoint_path)

    def test_drain_rejections_are_typed(self, tmp_path):
        # Drain early enough that most of the schedule is still
        # unoffered: the tail is checkpointed as pending, not rejected.
        first = AttackService(_config()).run(
            _schedule(sessions=30, mean_interarrival_cycles=500_000.0),
            chaos=self._drain_at(1_000_000),
            checkpoint_dir=tmp_path,
        )
        assert first.status == "drained"
        manifest = json.loads(Path(first.checkpoint_path).read_text())
        assert (
            first.accounting.terminal_total
            + len(manifest["pending"])
            == 30
        )


class TestOverload:
    def test_starved_service_opens_circuit_and_exits_overloaded(self):
        config = _config(
            lanes=1,
            queue_capacity=4,
            offer_retries=1,
            max_concurrent_sessions=2,
            target_latency_cycles=100_000,
            degraded_pressure=0.4,
            shed_pressure=0.8,
            circuit_pressure=1.2,
            controller_tick_cycles=200_000,
            completion_floor=0.9,
        )
        report = AttackService(config).run(
            _schedule(sessions=80, mean_interarrival_cycles=2_000.0)
        )
        acct = report.accounting
        assert report.status == "overloaded"
        assert report.exit_code == EXIT_OVERLOAD
        assert acct.balances()
        # The degradation ladder actually engaged…
        assert any(
            mode == "circuit-open" for _, mode in report.mode_transitions
        )
        # …and overload surfaced as typed outcomes: circuit rejections
        # or sheds, never lost sessions.
        assert (
            acct.rejected.get("circuit-open", 0)
            + acct.rejected.get("queue-full", 0)
            + acct.shed
            > 0
        )
        assert acct.terminal_total == acct.offered
