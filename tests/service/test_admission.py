"""Admission-control unit tests and the token/queue property suite.

The Hypothesis sections pin the two algebraic invariants the
``ServiceStateChecker`` audits at runtime: conservation (tokens taken
never exceed tokens offered; every item put into a bounded queue comes
out exactly once) and non-negativity (no bucket or budget ever dips
below zero, under any interleaving of takes, refills, charges and
releases).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionRejected, ConfigurationError
from repro.faults import FaultPlan, FaultSite
from repro.invariants.service import ServiceStateChecker
from repro.service.admission import (
    AdmissionController,
    TenantBudget,
    TokenBucket,
)
from repro.service.config import ServiceConfig, TenantPolicy
from repro.service.loop import BoundedQueue, DeviceTimeLoop
from repro.service.session import SessionSpec


def _spec(sid="s0", tenant="t0", **kwargs):
    kwargs.setdefault("priority", 1)
    kwargs.setdefault("arrival_cycles", 0)
    return SessionSpec(session_id=sid, tenant=tenant, **kwargs)


def _controller(config=None, injector=None):
    config = config or ServiceConfig(seed=1, lanes=1)
    return AdmissionController(config, ServiceStateChecker(), injector)


class TestTokenBucket:
    def test_burst_then_rate_limit(self):
        bucket = TokenBucket(rate_per_mcycle=1.0, burst=2)
        assert bucket.take(0) == (True, 0)
        assert bucket.take(0) == (True, 0)
        ok, retry_after = bucket.take(0)
        assert not ok and retry_after > 0

    def test_retry_after_is_honest(self):
        bucket = TokenBucket(rate_per_mcycle=1.0, burst=1)
        bucket.take(0)
        ok, retry_after = bucket.take(0)
        assert not ok
        # Waiting exactly the hinted cycles yields a token.
        assert bucket.take(retry_after) == (True, 0)

    def test_refill_clamps_at_burst(self):
        bucket = TokenBucket(rate_per_mcycle=1000.0, burst=4)
        assert bucket.tokens(10**9) == 4.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_mcycle=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate_per_mcycle=1.0, burst=0)


class TestTenantBudget:
    def test_in_flight_cap_is_typed(self):
        budget = TenantBudget("t0", TenantPolicy(max_in_flight=1))
        budget.admit()
        with pytest.raises(AdmissionRejected) as info:
            budget.admit()
        assert info.value.reason == "tenant-quota"

    def test_charge_floors_at_zero(self):
        budget = TenantBudget(
            "t0", TenantPolicy(device_cycle_quota=100)
        )
        budget.admit()
        budget.charge(250)  # over-quota final round is legal
        assert budget.remaining_cycles == 0
        assert budget.cycles_charged == 250
        assert not budget.can_admit()  # but the next admission is refused

    def test_release_without_admit_raises(self):
        budget = TenantBudget("t0", TenantPolicy())
        with pytest.raises(ConfigurationError, match="release without"):
            budget.release()


class TestAdmissionController:
    def test_rate_limit_rejection_carries_retry_hint(self):
        controller = _controller(
            ServiceConfig(
                seed=1, lanes=1,
                admission_rate_per_mcycle=1.0, admission_burst=1,
            )
        )
        controller.admit(_spec("s0"), now=0)
        with pytest.raises(AdmissionRejected) as info:
            controller.admit(_spec("s1"), now=0)
        assert info.value.reason == "rate-limit"
        assert info.value.retry_after_cycles > 0
        assert controller.rejected_by_reason == {"rate-limit": 1}

    def test_tenant_quota_rejection(self):
        controller = _controller(
            ServiceConfig(
                seed=1, lanes=1,
                tenant_policy=TenantPolicy(max_in_flight=1),
            )
        )
        controller.admit(_spec("s0", tenant="t0"), now=0)
        with pytest.raises(AdmissionRejected) as info:
            controller.admit(_spec("s1", tenant="t0"), now=0)
        assert info.value.reason == "tenant-quota"
        # Another tenant is unaffected: isolation, not global refusal.
        controller.admit(_spec("s2", tenant="t1"), now=0)

    def test_release_returns_slot_and_charges_cycles(self):
        controller = _controller(
            ServiceConfig(
                seed=1, lanes=1,
                tenant_policy=TenantPolicy(max_in_flight=1),
            )
        )
        spec = _spec("s0")
        controller.admit(spec, now=0)
        controller.release(spec, cycles_used=1_000)
        assert controller.tenant("t0").cycles_charged == 1_000
        controller.admit(_spec("s1"), now=10**6)  # slot is free again

    def test_admission_flap_fault_is_typed_and_acknowledged(self):
        injector = (
            FaultPlan(seed=3)
            .with_site(FaultSite.SERVICE_ADMISSION_FLAP, probability=1.0)
            .build_injector()
        )
        injector.register_site(
            FaultSite.SERVICE_ADMISSION_FLAP, "repro.service.admission"
        )
        controller = _controller(injector=injector)
        with pytest.raises(AdmissionRejected) as info:
            controller.admit(_spec("s0"), now=0)
        assert info.value.reason == "admission-flap"
        assert injector.total_fired == 1
        from repro.experiments.guard import _unacknowledged

        assert not _unacknowledged(injector)

    def test_resumed_sessions_skip_bucket_and_flap(self):
        injector = (
            FaultPlan(seed=3)
            .with_site(FaultSite.SERVICE_ADMISSION_FLAP, probability=1.0)
            .build_injector()
        )
        injector.register_site(
            FaultSite.SERVICE_ADMISSION_FLAP, "repro.service.admission"
        )
        controller = _controller(
            ServiceConfig(
                seed=1, lanes=1,
                admission_rate_per_mcycle=1.0, admission_burst=1,
            ),
            injector=injector,
        )
        # A fresh offer meets the armed flap site every time...
        with pytest.raises(AdmissionRejected) as info:
            controller.admit(_spec("s0"), now=0)
        assert info.value.reason == "admission-flap"
        fired_before = injector.total_fired
        # ...but a resumed re-entry skips bucket AND flap: it already
        # paid both in its first life.  Only the tenant slot is taken.
        budget = controller.admit(_spec("s1"), now=0, resumed=True)
        assert budget.in_flight == 1
        assert injector.total_fired == fired_before


# ----------------------------------------------------------------------
# Property suites
# ----------------------------------------------------------------------
class TestTokenBucketProperties:
    @given(
        st.integers(min_value=1, max_value=2000),  # rate per mcycle
        st.integers(min_value=1, max_value=64),  # burst
        st.lists(
            st.integers(min_value=0, max_value=200_000),
            min_size=1,
            max_size=200,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_tokens_never_negative_and_takes_conserved(
        self, rate, burst, gaps
    ):
        bucket = TokenBucket(rate_per_mcycle=float(rate), burst=burst)
        now = 0
        granted = 0
        for gap in gaps:
            now += gap
            ok, retry_after = bucket.take(now)
            granted += int(ok)
            assert bucket.tokens(now) >= 0.0
            assert bucket.tokens(now) <= float(burst)
            if not ok:
                assert retry_after > 0
        # Conservation: grants never exceed burst + everything accrued.
        accrued = now * (rate / 1_000_000.0)
        assert granted <= burst + accrued + 1e-9

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_retry_after_hint_always_yields_a_token(self, rate, burst, now):
        bucket = TokenBucket(rate_per_mcycle=float(rate), burst=burst)
        for _ in range(burst):
            bucket.take(now)
        ok, retry_after = bucket.take(now)
        if not ok:
            assert bucket.take(now + retry_after) == (True, 0)


class TestTenantBudgetProperties:
    @given(
        st.integers(min_value=1, max_value=10**6),  # quota
        st.integers(min_value=1, max_value=32),  # cap
        st.lists(
            st.tuples(
                st.sampled_from(["admit", "release", "charge"]),
                st.integers(min_value=0, max_value=10**5),
            ),
            max_size=200,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_never_negative_under_any_interleaving(
        self, quota, cap, ops
    ):
        budget = TenantBudget(
            "t", TenantPolicy(device_cycle_quota=quota, max_in_flight=cap)
        )
        for op, arg in ops:
            if op == "admit":
                try:
                    budget.admit()
                except AdmissionRejected:
                    pass
            elif op == "release":
                if budget.in_flight > 0:
                    budget.release()
            else:
                budget.charge(arg)
            assert 0 <= budget.in_flight <= cap
            assert budget.remaining_cycles >= 0


class TestBoundedQueueProperties:
    @given(
        st.integers(min_value=1, max_value=16),  # capacity
        st.lists(
            st.sampled_from(["put", "get"]), min_size=1, max_size=300
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_bound_under_any_schedule(self, capacity, ops):
        async def main(loop):
            queue = BoundedQueue(loop, capacity)
            offered = accepted = 0
            taken = []
            for op in ops:
                if op == "put":
                    offered += 1
                    accepted += int(queue.try_put(offered))
                elif len(queue):
                    taken.append(await queue.get())
                assert 0 <= len(queue) <= capacity
            remaining = queue.drain()
            # Every accepted item leaves exactly once, in FIFO order.
            assert len(taken) + len(remaining) == accepted
            assert taken + remaining == sorted(taken + remaining)
            assert queue.high_water <= capacity
            return True

        loop = DeviceTimeLoop()
        assert loop.run(main(loop))
