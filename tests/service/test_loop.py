"""Unit tests for the device-time loop and its primitives.

The loop is the service's only clock, so these run in tier-1: wakeup
ordering must be a pure function of the schedule, cancellation must
never wedge or time-travel the loop, and every primitive must preserve
the busy-count accounting that lets virtual time advance.
"""

import pytest

from repro.errors import ServiceError
from repro.service.loop import (
    BoundedQueue,
    DeviceTimeLoop,
    VirtualEvent,
    VirtualLock,
)


def drive(main_factory, **loop_kwargs):
    """Build a loop, run ``main_factory(loop)``, return (loop, result)."""
    loop = DeviceTimeLoop(**loop_kwargs)
    result = loop.run(main_factory(loop))
    return loop, result


class TestVirtualTime:
    def test_sleep_advances_virtual_time_exactly(self):
        async def main(loop):
            await loop.sleep_cycles(1_000)
            return loop.now

        loop, result = drive(main)
        assert result == 1_000
        assert loop.now == 1_000

    def test_start_cycles_offsets_the_clock(self):
        async def main(loop):
            await loop.sleep_cycles(5)
            return loop.now

        _, result = drive(main, start_cycles=10_000)
        assert result == 10_005

    def test_wakeup_order_is_due_time_then_insertion(self):
        order = []

        async def sleeper(loop, due, tag):
            await loop.sleep_until(due)
            order.append(tag)

        async def main(loop):
            # Same due time: insertion order breaks the tie.
            loop.spawn(sleeper(loop, 200, "b1"))
            loop.spawn(sleeper(loop, 100, "a"))
            loop.spawn(sleeper(loop, 200, "b2"))
            await loop.sleep_until(300)

        drive(main)
        assert order == ["a", "b1", "b2"]

    def test_schedule_is_deterministic_across_runs(self):
        async def workload(loop, log):
            async def worker(i):
                for step in range(3):
                    await loop.sleep_cycles(10 * (i + 1))
                    log.append((loop.now, i, step))

            tasks = [loop.spawn(worker(i)) for i in range(5)]
            for task in tasks:
                await loop.join(task)

        logs = []
        for _ in range(2):
            log = []
            loop = DeviceTimeLoop()
            loop.run(workload(loop, log))
            logs.append(log)
        assert logs[0] == logs[1]

    def test_zero_sleep_still_yields(self):
        ran = []

        async def other(loop):
            ran.append("other")

        async def main(loop):
            loop.spawn(other(loop))
            await loop.sleep_cycles(0)
            return list(ran)

        _, result = drive(main)
        assert result == ["other"]


class TestCancellation:
    def test_cancelling_a_parked_task_does_not_wedge(self):
        async def parked(loop):
            await loop.sleep_until(10**12)

        async def main(loop):
            task = loop.spawn(parked(loop))
            await loop.sleep_cycles(100)
            task.cancel()
            await loop.join(task)
            # The dead wakeup must not drag virtual time to 10**12.
            await loop.sleep_cycles(100)
            return loop.now

        _, result = drive(main)
        assert result == 200

    def test_cancelled_event_waiter_is_pruned(self):
        async def main(loop):
            event = VirtualEvent(loop)
            waiter = loop.spawn(event.wait())
            await loop.sleep_cycles(10)
            waiter.cancel()
            await loop.join(waiter)
            assert waiter.cancelled()
            return loop.now

        _, result = drive(main)
        assert result == 10

    def test_join_does_not_reraise(self):
        async def poisoned(loop):
            raise ValueError("contained")

        async def main(loop):
            task = loop.spawn(poisoned(loop))
            await loop.join(task)  # must not raise here
            return type(task.exception()).__name__

        _, result = drive(main)
        assert result == "ValueError"


class TestFailureModes:
    def test_foreign_park_is_detected_as_deadlock(self):
        import asyncio

        async def foreign_wait(loop):
            # Parks on a future no loop primitive will ever resolve.
            # _park is never used, so the busy counter still counts the
            # task runnable and the wedge detector fires.
            await asyncio.get_running_loop().create_future()

        async def main(loop):
            loop.spawn(foreign_wait(loop))
            await loop.sleep_cycles(10**9)

        loop = DeviceTimeLoop()
        with pytest.raises(ServiceError, match="wedged"):
            loop.run(main(loop))

    def test_no_wakeup_deadlock_is_detected(self):
        async def waits_forever(loop):
            # Parks correctly (busy drops) but nothing will ever set
            # the event: empty heap + zero busy = declared deadlock.
            await VirtualEvent(loop).wait()

        loop = DeviceTimeLoop()
        with pytest.raises(ServiceError, match="deadlock"):
            loop.run(waits_forever(loop))

    def test_spawn_outside_run_raises(self):
        loop = DeviceTimeLoop()

        async def never():  # pragma: no cover - never awaited
            pass

        coro = never()
        with pytest.raises(ServiceError, match="outside run"):
            loop.spawn(coro)
        coro.close()


class TestEventAndLock:
    def test_event_wakes_all_waiters_at_set_instant(self):
        woken = []

        async def waiter(loop, event, tag):
            await event.wait()
            woken.append((tag, loop.now))

        async def main(loop):
            event = VirtualEvent(loop)
            for tag in ("a", "b"):
                loop.spawn(waiter(loop, event, tag))
            await loop.sleep_cycles(500)
            event.set()
            await loop.sleep_cycles(1)

        drive(main)
        assert woken == [("a", 500), ("b", 500)]

    def test_event_clear_reparks_new_waiters(self):
        async def main(loop):
            event = VirtualEvent(loop)
            event.set()
            await event.wait()  # passes immediately
            event.clear()
            waiter = loop.spawn(event.wait())
            await loop.sleep_cycles(10)
            assert not waiter.done()
            event.set()
            await loop.join(waiter)
            return True

        _, result = drive(main)
        assert result is True

    def test_lock_is_fifo_and_exclusive(self):
        order = []

        async def holder(loop, lock, tag, hold):
            async with lock:
                order.append(tag)
                await loop.sleep_cycles(hold)

        async def main(loop):
            lock = VirtualLock(loop)
            tasks = [
                loop.spawn(holder(loop, lock, tag, 100))
                for tag in ("first", "second", "third")
            ]
            for task in tasks:
                await loop.join(task)
            assert not lock.locked
            assert lock.waiting == 0

        drive(main)
        assert order == ["first", "second", "third"]

    def test_release_unlocked_lock_raises(self):
        async def main(loop):
            lock = VirtualLock(loop)
            with pytest.raises(ServiceError, match="unlocked"):
                lock.release()
            return True

        drive(main)


class TestBoundedQueue:
    def test_try_put_reports_backpressure_without_blocking(self):
        async def main(loop):
            queue = BoundedQueue(loop, capacity=2)
            assert queue.try_put(1) and queue.try_put(2)
            assert not queue.try_put(3)  # the backpressure signal
            assert len(queue) == 2
            assert queue.high_water == 2
            return await queue.get()

        _, result = drive(main)
        assert result == 1

    def test_put_parks_until_a_get_frees_a_slot(self):
        async def main(loop):
            queue = BoundedQueue(loop, capacity=1)
            await queue.put("a")
            putter = loop.spawn(queue.put("b"))
            await loop.sleep_cycles(10)
            assert not putter.done()  # backpressured
            assert await queue.get() == "a"
            await loop.join(putter)
            return await queue.get()

        _, result = drive(main)
        assert result == "b"

    def test_get_parks_until_an_item_arrives(self):
        async def main(loop):
            queue = BoundedQueue(loop, capacity=4)
            getter = loop.spawn(queue.get())
            await loop.sleep_cycles(50)
            assert not getter.done()
            queue.try_put("late")
            await loop.join(getter)
            return getter.result()

        _, result = drive(main)
        assert result == "late"

    def test_drain_empties_fifo_order(self):
        async def main(loop):
            queue = BoundedQueue(loop, capacity=8)
            for i in range(5):
                queue.try_put(i)
            drained = queue.drain()
            assert len(queue) == 0
            return drained

        _, result = drive(main)
        assert result == [0, 1, 2, 3, 4]

    def test_zero_capacity_rejected(self):
        loop = DeviceTimeLoop()
        with pytest.raises(ServiceError, match="capacity"):
            BoundedQueue(loop, capacity=0)
