"""The handled-or-detected matrix: no fault site is silently absorbed.

Every site in :mod:`repro.faults.sites` is injected alone against a
monitored workload.  The contract each cell must satisfy:

* the site actually fired, and
* the fault either surfaced as a handled pipeline outcome (a typed
  :class:`~repro.errors.ReproError`, an error-status completion record,
  or an acknowledged effect) or tripped a replayable
  :class:`~repro.errors.InvariantViolation` — never success with an
  unacknowledged fault on the ledger.

The same audit is what :func:`repro.experiments.guard.run_guarded_trials`
applies per trial, so the matrix doubles as a regression net: a new site
added without wiring :meth:`FaultInjector.acknowledge` at its effect
point fails here before it can silently rot a chaos figure.
"""

import functools

import pytest

from repro.dsa.descriptor import make_memcpy, make_noop
from repro.errors import (
    InvariantViolation,
    ReproError,
    UnhandledFaultError,
)
from repro.experiments.checkpoint import CheckpointJournal
from repro.experiments.guard import _unacknowledged, run_guarded_trials
from repro.experiments.runner import ExperimentPlan, TrialSpec, run_experiment
from repro.faults import FaultPlan, FaultSite
from repro.faults.plan import FaultSpec
from repro.faults.sites import (
    DEVICE_SITES,
    POOL_SITES,
    SERVICE_SITES,
    TIMELINE_SITES,
)
from repro.hw.clock import TscClock
from repro.invariants import InvariantMonitor
from repro.virt.scheduler import Timeline

from tests.conftest import build_host

pytestmark = pytest.mark.chaos


def _injector(site, **kwargs):
    kwargs.setdefault("probability", 1.0)
    return FaultPlan(seed=5).with_site(site, **kwargs).build_injector()


def _monitored_host(**kwargs):
    host = build_host(**kwargs)
    monitor = InvariantMonitor(mode="strict")
    monitor.attach_device(host.device)
    return host, monitor


def _run_device_site(site, **site_kwargs):
    """One monitored workload under *site*; returns (injector, handled)."""
    host, monitor = _monitored_host()
    injector = _injector(site, **site_kwargs)
    injector.attach_device(host.device)
    proc = host.new_process()
    src = proc.buffer(4096)
    dst = proc.buffer(4096)
    comp = proc.comp_record()
    handled = 0
    for _ in range(3):
        try:
            proc.portal.submit_wait(
                make_memcpy(proc.pasid, src, dst, 256, comp),
                timeout_cycles=500_000,
            )
        except ReproError:
            handled += 1
    monitor.check_all()
    return injector, handled


DEVICE_MATRIX = {
    FaultSite.SUBMISSION_DELAY: {"magnitude_cycles": 10_000},
    FaultSite.SUBMISSION_DROP: {},
    FaultSite.COMPLETION_ERROR: {},
    FaultSite.ENGINE_STALL: {"magnitude_cycles": 20_000},
    FaultSite.DEVTLB_INVALIDATE: {},
    FaultSite.IOTLB_INVALIDATE: {},
    FaultSite.WQ_DRAIN: {},
    FaultSite.PRS_DROP: {},
}


class TestMatrixCoversEverySite:
    def test_registry_is_fully_enumerated(self):
        """A new FaultSite must join this matrix to pass.

        Pool sites live in their own matrix
        (``tests/chaos/test_pool_fault_matrix.py``) because they fire
        inside pool workers, not inside device trials; service sites
        fire inside the session service's control plane and are covered
        by :class:`TestServiceFaultMatrix` below.
        """
        assert set(DEVICE_MATRIX) == set(DEVICE_SITES)
        assert set(SERVICE_MATRIX) == set(SERVICE_SITES)
        assert (
            set(DEVICE_SITES)
            | set(TIMELINE_SITES)
            | set(POOL_SITES)
            | set(SERVICE_SITES)
            == set(FaultSite)
        )

    @pytest.mark.parametrize(
        "site", sorted(DEVICE_MATRIX, key=lambda s: s.value)
    )
    def test_device_site_is_handled_or_detected(self, site):
        injector, handled = _run_device_site(site, **DEVICE_MATRIX[site])
        if site is FaultSite.PRS_DROP:
            # Descriptors never fault on pre-mapped buffers, so the PRS
            # hook has no opportunity here; its cell runs below.
            pytest.skip("PRS_DROP needs a faulting translation; see below")
        assert injector.total_fired >= 1, f"{site.value} never fired"
        gaps = _unacknowledged(injector)
        assert not gaps or handled > 0, (
            f"{site.value} was absorbed silently: fired {injector.total_fired},"
            f" unacknowledged {gaps}, no handled outcome"
        )

    def test_prs_drop_surfaces_as_handled_page_fault(self):
        """PRS_DROP cell: a faulting walk under drop yields an error
        record (handled outcome) and an acknowledged ledger."""
        from repro.dsa.completion import CompletionStatus

        host, monitor = _monitored_host()
        injector = _injector(FaultSite.PRS_DROP)
        injector.attach_device(host.device)
        # The OS-side handler would resolve the fault; the injected drop
        # loses the page request first.
        host.device.prs.set_handler(lambda pasid, va, write: True)
        proc = host.new_process()
        src = proc.buffer(4096)
        dst = proc.buffer(4096)
        comp = proc.comp_record()
        proc.space.unmap(src)  # force a faulting walk on the source
        ticket = proc.portal.submit_wait(
            make_memcpy(proc.pasid, src, dst, 256, comp),
            timeout_cycles=500_000,
        )
        assert ticket.record.status is CompletionStatus.PAGE_FAULT
        assert injector.total_fired >= 1
        assert not _unacknowledged(injector)
        monitor.check_all()

    def test_preemption_is_acknowledged(self):
        clock = TscClock()
        timeline = Timeline(clock)
        injector = _injector(FaultSite.PREEMPTION, magnitude_cycles=5_000)
        injector.attach_timeline(timeline)
        timeline.idle_until(50_000)
        assert injector.total_fired >= 1
        assert not _unacknowledged(injector)
        assert timeline.preemptions >= 1


class TestGuardAudit:
    def test_unacknowledged_fault_fails_the_trial(self):
        """A fired-but-never-acknowledged fault converts a green trial
        into a structured UnhandledFaultError — never a silent pass."""
        injector = _injector(FaultSite.ENGINE_STALL)

        def trial():
            injector.fire(FaultSite.ENGINE_STALL, timestamp=0, engine_id=0)
            return "looks fine"

        run = run_guarded_trials(
            [trial], min_successes=0, fault_injector=injector
        )
        assert run.results == ()
        assert len(run.failures) == 1
        error = run.failures[0].error
        assert isinstance(error, UnhandledFaultError)
        assert error.unacknowledged == {FaultSite.ENGINE_STALL.value: 1}
        assert "absorbed" in str(error)

    def test_acknowledged_fault_keeps_the_trial_green(self):
        injector = _injector(FaultSite.ENGINE_STALL)

        def trial():
            event = injector.fire(
                FaultSite.ENGINE_STALL, timestamp=0, engine_id=0
            )
            injector.acknowledge(event, action="engine-stalled")
            return "ok"

        run = run_guarded_trials(
            [trial], min_successes=1, fault_injector=injector
        )
        assert run.results == ("ok",)
        assert not run.failures

    def test_audit_windows_are_per_trial(self):
        """A static injector's pre-trial history must not leak into the
        next trial's audit window."""
        injector = _injector(FaultSite.ENGINE_STALL)
        event = injector.fire(FaultSite.ENGINE_STALL, timestamp=0, engine_id=0)
        assert event is not None  # unacknowledged history before any trial

        run = run_guarded_trials(
            [lambda: "ok"], min_successes=1, fault_injector=injector
        )
        assert run.results == ("ok",)

    def test_invariant_violation_always_propagates(self):
        violation = InvariantViolation(
            message="synthetic", invariant="wq-credits", seed=3
        )

        def trial():
            raise violation

        with pytest.raises(InvariantViolation) as info:
            run_guarded_trials([trial], catch=(ReproError,), min_successes=0)
        assert info.value is violation

    def test_violation_from_monitored_trial_is_replayable(self):
        """End to end: a trial that corrupts monitored state surfaces as
        a replayable violation through the guard."""
        host, monitor = _monitored_host()
        monitor.seed = 17
        monitor.repro_hint = "PYTHONPATH=src python -m repro.invariants.soak --seed 17"
        proc = host.new_process()
        comp = proc.comp_record()

        def trial():
            proc.portal.submit_wait(make_noop(proc.pasid, comp))
            host.device.queue_space.get(0)._outstanding += 1  # the "bug"
            proc.portal.submit_wait(make_noop(proc.pasid, comp))

        with pytest.raises(InvariantViolation) as info:
            run_guarded_trials([trial], min_successes=0)
        violation = info.value
        assert violation.invariant == "wq-credits"
        assert violation.seed == 17
        assert violation.events, "event window must be populated"
        assert violation.snapshot.get("wq0.occupancy") is not None
        assert "--seed 17" in violation.repro


def _service_report(site, probability=1.0, sessions=10, **spec_kwargs):
    """One small service run with *site* armed; returns (service, report)."""
    from repro.service.app import AttackService
    from repro.service.config import ServiceConfig
    from repro.service.loadgen import LoadConfig, build_schedule

    config = ServiceConfig(
        seed=11,
        lanes=2,
        fault_plan=FaultPlan(
            seed=11,
            specs=(
                FaultSpec(
                    site=site, probability=probability, **spec_kwargs
                ),
            ),
        ),
    )
    service = AttackService(config)
    report = service.run(
        build_schedule(LoadConfig(sessions=sessions, seed=3))
    )
    return service, report


#: Service-site cells: per-site arming plus the handled-outcome probe.
#: Each probe returns truthy evidence that the fault surfaced as a
#: *typed, accounted* outcome — never a silent absorption.
SERVICE_MATRIX = {
    # Every round boundary stalls; the stall is acknowledged into the
    # deadline budget and sessions still terminate with balanced books.
    FaultSite.SERVICE_SESSION_STALL: {
        "kwargs": {"probability": 0.5, "magnitude_cycles": 200_000},
        "handled": lambda r: r.accounting.terminal_total
        == r.accounting.offered,
    },
    # Every admission attempt flaps: all sessions exit through the
    # typed ``admission-flap`` rejection lane.
    FaultSite.SERVICE_ADMISSION_FLAP: {
        "kwargs": {"probability": 1.0},
        "handled": lambda r: r.accounting.rejected.get("admission-flap", 0)
        > 0,
    },
    # Every lane hand-out revokes: lanes quarantine and rebuild, and
    # sessions exhaust their retry budget into typed failures.
    FaultSite.SERVICE_DEVICE_REVOKE: {
        "kwargs": {"probability": 1.0},
        "handled": lambda r: r.lane_stats["lanes_rebuilt"] > 0
        and r.accounting.failed_total > 0,
    },
}


@pytest.mark.service
class TestServiceFaultMatrix:
    """Handled-or-detected rows for the session service's control-plane
    sites: the site fires on the service injector, the effect surfaces
    as a typed accounted outcome, and the final ledger carries no
    unacknowledged events (the same audit ``_finalize`` folds into
    every service report)."""

    @pytest.mark.parametrize(
        "site", sorted(SERVICE_MATRIX, key=lambda s: s.value)
    )
    def test_service_site_is_handled_or_detected(self, site):
        cell = SERVICE_MATRIX[site]
        service, report = _service_report(site, **cell["kwargs"])
        assert service.injector is not None
        assert service.injector.total_fired >= 1, f"{site.value} never fired"
        assert report.unacknowledged_faults == {}, (
            f"{site.value} left unacknowledged events on the ledger"
        )
        assert cell["handled"](report), (
            f"{site.value} fired but produced no typed handled outcome"
        )
        assert report.accounting.balances()


class TestChaosSoakComposition:
    def test_faulted_system_under_strict_monitor_stays_accountable(self):
        """A multi-site chaos storm with the monitor attached: every
        fired fault is either handled or acknowledged, and the final
        audit is clean — chaos never corrupts conserved state."""
        host, monitor = _monitored_host()
        plan = (
            FaultPlan(seed=23)
            .with_site(FaultSite.SUBMISSION_DELAY, probability=0.3,
                       magnitude_cycles=2_000)
            .with_site(FaultSite.COMPLETION_ERROR, probability=0.2)
            .with_site(FaultSite.ENGINE_STALL, probability=0.2,
                       magnitude_cycles=5_000)
            .with_site(FaultSite.DEVTLB_INVALIDATE, probability=0.2)
            .with_site(FaultSite.WQ_DRAIN, probability=0.05)
        )
        injector = plan.build_injector()
        injector.attach_device(host.device)
        proc = host.new_process()
        src = proc.buffer(4096)
        dst = proc.buffer(4096)
        comp = proc.comp_record()
        handled = 0
        for i in range(60):
            try:
                proc.portal.submit_wait(
                    make_memcpy(proc.pasid, src, dst, 256, comp),
                    timeout_cycles=500_000,
                )
            except ReproError:
                handled += 1
        assert injector.total_fired > 0
        assert not _unacknowledged(injector)
        monitor.check_all()

# ----------------------------------------------------------------------
# The matrix under the sharded executor
# ----------------------------------------------------------------------
# These trial functions are module-level so spawn workers can rebuild the
# plan (the factory pickles by reference).  Inside a worker the injector
# comes from the per-process ``current_fault_injector()``, built from the
# plan's ``fault_plan`` — the audit therefore stays inside the shard that
# fired the fault.


def _parallel_device_trial() -> dict:
    """The device-site workload of ``_run_device_site``, shard-resident."""
    from repro.experiments.parallel import current_fault_injector

    injector = current_fault_injector()
    assert injector is not None, "must run under the sharded executor"
    host, monitor = _monitored_host()
    injector.attach_device(host.device)
    proc = host.new_process()
    src = proc.buffer(4096)
    dst = proc.buffer(4096)
    comp = proc.comp_record()
    handled = 0
    last_error: ReproError | None = None
    for _ in range(3):
        try:
            proc.portal.submit_wait(
                make_memcpy(proc.pasid, src, dst, 256, comp),
                timeout_cycles=500_000,
            )
        except ReproError as exc:
            handled += 1
            last_error = exc
    monitor.check_all()
    gaps = _unacknowledged(injector)
    if gaps and last_error is not None:
        # The fault surfaced on the error path: re-raise it so the merged
        # journal records the *typed* handled outcome (the serial matrix's
        # "no gaps or handled > 0" arm).
        raise last_error
    return {"fired": injector.total_fired, "handled": handled, "gaps": gaps}


def _parallel_prs_trial() -> dict:
    """PRS_DROP cell: a faulting walk under drop, shard-resident."""
    from repro.dsa.completion import CompletionStatus
    from repro.experiments.parallel import current_fault_injector

    injector = current_fault_injector()
    assert injector is not None, "must run under the sharded executor"
    host, monitor = _monitored_host()
    injector.attach_device(host.device)
    host.device.prs.set_handler(lambda pasid, va, write: True)
    proc = host.new_process()
    src = proc.buffer(4096)
    dst = proc.buffer(4096)
    comp = proc.comp_record()
    proc.space.unmap(src)
    ticket = proc.portal.submit_wait(
        make_memcpy(proc.pasid, src, dst, 256, comp),
        timeout_cycles=500_000,
    )
    monitor.check_all()
    handled = 1 if ticket.record.status is CompletionStatus.PAGE_FAULT else 0
    return {
        "fired": injector.total_fired,
        "handled": handled,
        "gaps": _unacknowledged(injector),
    }


def _parallel_preemption_trial() -> dict:
    """PREEMPTION cell: idle a timeline under the shard's injector."""
    from repro.experiments.parallel import current_fault_injector

    injector = current_fault_injector()
    assert injector is not None, "must run under the sharded executor"
    clock = TscClock()
    timeline = Timeline(clock)
    injector.attach_timeline(timeline)
    timeline.idle_until(50_000)
    return {
        "fired": injector.total_fired,
        "handled": timeline.preemptions,
        "gaps": _unacknowledged(injector),
    }


_PARALLEL_SITE_KWARGS = {
    **DEVICE_MATRIX,
    FaultSite.PREEMPTION: {"magnitude_cycles": 5_000},
}


def _passthrough_finalize(results: dict) -> dict:
    return dict(results)


def _parallel_matrix_plan(site_value: str) -> ExperimentPlan:
    """A two-trial plan (one per shard at ``workers=2``) injecting one
    site at probability 1.0 via the plan's own fault plan."""
    site = FaultSite(site_value)
    if site is FaultSite.PRS_DROP:
        fn = _parallel_prs_trial
    elif site is FaultSite.PREEMPTION:
        fn = _parallel_preemption_trial
    else:
        fn = _parallel_device_trial
    return ExperimentPlan(
        name=f"chaos-parallel-{site.value}",
        seed=5,
        config={"site": site.value, "workers": 2},
        trials=(
            TrialSpec(key=f"{site.value}/shard/0", fn=fn),
            TrialSpec(key=f"{site.value}/shard/1", fn=fn),
        ),
        finalize=_passthrough_finalize,
        min_successes=0,
        fault_plan=FaultPlan(seed=5).with_site(
            site, probability=1.0, **_PARALLEL_SITE_KWARGS.get(site, {})
        ),
    )


def _absorbing_trial() -> str:
    """Fires the shard injector's stall and never acknowledges it."""
    from repro.experiments.parallel import current_fault_injector

    injector = current_fault_injector()
    injector.fire(FaultSite.ENGINE_STALL, timestamp=0, engine_id=0)
    return "looks fine"


def _absorbing_plan() -> ExperimentPlan:
    return ExperimentPlan(
        name="chaos-parallel-absorbed",
        seed=5,
        config={"case": "absorbed"},
        trials=(TrialSpec(key="absorbed/0", fn=_absorbing_trial),),
        finalize=_passthrough_finalize,
        min_successes=0,
        fault_plan=FaultPlan(seed=5).with_site(
            FaultSite.ENGINE_STALL, probability=1.0
        ),
    )


@pytest.mark.parallel
class TestParallelFaultMatrix:
    """The handled-or-detected contract holds across the process
    boundary: every site fired inside a 2-worker sharded run either
    surfaces as a typed journaled outcome or fails its trial — never a
    green trial over an unacknowledged ledger."""

    @pytest.mark.parametrize(
        "site",
        sorted(
            set(FaultSite) - set(POOL_SITES) - set(SERVICE_SITES),
            key=lambda s: s.value,
        ),
    )
    def test_site_is_handled_or_detected_in_sharded_run(self, site, tmp_path):
        # Pool sites fire inside pool workers, not inside trials; their
        # handled-or-detected coverage is test_pool_fault_matrix.py.
        # Service sites fire inside the session service's control plane;
        # their coverage is TestServiceFaultMatrix above.
        run_experiment(
            _parallel_matrix_plan(site.value),
            run_dir=tmp_path,
            workers=2,
            executor="spawn",
            plan_source=functools.partial(_parallel_matrix_plan, site.value),
        )
        journal = CheckpointJournal.load(tmp_path)
        entries = list(journal.entries())
        assert len(entries) == 2, "both shards must journal their trial"
        for entry in entries:
            if entry.ok:
                payload = journal.load_payload(entry.key)
                assert payload["fired"] >= 1, (
                    f"{site.value} never fired in {entry.key}"
                )
                assert not payload["gaps"], (
                    f"{site.value} passed {entry.key} with an "
                    f"unacknowledged ledger {payload['gaps']}"
                )
            else:
                # This workload cannot fail without injection, so a typed
                # failure *is* evidence the site fired and was detected.
                assert entry.error_type, f"untyped failure in {entry.key}"

    def test_absorbed_worker_fault_fails_trial_in_merged_journal(
        self, tmp_path
    ):
        outcome = run_experiment(
            _absorbing_plan(),
            run_dir=tmp_path,
            workers=2,
            executor="spawn",
            plan_source=_absorbing_plan,
        )
        assert outcome.failed == 1
        entry = CheckpointJournal.load(tmp_path).get("absorbed/0")
        assert entry is not None and not entry.ok
        assert entry.error_type == "UnhandledFaultError"
        assert "absorbed" in (entry.error or "")
