"""The hardened pipeline layers: retry, recalibration, framing, guards."""

import numpy as np
import pytest

from repro.core.calibration import (
    CalibrationPolicy,
    ThresholdMonitor,
    calibrate_threshold,
    calibrate_with_recovery,
)
from repro.core.primitives import Prober
from repro.covert.adaptive import choose_redundancy
from repro.covert.framing import (
    FRAME_BITS,
    decode_frames,
    frame_message,
    goodput_bps,
)
from repro.covert.protocol import CovertConfig
from repro.errors import (
    CalibrationError,
    CompletionTimeoutError,
    InsufficientTrialsError,
    QueueFullError,
)
from repro.experiments.guard import run_guarded_trials
from repro.faults import FaultPlan, FaultSite

from tests.conftest import build_host


class _ProcAdapter:
    """Adapts the conftest ``Proc`` to the ``GuestProcess`` duck type."""

    def __init__(self, proc):
        self._proc = proc
        self.pasid = proc.pasid

    def portal(self, wq_id):
        return self._proc.portal

    def buffer(self, huge=False):
        return self._proc.buffer(huge=huge)

    def comp_record(self):
        return self._proc.comp_record()


def _prober(host, **kwargs):
    return Prober(_ProcAdapter(host.new_process()), **kwargs)


class TestProberRetry:
    def test_retries_through_partial_submission_loss(self):
        host = build_host(seed=77)
        injector = FaultPlan(seed=6).with_site(
            FaultSite.SUBMISSION_DROP, probability=0.5
        ).build_injector()
        injector.attach_device(host.device)
        prober = _prober(host, max_retries=10, wait_timeout_cycles=30_000)
        comp = prober.fresh_comp()
        for _ in range(30):
            result = prober.probe_noop(comp)
            assert result.record.status.name == "SUCCESS"
        assert prober.retries_used > 0
        assert prober.probe_failures == prober.retries_used

    def test_exhausted_retries_raise_the_last_timeout(self):
        host = build_host(seed=77)
        injector = FaultPlan(seed=6).with_site(
            FaultSite.SUBMISSION_DROP, probability=1.0
        ).build_injector()
        injector.attach_device(host.device)
        prober = _prober(host, max_retries=2, wait_timeout_cycles=10_000)
        with pytest.raises(CompletionTimeoutError):
            prober.probe_noop(prober.fresh_comp())
        assert prober.retries_used == 2

    def test_completion_error_returned_after_budget(self):
        host = build_host(seed=77)
        injector = FaultPlan(seed=6).with_site(
            FaultSite.COMPLETION_ERROR, probability=1.0
        ).build_injector()
        injector.attach_device(host.device)
        prober = _prober(host, max_retries=1)
        result = prober.probe_noop(prober.fresh_comp())
        # Every attempt faulted: the caller sees the faulted record.
        assert result.record.status.name == "PAGE_FAULT"
        assert prober.probe_failures == 1


class _FlatProber:
    """Duck-typed prober with no hit/miss separation (uncalibratable)."""

    def __init__(self):
        self._comp = 0
        self._state = 0

    def fresh_comp(self):
        self._comp += 1
        return self._comp

    def probe_noop(self, comp):
        class R:
            latency_cycles = 700

        return R()


class TestCalibrationRecovery:
    def test_recovers_on_a_clean_host(self):
        host = build_host(seed=11)
        prober = _prober(host)
        result = calibrate_with_recovery(prober, samples=40)
        assert result.healthy()
        assert 500 < result.threshold < 1100

    def test_recovers_under_faults(self):
        host = build_host(seed=11)
        injector = (
            FaultPlan(seed=8)
            .with_site(FaultSite.SUBMISSION_DROP, probability=0.05)
            .with_site(FaultSite.ENGINE_STALL, probability=0.02, magnitude_cycles=5_000)
        ).build_injector()
        injector.attach_device(host.device)
        prober = _prober(host, wait_timeout_cycles=30_000)
        result = calibrate_with_recovery(prober, samples=40)
        assert result.healthy()

    def test_unhealthy_raises_with_best_attempt(self):
        policy = CalibrationPolicy(max_attempts=2)
        with pytest.raises(CalibrationError) as info:
            calibrate_with_recovery(_FlatProber(), samples=10, policy=policy)
        assert info.value.best is not None
        assert info.value.best.separation == 0.0

    def test_trim_sheds_outliers(self):
        from repro.core.calibration import _trim

        hits = np.array([500] * 19 + [5_000], dtype=np.int64)
        misses = np.array([1_400] * 19 + [100], dtype=np.int64)
        assert _trim(hits, 0.1, high=True).max() == 500
        assert _trim(misses, 0.1, high=False).min() == 1_400

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CalibrationPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            CalibrationPolicy(trim_fraction=0.5)


class TestThresholdMonitor:
    def test_clean_latencies_do_not_drift(self):
        monitor = ThresholdMonitor(threshold=750, min_samples=16)
        for _ in range(64):
            monitor.observe(500)
            monitor.observe(1_400)
        assert not monitor.drifting
        assert monitor.ambiguous_fraction == 0.0

    def test_ambiguous_band_triggers_drift(self):
        monitor = ThresholdMonitor(threshold=750, band_cycles=120, min_samples=16)
        for _ in range(32):
            monitor.observe(700)  # inside the band around the threshold
        assert monitor.drifting

    def test_reset_rearms_with_new_threshold(self):
        monitor = ThresholdMonitor(threshold=750, min_samples=4)
        for _ in range(8):
            monitor.observe(760)
        assert monitor.drifting
        monitor.reset(threshold=900)
        assert monitor.threshold == 900
        assert not monitor.drifting


class TestFramingRedundancy:
    def test_roundtrip_with_redundancy(self):
        message = b"dsa-chaos!"
        bits = frame_message(message, redundancy=3)
        report = decode_frames(bits, redundancy=3)
        assert report.data[: len(message)] == message
        assert report.frames_rejected == 0
        assert report.frames_recovered == 0

    def test_first_valid_copy_wins_when_one_is_corrupt(self):
        message = b"payload."
        bits = frame_message(message, redundancy=3)
        bits[:FRAME_BITS] ^= 1  # destroy the first copy of frame 0
        report = decode_frames(bits, redundancy=3)
        assert report.data[: len(message)] == message
        assert report.frames_recovered == 0

    def test_majority_vote_recovers_when_every_copy_is_hit(self):
        message = b"payload."
        bits = frame_message(message, redundancy=3)
        # One different corrupt bit per copy of frame 0: no copy passes
        # CRC, but a bitwise majority across the three is clean.
        for copy, position in enumerate((3, 17, 30)):
            bits[copy * FRAME_BITS + position] ^= 1
        report = decode_frames(bits, redundancy=3)
        assert report.data[: len(message)] == message
        assert report.frames_recovered >= 1

    def test_redundancy_must_match(self):
        with pytest.raises(ValueError):
            frame_message(b"x", redundancy=0)
        with pytest.raises(ValueError):
            decode_frames(np.zeros(88, dtype=np.int8), redundancy=0)

    def test_goodput_accounts_for_redundancy(self):
        message = b"abcdefgh"
        bits = frame_message(message, redundancy=2)
        report = decode_frames(bits, redundancy=2)
        assert goodput_bps(report, 1_000.0, redundancy=2) == pytest.approx(
            goodput_bps(report, 1_000.0) / 2
        )


class TestChooseRedundancy:
    def test_clean_channel_needs_no_repeats(self):
        assert choose_redundancy(0.0) == 1

    def test_monotone_in_error_rate(self):
        picks = [choose_redundancy(e) for e in (0.0, 0.02, 0.05, 0.10)]
        assert picks == sorted(picks)

    def test_hopeless_channel_hits_the_cap(self):
        assert choose_redundancy(0.5, max_redundancy=6) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_redundancy(1.5)
        with pytest.raises(ValueError):
            choose_redundancy(0.1, target_frame_rate=1.0)


class TestExperimentGuard:
    def test_contains_repro_errors(self):
        calls = []

        def good():
            calls.append("g")
            return 1

        def bad():
            raise QueueFullError("full", wq_id=0)

        run = run_guarded_trials([good, bad, good], min_successes=2)
        assert run.results == (1, 1)
        assert len(run.failures) == 1
        assert run.failures[0].index == 1
        assert isinstance(run.failures[0].error, QueueFullError)
        assert run.success_rate == pytest.approx(2 / 3)
        assert not run.complete

    def test_non_repro_errors_propagate(self):
        def boom():
            raise RuntimeError("bug")

        with pytest.raises(RuntimeError):
            run_guarded_trials([boom], min_successes=0)

    def test_too_few_successes_raise(self):
        def bad():
            raise QueueFullError("full")

        with pytest.raises(InsufficientTrialsError, match="0/2 trials"):
            run_guarded_trials([bad, bad], min_successes=1, label="figure X")

    def test_wall_clock_budget_skips_remaining(self):
        import time

        def slow():
            time.sleep(0.05)
            return 1

        run = run_guarded_trials(
            [slow] * 10, max_total_seconds=0.08, min_successes=1
        )
        assert run.skipped > 0
        assert len(run.results) >= 1


class TestCovertConfigValidation:
    def test_negative_preamble_jitter_rejected(self):
        with pytest.raises(ValueError, match="preamble_jitter_us"):
            CovertConfig(preamble_jitter_us=-1.0)

    def test_negative_burst_bits_rejected(self):
        with pytest.raises(ValueError, match="preamble_burst_bits"):
            CovertConfig(preamble_burst_bits=-1)

    def test_burst_bits_bounded_by_preamble(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            CovertConfig(preamble_ones=4, preamble_burst_bits=5)
        CovertConfig(preamble_ones=4, preamble_burst_bits=4)  # boundary ok
