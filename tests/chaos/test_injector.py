"""Unit tests for the fault plan/injector layer (no device involved)."""

import pytest

from repro.faults import (
    COMPLETION_ERROR_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSite,
    FaultSpec,
)
from repro.hw.units import us_to_cycles


class TestFaultSpecValidation:
    def test_needs_a_trigger(self):
        with pytest.raises(ValueError, match="arm a trigger"):
            FaultSpec(site=FaultSite.SUBMISSION_DROP)

    def test_probability_and_period_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FaultSpec(
                site=FaultSite.SUBMISSION_DROP, probability=0.5, period_us=10.0
            )

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site=FaultSite.SUBMISSION_DROP, probability=1.5)

    def test_kind_only_for_completion_error(self):
        with pytest.raises(ValueError, match="takes no kind"):
            FaultSpec(
                site=FaultSite.ENGINE_STALL, probability=1.0, kind="page_fault"
            )

    def test_completion_error_kind_defaults_and_validates(self):
        spec = FaultSpec(site=FaultSite.COMPLETION_ERROR, probability=1.0)
        assert spec.kind == COMPLETION_ERROR_KINDS[0]
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(
                site=FaultSite.COMPLETION_ERROR, probability=1.0, kind="meltdown"
            )

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="stop_us"):
            FaultSpec(
                site=FaultSite.PRS_DROP, probability=1.0, start_us=5.0, stop_us=5.0
            )


class TestFaultPlan:
    def test_with_site_appends_immutably(self):
        base = FaultPlan(seed=3)
        grown = base.with_site(FaultSite.SUBMISSION_DROP, probability=0.1)
        assert base.specs == ()
        assert [s.site for s in grown.specs] == [FaultSite.SUBMISSION_DROP]

    def test_sites_deduplicates_in_order(self):
        plan = (
            FaultPlan()
            .with_site(FaultSite.PRS_DROP, probability=0.1)
            .with_site(FaultSite.SUBMISSION_DROP, probability=0.1)
            .with_site(FaultSite.PRS_DROP, period_us=10.0)
        )
        assert plan.sites() == (FaultSite.PRS_DROP, FaultSite.SUBMISSION_DROP)

    def test_describe_mentions_every_spec(self):
        plan = (
            FaultPlan(seed=9)
            .with_site(FaultSite.SUBMISSION_DROP, probability=0.05, wq_id=1)
            .with_site(FaultSite.DEVTLB_INVALIDATE, period_us=500.0)
        )
        text = plan.describe()
        assert "submission_drop" in text
        assert "devtlb_invalidate" in text
        assert "wq=1" in text


class TestFiring:
    def test_probability_one_always_fires(self):
        injector = FaultPlan(seed=1).with_site(
            FaultSite.SUBMISSION_DROP, probability=1.0
        ).build_injector()
        for t in range(5):
            assert injector.fire(FaultSite.SUBMISSION_DROP, timestamp=t) is not None
        assert injector.total_fired == 5

    def test_wrong_site_never_fires(self):
        injector = FaultPlan(seed=1).with_site(
            FaultSite.SUBMISSION_DROP, probability=1.0
        ).build_injector()
        assert injector.fire(FaultSite.PRS_DROP, timestamp=0) is None

    def test_scope_filter(self):
        injector = FaultPlan(seed=1).with_site(
            FaultSite.SUBMISSION_DROP, probability=1.0, pasid=7
        ).build_injector()
        assert injector.fire(FaultSite.SUBMISSION_DROP, timestamp=0, pasid=3) is None
        assert (
            injector.fire(FaultSite.SUBMISSION_DROP, timestamp=1, pasid=7) is not None
        )

    def test_time_window(self):
        injector = FaultPlan(seed=1).with_site(
            FaultSite.SUBMISSION_DROP, probability=1.0, start_us=10.0, stop_us=20.0
        ).build_injector()
        assert injector.fire(FaultSite.SUBMISSION_DROP, us_to_cycles(5)) is None
        assert injector.fire(FaultSite.SUBMISSION_DROP, us_to_cycles(15)) is not None
        assert injector.fire(FaultSite.SUBMISSION_DROP, us_to_cycles(25)) is None

    def test_periodic_fires_once_per_period(self):
        injector = FaultPlan(seed=1).with_site(
            FaultSite.DEVTLB_INVALIDATE, period_us=10.0
        ).build_injector()
        period = us_to_cycles(10.0)
        # Opportunities every quarter period: exactly one fire per period.
        fires = [
            injector.fire(FaultSite.DEVTLB_INVALIDATE, timestamp=t) is not None
            for t in range(0, 4 * period, period // 4)
        ]
        assert sum(fires) == 3  # periods complete at 1x, 2x, 3x

    def test_periodic_catches_up_after_a_gap(self):
        injector = FaultPlan(seed=1).with_site(
            FaultSite.DEVTLB_INVALIDATE, period_us=10.0
        ).build_injector()
        period = us_to_cycles(10.0)
        # One opportunity long after many periods elapsed: a single fire,
        # and the next due time is past the timestamp (no burst).
        assert injector.fire(FaultSite.DEVTLB_INVALIDATE, 10 * period) is not None
        assert injector.fire(FaultSite.DEVTLB_INVALIDATE, 10 * period + 1) is None

    def test_first_matching_spec_wins(self):
        plan = (
            FaultPlan(seed=1)
            .with_site(FaultSite.ENGINE_STALL, probability=1.0, magnitude_cycles=100)
            .with_site(FaultSite.ENGINE_STALL, probability=1.0, magnitude_cycles=999)
        )
        event = plan.build_injector().fire(FaultSite.ENGINE_STALL, timestamp=0)
        assert event.spec_index == 0
        assert event.magnitude_cycles == 100


class TestLog:
    def _drops(self, seed=4, p=0.3, n=200):
        injector = FaultPlan(seed=seed).with_site(
            FaultSite.SUBMISSION_DROP, probability=p
        ).build_injector()
        for t in range(n):
            injector.fire(FaultSite.SUBMISSION_DROP, timestamp=t, pasid=1, wq_id=0)
        return injector

    def test_log_bytes_reproducible(self):
        a, b = self._drops(), self._drops()
        assert a.log_bytes() == b.log_bytes()
        assert a.log_bytes()  # non-empty with p=0.3 over 200 tries

    def test_different_seed_different_pattern(self):
        assert self._drops(seed=4).log_bytes() != self._drops(seed=5).log_bytes()

    def test_log_lines_are_json_with_context(self):
        import json

        line = json.loads(self._drops().log_lines()[0])
        assert line["site"] == "submission_drop"
        assert line["ctx"] == {"pasid": 1, "wq_id": 0}

    def test_log_rotation_counts_dropped(self):
        injector = FaultInjector(
            FaultPlan(seed=1).with_site(FaultSite.PRS_DROP, probability=1.0),
            max_log_events=10,
        )
        for t in range(25):
            injector.fire(FaultSite.PRS_DROP, timestamp=t)
        assert len(injector.events) == 10
        assert injector.events_dropped == 15
        assert injector.total_fired == 25
        assert injector.events[0].timestamp == 15

    def test_empty_log_is_empty_bytes(self):
        assert FaultPlan().build_injector().log_bytes() == b""
