"""Each fault site observably perturbs the model at its hook point."""

import pytest

from repro.ats.prs import PageRequestService
from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import make_memcpy, make_noop
from repro.errors import CompletionTimeoutError, QueueFullError, TranslationFault
from repro.faults import FaultPlan, FaultSite
from repro.hw.clock import TscClock
from repro.virt.scheduler import Timeline
from repro.virt.system import AttackTopology, CloudSystem

from tests.conftest import build_host


def _plan_one(site, **kwargs):
    return FaultPlan(seed=5).with_site(site, **kwargs)


class TestPortalSites:
    def test_submission_drop_looks_accepted(self, proc):
        injector = _plan_one(FaultSite.SUBMISSION_DROP, probability=1.0).build_injector()
        injector.attach_device(proc.host.device)
        zf = proc.portal.enqcmd(make_noop(proc.pasid, proc.comp_record()))
        assert zf is False  # ZF clear: software believes it was accepted
        assert proc.portal.last_ticket is None
        assert proc.portal.faults_injected == 1
        assert proc.host.device.stats.submissions_accepted == 0

    def test_dropped_submission_times_out(self, proc):
        injector = _plan_one(FaultSite.SUBMISSION_DROP, probability=1.0).build_injector()
        injector.attach_device(proc.host.device)
        ticket = proc.portal.submit(make_noop(proc.pasid, proc.comp_record()))
        assert ticket.completion_time is None
        with pytest.raises(CompletionTimeoutError) as info:
            proc.portal.wait(ticket, timeout_cycles=50_000)
        assert info.value.wq_id == 0
        assert info.value.waited_cycles == 50_000

    def test_submission_delay_costs_cycles(self, proc):
        descriptor = make_noop(proc.pasid, proc.comp_record())
        start = proc.host.clock.now
        proc.portal.enqcmd(descriptor)
        baseline = proc.host.clock.now - start

        injector = _plan_one(
            FaultSite.SUBMISSION_DELAY, probability=1.0, magnitude_cycles=40_000
        ).build_injector()
        injector.attach_device(proc.host.device)
        start = proc.host.clock.now
        proc.portal.enqcmd(descriptor)
        assert proc.host.clock.now - start >= baseline + 40_000

    def test_queue_full_error_carries_queue_state(self):
        host = build_host(wq_size=4)
        proc = host.new_process()
        src = proc.buffer(1 << 20)
        dst = proc.buffer(1 << 20)
        # Anchor holds the engine; fillers saturate the other slots.
        proc.portal.submit(make_memcpy(proc.pasid, src, dst, 1 << 20, proc.comp_record()))
        filler = make_noop(proc.pasid, proc.comp_record())
        for _ in range(3):
            proc.portal.submit(filler)
        with pytest.raises(QueueFullError) as info:
            proc.portal.submit(filler)
        assert info.value.wq_id == 0
        assert info.value.occupancy == info.value.capacity == 4


class TestEngineSites:
    def test_completion_error_page_fault(self, proc):
        injector = _plan_one(FaultSite.COMPLETION_ERROR, probability=1.0).build_injector()
        injector.attach_device(proc.host.device)
        src, dst = proc.buffer(4096), proc.buffer(4096)
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, src, dst, 256, proc.comp_record())
        )
        assert result.record.status is CompletionStatus.PAGE_FAULT
        assert result.record.bytes_completed == 0
        engine = proc.host.device.engines[0]
        assert engine.stats.injected_faults == 1

    def test_completion_error_invalid_flags(self, proc):
        injector = _plan_one(
            FaultSite.COMPLETION_ERROR, probability=1.0, kind="invalid_flags"
        ).build_injector()
        injector.attach_device(proc.host.device)
        result = proc.portal.submit_wait(make_noop(proc.pasid, proc.comp_record()))
        assert result.record.status is CompletionStatus.INVALID_FLAGS

    def test_engine_stall_inflates_latency(self, proc):
        comp = proc.comp_record()
        descriptor = make_noop(proc.pasid, comp)
        baseline = proc.portal.submit_wait(descriptor).latency_cycles

        injector = _plan_one(
            FaultSite.ENGINE_STALL, probability=1.0, magnitude_cycles=60_000
        ).build_injector()
        injector.attach_device(proc.host.device)
        stalled = proc.portal.submit_wait(descriptor).latency_cycles
        assert stalled >= baseline + 50_000
        assert proc.host.device.engines[0].stats.injected_stall_cycles == 60_000

    def test_iotlb_invalidate_forces_agent_misses(self, proc):
        comp = proc.comp_record()
        descriptor = make_noop(proc.pasid, comp)
        proc.portal.submit_wait(descriptor)  # warm both TLBs
        iotlb = proc.host.device.agent.iotlb
        warm_misses = iotlb.stats.misses

        # A DevTLB flush alone falls through to a *warm* IOTLB: hits only.
        injector = _plan_one(FaultSite.DEVTLB_INVALIDATE, probability=1.0).build_injector()
        injector.attach_device(proc.host.device)
        proc.portal.submit_wait(descriptor)
        assert iotlb.stats.misses == warm_misses

        # Flushing the IOTLB too makes the same fall-through miss there.
        both = (
            FaultPlan(seed=5)
            .with_site(FaultSite.DEVTLB_INVALIDATE, probability=1.0)
            .with_site(FaultSite.IOTLB_INVALIDATE, probability=1.0)
        ).build_injector()
        both.attach_device(proc.host.device)
        proc.portal.submit_wait(descriptor)
        assert iotlb.stats.misses > warm_misses

    def test_devtlb_invalidate_evicts_primed_entry(self):
        from repro.core.devtlb_attack import DsaDevTlbAttack

        system = CloudSystem(seed=3)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.prime()
        assert not attack.probe().evicted  # warm: a hit

        injector = _plan_one(FaultSite.DEVTLB_INVALIDATE, probability=1.0).build_injector()
        injector.attach_device(system.device)
        assert attack.probe().evicted  # invalidated before execution: a miss


class TestDeviceAndPrsSites:
    def test_wq_drain_aborts_pending_descriptors(self):
        host = build_host(wq_size=16)
        proc = host.new_process()
        src = proc.buffer(1 << 20)
        dst = proc.buffer(1 << 20)
        proc.portal.submit(make_memcpy(proc.pasid, src, dst, 1 << 20, proc.comp_record()))
        pending = [
            proc.portal.submit(make_noop(proc.pasid, proc.comp_record()))
            for _ in range(5)
        ]
        injector = _plan_one(FaultSite.WQ_DRAIN, probability=1.0).build_injector()
        injector.attach_device(host.device)
        survivor = proc.portal.submit(make_noop(proc.pasid, proc.comp_record()))
        assert host.device.stats.injected_wq_drains == 1
        assert host.device.stats.injected_drain_aborts == 5
        for ticket in pending:
            assert ticket.record.status is CompletionStatus.ABORT
        # The queue keeps operating: the triggering submission completes.
        proc.portal.wait(survivor)
        assert survivor.record.status is CompletionStatus.SUCCESS

    def test_prs_drop_raises_with_pasid(self):
        prs = PageRequestService(handler=lambda pasid, va, write: True)
        injector = _plan_one(FaultSite.PRS_DROP, probability=1.0).build_injector()
        # Direct wiring on purpose: this unit-tests PageRequestService
        # itself, with no device/system to attach through.
        prs.fault_injector = injector  # repro-lint: ignore[SIM001]
        with pytest.raises(TranslationFault) as info:
            prs.report(pasid=9, virtual_address=0x2000, write=False, timestamp=0)
        assert info.value.pasid == 9
        assert prs.failed == 1

    def test_prs_log_is_bounded(self):
        prs = PageRequestService(handler=lambda pasid, va, write: True, max_log=4)
        for i in range(6):
            prs.report(pasid=1, virtual_address=0x1000 * i, write=False, timestamp=i)
        assert len(prs.log) == 4
        assert prs.dropped == 2
        assert prs.log[0].virtual_address == 0x2000  # oldest two rotated out
        with pytest.raises(ValueError):
            PageRequestService(max_log=0)


class TestSchedulerSite:
    def test_preemption_burst_delays_the_idler(self):
        clock = TscClock()
        timeline = Timeline(clock)
        injector = _plan_one(
            FaultSite.PREEMPTION, probability=1.0, magnitude_cycles=30_000
        ).build_injector()
        injector.attach_timeline(timeline)
        timeline.idle_until(100_000)
        assert clock.now == 130_000
        assert timeline.preemptions == 1
        assert timeline.preempted_cycles == 30_000

    def test_victim_actions_still_run_during_preemption(self):
        clock = TscClock()
        timeline = Timeline(clock)
        injector = _plan_one(
            FaultSite.PREEMPTION, probability=1.0, magnitude_cycles=30_000
        ).build_injector()
        injector.attach_timeline(timeline)
        fired_at = []
        timeline.schedule_at(110_000, lambda: fired_at.append(clock.now))
        timeline.idle_until(100_000)
        # The action fell inside the preemption burst and ran on time.
        assert fired_at == [110_000]
