"""Chaos suite: fault injection and attack-pipeline resilience.

Fast deterministic scenarios run with tier 1; long fault storms are
marked ``chaos`` and excluded by default (see ``scripts/run_chaos.sh``).
"""
