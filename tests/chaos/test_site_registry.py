"""The injector's fault-site registry: loud failure on double hook-up.

Before the registry, ``attach_device`` silently re-pointed
``fault_injector`` attributes — attaching one injector to two devices
double-evaluated every device spec (doubling effective fault rates)
with no trace in the log.  Now each site has exactly one owner per
injector and a duplicate or unknown site id raises
:class:`~repro.errors.ConfigurationError` before any state changes.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan, FaultSite
from repro.faults.sites import (
    DEVICE_SITES,
    POOL_SITES,
    SERVICE_SITES,
    SITE_OWNERS,
    TIMELINE_SITES,
    coerce_site,
)


class FakePrs:
    fault_injector = None


class FakeEngine:
    fault_injector = None


class FakeDevice:
    def __init__(self) -> None:
        self.engines = {0: FakeEngine()}
        self.prs = FakePrs()
        self.fault_injector = None


class FakeTimeline:
    fault_injector = None


def make_injector() -> FaultInjector:
    return FaultInjector(FaultPlan(seed=1))


class TestSiteMap:
    def test_every_site_has_an_owner(self):
        assert set(SITE_OWNERS) == set(FaultSite)

    def test_site_families_partition_the_enum(self):
        families = (
            set(DEVICE_SITES),
            set(TIMELINE_SITES),
            set(POOL_SITES),
            set(SERVICE_SITES),
        )
        assert set().union(*families) == set(FaultSite)
        for i, left in enumerate(families):
            for right in families[i + 1:]:
                assert not left & right

    def test_coerce_site_accepts_enum_and_value(self):
        assert coerce_site(FaultSite.PRS_DROP) is FaultSite.PRS_DROP
        assert coerce_site("prs_drop") is FaultSite.PRS_DROP

    def test_coerce_site_rejects_unknown_id(self):
        with pytest.raises(ConfigurationError, match="valid sites"):
            coerce_site("prs_dorp")


class TestRegistry:
    def test_attach_device_registers_every_device_site(self):
        injector = make_injector()
        device = FakeDevice()
        injector.attach_device(device)
        assert set(injector.registered_sites) == set(DEVICE_SITES)
        assert device.fault_injector is injector
        assert device.engines[0].fault_injector is injector
        assert device.prs.fault_injector is injector

    def test_attach_timeline_registers_preemption(self):
        injector = make_injector()
        injector.attach_timeline(FakeTimeline())
        assert set(injector.registered_sites) == set(TIMELINE_SITES)

    def test_device_plus_timeline_on_one_injector_is_fine(self):
        injector = make_injector()
        injector.attach_device(FakeDevice())
        injector.attach_timeline(FakeTimeline())
        assert set(injector.registered_sites) == (
            set(DEVICE_SITES) | set(TIMELINE_SITES)
        )

    def test_pool_sites_register_individually(self):
        # Pool sites have no attach_* helper: each pool worker registers
        # them by hand (repro.experiments.pool), one owner per injector.
        injector = make_injector()
        injector.attach_device(FakeDevice())
        injector.attach_timeline(FakeTimeline())
        for site in POOL_SITES:
            injector.register_site(site, "pool-worker-0")
        for site in SERVICE_SITES:
            injector.register_site(site, "service-control-plane")
        assert set(injector.registered_sites) == set(FaultSite)
        with pytest.raises(ConfigurationError, match="already hooked"):
            injector.register_site(POOL_SITES[0], "pool-worker-1")

    def test_double_device_attach_raises(self):
        injector = make_injector()
        injector.attach_device(FakeDevice())
        with pytest.raises(ConfigurationError, match="already hooked"):
            injector.attach_device(FakeDevice())

    def test_double_timeline_attach_raises(self):
        injector = make_injector()
        injector.attach_timeline(FakeTimeline())
        with pytest.raises(ConfigurationError, match="already hooked"):
            injector.attach_timeline(FakeTimeline())

    def test_duplicate_attach_fails_before_touching_second_device(self):
        injector = make_injector()
        injector.attach_device(FakeDevice())
        second = FakeDevice()
        with pytest.raises(ConfigurationError):
            injector.attach_device(second)
        assert second.fault_injector is None
        assert second.engines[0].fault_injector is None

    def test_register_site_rejects_unknown_id(self):
        with pytest.raises(ConfigurationError, match="valid sites"):
            make_injector().register_site("not_a_site", "test")

    def test_register_site_accepts_string_value(self):
        injector = make_injector()
        assert (
            injector.register_site("preemption", "test")
            is FaultSite.PREEMPTION
        )

    def test_error_names_both_owners(self):
        injector = make_injector()
        injector.register_site(FaultSite.WQ_DRAIN, "attach_device(A)")
        with pytest.raises(ConfigurationError, match=r"attach_device\(A\)"):
            injector.register_site(FaultSite.WQ_DRAIN, "attach_device(B)")
