"""The headline chaos scenarios: the pipeline survives a seeded storm.

The acceptance plan injects 5 % dropped portal submissions plus a
spurious global DevTLB invalidation every 1.5 ms.  Under it, calibration
still converges to a healthy threshold, the DevTLB covert channel keeps
its decoded bit error rate under 15 %, and the whole run — fault log
included — is byte-identical when replayed from the same (plan, system
seed) pair.
"""

import numpy as np
import pytest

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.covert.channel import (
    run_devtlb_covert_channel,
    run_devtlb_framed_message,
)
from repro.covert.protocol import CovertConfig
from repro.faults import FaultPlan, FaultSite
from repro.virt.system import AttackTopology, CloudSystem

#: The ISSUE acceptance plan: submission loss + periodic DevTLB flushes.
ACCEPTANCE_PLAN = (
    FaultPlan(seed=11)
    .with_site(FaultSite.SUBMISSION_DROP, probability=0.05)
    .with_site(FaultSite.DEVTLB_INVALIDATE, period_us=1_500.0)
)

#: A third of the 42.5 us bit window: a dropped probe retries in-window.
PROBE_TIMEOUT = 30_000


def _acceptance_run(payload_bits=160, seed=2026):
    system = CloudSystem(seed=seed, fault_plan=ACCEPTANCE_PLAN)
    result = run_devtlb_covert_channel(
        payload_bits=payload_bits, system=system, probe_timeout_cycles=PROBE_TIMEOUT
    )
    return result, system.fault_injector


class TestAcceptanceScenario:
    def test_calibration_recovers_under_the_storm(self):
        system = CloudSystem(seed=2026, fault_plan=ACCEPTANCE_PLAN)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attack = DsaDevTlbAttack(
            handles.attacker,
            wq_id=handles.attacker_wq,
            probe_timeout_cycles=PROBE_TIMEOUT,
        )
        calibration = attack.calibrate(samples=60)
        assert calibration.healthy()
        assert 600 <= attack.threshold <= 1_100

    def test_covert_error_rate_stays_under_15_percent(self):
        result, injector = _acceptance_run()
        assert result.error_rate < 0.15
        # The storm actually happened: both sites fired.
        assert injector.fired_by_site[FaultSite.SUBMISSION_DROP] > 0
        assert injector.fired_by_site[FaultSite.DEVTLB_INVALIDATE] > 0

    def test_same_plan_and_seed_reproduce_bytes(self):
        result_a, injector_a = _acceptance_run()
        result_b, injector_b = _acceptance_run()
        assert injector_a.log_bytes() == injector_b.log_bytes()
        assert injector_a.log_bytes()  # non-empty
        assert np.array_equal(result_a.received, result_b.received)
        assert result_a.error_rate == result_b.error_rate

    def test_different_plan_seed_changes_the_storm(self):
        result_a, injector_a = _acceptance_run()
        reseeded = FaultPlan(seed=12, specs=ACCEPTANCE_PLAN.specs)
        system = CloudSystem(seed=2026, fault_plan=reseeded)
        run_devtlb_covert_channel(
            payload_bits=160, system=system, probe_timeout_cycles=PROBE_TIMEOUT
        )
        assert system.fault_injector.log_bytes() != injector_a.log_bytes()


class TestFramedMessageUnderLoss:
    def test_payload_decodes_under_5_percent_submission_loss(self):
        plan = FaultPlan(seed=7).with_site(FaultSite.SUBMISSION_DROP, probability=0.05)
        system = CloudSystem(seed=2026, fault_plan=plan)
        message = b"DSAssassin"
        report, result = run_devtlb_framed_message(
            message,
            config=CovertConfig(bit_window_us=85.0),
            system=system,
            redundancy=5,
            probe_timeout_cycles=60_000,
        )
        assert report.data[: len(message)] == message
        assert report.frame_acceptance_rate == 1.0
        assert result.error_rate < 0.15


@pytest.mark.chaos
class TestLongFaultStorm:
    """Heavier, longer storm — excluded from tier-1 (marker ``chaos``)."""

    def test_long_payload_survives_a_mixed_storm(self):
        plan = (
            FaultPlan(seed=23)
            .with_site(FaultSite.SUBMISSION_DROP, probability=0.05)
            .with_site(FaultSite.DEVTLB_INVALIDATE, period_us=1_500.0)
            .with_site(FaultSite.ENGINE_STALL, probability=0.01, magnitude_cycles=8_000)
            .with_site(FaultSite.PREEMPTION, probability=0.002, magnitude_cycles=20_000)
        )
        system = CloudSystem(seed=2026, fault_plan=plan)
        result = run_devtlb_covert_channel(
            payload_bits=512, system=system, probe_timeout_cycles=PROBE_TIMEOUT
        )
        assert result.error_rate < 0.20
        assert system.timeline.preemptions > 0
