"""Chaos matrix for the persistent worker pool: every pool fault site,
fired at probability 1.0 inside real experiment runs, must end in a
*healed* run whose artifact is byte-identical to an undisturbed serial
run — crashed workers respawned, stalled workers SIGKILLed by the
watchdog, corrupt result frames discarded and the shard requeued.

Also here (all marked ``pool``, run via ``scripts/run_pool_smoke.sh``):

* external ``kill -9`` of a worker mid-shard (fig09 and table3), healed
  byte-identically;
* the SIGTERM drain contract of both multi-process parents: a SIGTERM
  mid-run exits 130 with the manifest flushed and resumable.
"""

import functools
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import table3_noise
from repro.experiments.checkpoint import (
    MANIFEST_NAME,
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    RunManifest,
)
from repro.experiments.pool import run_pool_experiment, shutdown_pools
from repro.experiments.runner import ExperimentPlan, TrialSpec, run_experiment
from repro.experiments.supervisor import PoolConfig
from repro.faults import FaultPlan, FaultSite
from repro.faults.sites import POOL_SITES
from tests.experiments.test_parallel_equivalence import (
    TABLE3_CONFIG,
    _assert_same_artifact,
    _fig09_plan,
)

pytestmark = pytest.mark.pool

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Every pool site with the spec that makes its effect observable.  The
#: stall magnitude (cycles, 1e6/s) far exceeds the watchdog deadline in
#: :data:`_CHAOS_CONFIG`, so detection — not patience — ends the stall.
POOL_MATRIX = {
    FaultSite.POOL_WORKER_CRASH: {},
    FaultSite.POOL_WORKER_STALL: {"magnitude_cycles": 30_000_000},
    FaultSite.POOL_RESULT_CORRUPT: {},
}

#: Tight watchdog so a stalled worker is SIGKILLed in ~1s, not 30.
_CHAOS_CONFIG = PoolConfig(
    hang_suspect_s=0.25, hang_floor_s=1.0, hang_factor=1.0
)


@pytest.fixture(autouse=True)
def _fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


def _chaos_fig09_plan(site_value: str) -> ExperimentPlan:
    """The tier-1 fig09 plan plus one pool fault site at p=1.0."""
    site = FaultSite(site_value)
    plan = _fig09_plan()
    return ExperimentPlan(
        name=plan.name,
        seed=plan.seed,
        config=plan.config,
        trials=plan.trials,
        finalize=plan.finalize,
        min_successes=plan.min_successes,
        fault_plan=FaultPlan(seed=7).with_site(
            site, probability=1.0, **POOL_MATRIX[site]
        ),
    )


def _kill_once(flag_path: str, fn):
    """SIGKILL the hosting worker the first time this trial runs (an
    external ``kill -9`` mid-shard); behave normally once the flag file
    proves the kill already happened."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("killed")
        os.kill(os.getpid(), signal.SIGKILL)
    return fn()


def _kill_once_plan(experiment: str, flag_path: str, k: int) -> ExperimentPlan:
    if experiment == "fig09":
        plan = _fig09_plan()
    else:
        plan = table3_noise.trial_plan(**TABLE3_CONFIG)
    return ExperimentPlan(
        name=plan.name,
        seed=plan.seed,
        config=plan.config,
        trials=tuple(
            TrialSpec(
                key=spec.key,
                fn=functools.partial(_kill_once, flag_path, spec.fn)
                if index == k
                else spec.fn,
            )
            for index, spec in enumerate(plan.trials)
        ),
        finalize=plan.finalize,
        min_successes=plan.min_successes,
    )


def _clean_plan(experiment: str) -> ExperimentPlan:
    return _kill_once_plan(experiment, "/nonexistent-but-unused", -1)


class TestPoolSiteMatrix:
    def test_matrix_covers_every_pool_site(self):
        assert set(POOL_MATRIX) == set(POOL_SITES)

    @pytest.mark.parametrize(
        "site", sorted(POOL_MATRIX, key=lambda s: s.value)
    )
    def test_site_heals_to_serial_identical_bytes(self, site, tmp_path):
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        serial = run_experiment(
            _chaos_fig09_plan(site.value), run_dir=serial_dir
        )
        assert serial.status == STATUS_COMPLETED
        healed = run_pool_experiment(
            _chaos_fig09_plan(site.value),
            plan_source=functools.partial(_chaos_fig09_plan, site.value),
            workers=2,
            run_dir=pool_dir,
            executor="pool",
            config=_CHAOS_CONFIG,
        )
        assert healed.status == STATUS_COMPLETED
        assert healed.pool["respawns"] >= 1, (
            f"{site.value}: supervision never had to intervene — the "
            "chaos site did not bite"
        )
        assert healed.pool["poisoned"] == []
        _assert_same_artifact(serial_dir, pool_dir)


class TestExternalKillMidShard:
    @pytest.mark.parametrize("experiment", ["fig09", "table3"])
    def test_worker_killed_at_trial_k_heals_byte_identically(
        self, experiment, tmp_path
    ):
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        serial = run_experiment(_clean_plan(experiment), run_dir=serial_dir)
        assert serial.status == STATUS_COMPLETED

        flag = tmp_path / "killed.flag"
        healed = run_pool_experiment(
            _kill_once_plan(experiment, str(flag), 1),
            plan_source=functools.partial(
                _kill_once_plan, experiment, str(flag), 1
            ),
            workers=2,
            run_dir=pool_dir,
            executor="pool",
        )
        assert flag.exists(), "the kill never happened"
        assert healed.status == STATUS_COMPLETED
        assert healed.pool["respawns"] == 1
        assert healed.pool["poisoned"] == []
        _assert_same_artifact(serial_dir, pool_dir)


def _run_cli_until_sigterm(tmp_path, executor: str) -> tuple[int, Path]:
    run_dir = tmp_path / f"sigterm-{executor}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "fig09",
            "--set",
            "payload_bits=384",
            "--set",
            "runs=2",
            "--workers",
            "2",
            "--executor",
            executor,
            "--run-dir",
            str(run_dir),
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Watchdog over a real child process: injectable clocks cannot
        # time out a subprocess that genuinely hung.
        deadline = time.monotonic() + 120  # repro-lint: ignore[DET002]
        manifest_path = run_dir / MANIFEST_NAME
        while not manifest_path.exists():
            assert proc.poll() is None, (
                f"CLI exited (rc {proc.returncode}) before checkpointing"
            )
            assert (
                time.monotonic() < deadline  # repro-lint: ignore[DET002]
            ), "manifest never appeared"
            time.sleep(0.02)
        time.sleep(0.3)  # let the run get into the multi-process phase
        proc.send_signal(signal.SIGTERM)
        return proc.wait(timeout=120), run_dir
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


class TestSigtermDrain:
    @pytest.mark.parametrize("executor", ["spawn", "pool"])
    def test_sigterm_mid_run_flushes_checkpoint_and_exits_130(
        self, executor, tmp_path
    ):
        returncode, run_dir = _run_cli_until_sigterm(tmp_path, executor)
        assert returncode == 130
        manifest = RunManifest.load(run_dir)
        assert manifest.status == STATUS_INTERRUPTED
        assert manifest.exit_code == 130
