"""Fast tier-1 units: generation, mutation, coverage, one executed case."""

from repro.fuzz.campaign import LANE_GUIDED, LANE_TOPOLOGY
from repro.fuzz.coverage import CoverageMap, bucket
from repro.fuzz.executor import execute_case
from repro.fuzz.gen import (
    MAX_OPS,
    OP_KINDS,
    derive_rng,
    generate_case,
    generate_topology,
    mutate,
    splice,
)


def _topology(seed=0):
    return generate_topology(derive_rng(seed, LANE_TOPOLOGY))


class TestGeneration:
    def test_topology_is_deterministic(self):
        assert _topology(3) == _topology(3)
        assert _topology(3) != _topology(4)

    def test_topology_always_has_shared_and_dedicated(self):
        for seed in range(8):
            modes = [wq["mode"] for wq in _topology(seed)["wqs"]]
            assert "shared" in modes[:2] and "dedicated" in modes[:2]

    def test_case_is_pure_function_of_seed_lane_iteration(self):
        topo = _topology()
        draw = lambda it: generate_case(  # noqa: E731
            derive_rng(0, LANE_GUIDED, it), topo, processes=2
        )
        assert draw(5) == draw(5)
        assert draw(5) != draw(6)

    def test_case_ops_use_known_vocabulary(self):
        topo = _topology()
        for iteration in range(10):
            ops = generate_case(derive_rng(1, LANE_GUIDED, iteration), topo, 2)
            assert ops
            assert all(op["kind"] in OP_KINDS for op in ops)


class TestMutation:
    def test_mutant_is_deterministic_and_differs(self):
        topo = _topology()
        parent = generate_case(derive_rng(0, LANE_GUIDED, 0), topo, 2)
        a = mutate(derive_rng(0, LANE_GUIDED, 1), list(parent), topo, 2)
        b = mutate(derive_rng(0, LANE_GUIDED, 1), list(parent), topo, 2)
        assert a == b
        assert a != parent

    def test_mutant_length_is_bounded(self):
        topo = _topology()
        ops = generate_case(derive_rng(2, LANE_GUIDED, 0), topo, 2)
        for iteration in range(40):
            ops = mutate(derive_rng(2, LANE_GUIDED, iteration), ops, topo, 2)
        assert 1 <= len(ops) <= 4 * MAX_OPS

    def test_splice_crosses_over(self):
        topo = _topology()
        first = generate_case(derive_rng(3, LANE_GUIDED, 0), topo, 2)
        second = generate_case(derive_rng(3, LANE_GUIDED, 1), topo, 2)
        child = splice(derive_rng(3, LANE_GUIDED, 2), first, second)
        assert child and all(op in first + second for op in child)


class TestCoverage:
    def test_bucket_bands(self):
        assert [bucket(n) for n in (1, 2, 3, 4, 7, 8, 15, 16)] == [
            1, 2, 3, 5, 5, 6, 6, 7,
        ]

    def test_new_features_only_counted_once(self):
        cov = CoverageMap()
        cov.begin_case()
        cov.probe("wq.enqueue", "shared:q0")
        assert cov.end_case() == 1
        cov.begin_case()
        cov.probe("wq.enqueue", "shared:q0")
        assert cov.end_case() == 0
        cov.begin_case()
        cov.probe("wq.enqueue", "shared:q0")
        cov.probe("wq.enqueue", "shared:q0")  # count 2 -> new bucket
        assert cov.end_case() == 1

    def test_json_round_trip(self):
        cov = CoverageMap()
        cov.begin_case()
        cov.probe("state", "wq01e1d2")
        cov.note_state("wq00e0d0")
        cov.end_case()
        clone = CoverageMap.from_json(cov.to_json())
        assert clone.to_json() == cov.to_json()
        assert clone.features == cov.features


class TestExecutor:
    def test_clean_case_reports_no_finding(self):
        topo = _topology()
        ops = generate_case(derive_rng(0, LANE_GUIDED, 0), topo, 2)
        result = execute_case(ops, topo, seed=0, processes=2)
        assert result.finding is None
        assert result.ops_executed == len(ops)

    def test_coverage_instrumentation_observes_execution(self):
        topo = _topology()
        cov = CoverageMap()
        new = 0
        for iteration in range(3):
            ops = generate_case(derive_rng(0, LANE_GUIDED, iteration), topo, 2)
            result = execute_case(
                ops, topo, seed=0, processes=2, coverage=cov
            )
            new += result.new_features
        assert new == cov.features > 0
