"""Campaign-level guarantees: determinism, resume, canaries, reports.

Marked ``fuzz`` (excluded from tier-1); run via
``scripts/run_fuzz_smoke.sh``.
"""

import json
from pathlib import Path

import pytest

from repro.errors import CheckpointError
from repro.experiments.runner import EXIT_CONFIG_MISMATCH, EXIT_DEADLINE
from repro.faults.canary import CANARY_DEVTLB_EVICT, CANARY_ENV, CANARY_WQ_CREDIT
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.campaign import EXIT_FINDINGS, FuzzConfig, run_campaign
from repro.fuzz.report import REPORT_HTML, REPORT_MD, write_report

pytestmark = pytest.mark.fuzz

#: Trial budget for the heavier scenarios — enough for both canaries and
#: for guided coverage to pull ahead of the baseline at seed 0.
BUDGET = 60


def _run(tmp_path, name, config, **kwargs):
    result = run_campaign(config, tmp_path / name, **kwargs)
    if result.completed:
        write_report(result.run_dir)
    return result


def _campaign_bytes(run_dir: Path) -> "dict[str, bytes]":
    """Every determinism-relevant artifact, keyed by relative path.

    The manifest is excluded on purpose: it records wall-clock segments.
    """
    out = {}
    for path in sorted(run_dir.rglob("*")):
        rel = path.relative_to(run_dir).as_posix()
        if path.is_file() and rel != "manifest.json":
            out[rel] = path.read_bytes()
    return out


class TestDeterminism:
    def test_same_seed_same_bytes(self, tmp_path):
        config = FuzzConfig(seed=5, trials=30)
        a = _run(tmp_path, "a", config)
        b = _run(tmp_path, "b", config)
        assert a.clean and b.clean
        assert _campaign_bytes(a.run_dir) == _campaign_bytes(b.run_dir)

    def test_kill_and_resume_equals_uninterrupted(self, tmp_path):
        config = FuzzConfig(seed=5, trials=30)
        full = _run(tmp_path, "full", config)
        part = _run(tmp_path, "part", config, stop_after=11)
        assert not part.completed
        resumed = _run(tmp_path, "part", config, resume=True)
        assert resumed.completed
        assert _campaign_bytes(full.run_dir) == _campaign_bytes(
            resumed.run_dir
        )

    def test_resume_with_different_config_refused(self, tmp_path):
        _run(tmp_path, "c", FuzzConfig(seed=5, trials=10), stop_after=4)
        with pytest.raises(CheckpointError):
            run_campaign(
                FuzzConfig(seed=6, trials=10), tmp_path / "c", resume=True
            )


class TestCleanCampaign:
    def test_unmodified_model_yields_zero_findings(self, tmp_path):
        result = _run(tmp_path, "clean", FuzzConfig(seed=0, trials=BUDGET))
        assert result.clean
        assert not result.findings

    def test_guided_beats_baseline_coverage(self, tmp_path):
        result = _run(
            tmp_path, "cov", FuzzConfig(seed=0, trials=2 * BUDGET)
        )
        assert result.guided_features > result.baseline_features


class TestCanaries:
    @pytest.mark.parametrize(
        ("canary", "detail"),
        [
            (CANARY_WQ_CREDIT, "wq-credits"),
            (CANARY_DEVTLB_EVICT, "devtlb"),
        ],
    )
    def test_canary_found_and_shrunk(self, tmp_path, monkeypatch, canary, detail):
        monkeypatch.setenv(CANARY_ENV, canary)
        config = FuzzConfig(seed=0, trials=BUDGET, baseline=False)
        result = _run(tmp_path, canary, config)
        assert [f["detail"] for f in result.findings] == [detail]
        finding = result.findings[0]
        assert finding["kind"] == "invariant"
        assert finding["ops"] <= 5, "shrunk reproducer must be minimal"
        record = json.loads(
            (result.run_dir / finding["file"]).read_text()
        )
        assert record["canaries"] == canary
        assert len(record["ops"]) == finding["ops"]

    def test_replay_reproduces_with_clean_env(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(CANARY_ENV, CANARY_DEVTLB_EVICT)
        config = FuzzConfig(seed=0, trials=BUDGET, baseline=False)
        result = _run(tmp_path, "replay", config)
        assert result.findings
        finding_path = result.run_dir / result.findings[0]["file"]
        # The canary is recorded in the finding, not taken from the env.
        monkeypatch.delenv(CANARY_ENV)
        assert fuzz_main(["--replay", str(finding_path)]) == EXIT_FINDINGS
        assert "reproduced" in capsys.readouterr().out


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        run_dir = str(tmp_path / "cli")
        argv = ["--seed", "5", "--trials", "12", "--dir", run_dir]
        assert fuzz_main(argv + ["--stop-after", "5"]) == EXIT_DEADLINE
        assert fuzz_main(argv + ["--resume"]) == 0
        assert (tmp_path / "cli" / REPORT_MD).exists()
        assert (
            fuzz_main(["--seed", "6", "--trials", "4", "--dir", run_dir, "--resume"])
            == EXIT_CONFIG_MISMATCH
        )
        capsys.readouterr()


class TestReport:
    def test_report_contents(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CANARY_ENV, CANARY_DEVTLB_EVICT)
        result = _run(
            tmp_path, "rep", FuzzConfig(seed=0, trials=BUDGET, baseline=False)
        )
        md = (result.run_dir / REPORT_MD).read_text()
        html = (result.run_dir / REPORT_HTML).read_text()
        assert "## Coverage growth" in md
        assert "--replay findings/0000.json" in md
        assert f"findings: **{len(result.findings)}**" in md
        assert "<svg" in html and "polyline" in html
