"""End-to-end kill chain: recon -> primitive -> secret recovery.

The full attacker story from Section VI, in one integration test: the
attacker lands on a multi-engine host with no knowledge of the victim's
placement, locates the victim's engine by triggering activity, then runs
the keystroke attack on the located queue and recovers typing times.
"""

import numpy as np
import pytest

from repro.analysis.keystroke_eval import evaluate_keystrokes
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.recon import find_victim_engine
from repro.dsa.descriptor import make_noop
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.hw.units import us_to_cycles
from repro.virt.system import CloudSystem
from repro.workloads.dto import DtoRuntime
from repro.workloads.ssh import SshKeystrokeSession


@pytest.fixture
def host():
    """Three engines; the victim sits on WQ 2 (engine 2)."""
    system = CloudSystem(seed=2024)
    device = system.device
    for engine in range(3):
        device.configure_group(engine, (engine,))
        device.configure_wq(
            WorkQueueConfig(wq_id=engine, size=16, mode=WqMode.SHARED, group_id=engine)
        )
    attacker = system.create_vm("attacker-vm").spawn_process("attacker")
    victim = system.create_vm("victim-vm").spawn_process("victim")
    for wq in range(3):
        system.open_portal(attacker, wq)
    system.open_portal(victim, 2)
    return system, attacker, victim


class TestKillChain:
    def test_recon_then_keystroke_recovery(self, host):
        system, attacker, victim = host

        # Phase 1 — reconnaissance: a temporary connection provokes the
        # victim; the attacker scans all three engines.
        v_portal = victim.portal(2)
        v_comp = victim.comp_record()

        def temporary_connection():
            v_portal.enqcmd(make_noop(victim.pasid, v_comp))

        recon = find_victim_engine(
            attacker, [0, 1, 2], temporary_connection, system.timeline, windows=5
        )
        assert recon.confident
        target_wq = recon.best.wq_id
        assert target_wq == 2

        # Phase 2 — the victim types over SSH with DTO enabled.
        dto = DtoRuntime(victim, wq_id=2)
        session = SshKeystrokeSession(dto, np.random.default_rng(7))
        truth_events = session.schedule_typing(
            system.timeline, "cat /etc/shadow" * 3, system.clock.now
        )
        start = system.clock.now
        truth = np.array([start + us_to_cycles(e.time_us) for e in truth_events])

        # Phase 3 — Prime+Probe on the located engine.
        attack = DsaDevTlbAttack(attacker, wq_id=target_wq)
        attack.calibrate(samples=40)
        attack.prime()
        period = us_to_cycles(4_000)
        detected = []
        while system.clock.now < truth[-1] + 4 * period:
            system.timeline.idle_until(system.clock.now + period)
            outcome = attack.probe()
            if outcome.evicted:
                detected.append(outcome.timestamp - period // 2)

        evaluation = evaluate_keystrokes(truth, np.array(detected))
        assert evaluation.f1 > 0.9
        assert evaluation.timestamp_std_ms < 2.0

    def test_wrong_engine_recovers_nothing(self, host):
        """Control: probing a non-victim engine yields no events."""
        system, attacker, victim = host
        dto = DtoRuntime(victim, wq_id=2)
        session = SshKeystrokeSession(dto, np.random.default_rng(8))
        session.schedule_typing(system.timeline, "ls -la", system.clock.now)

        attack = DsaDevTlbAttack(attacker, wq_id=0)  # wrong engine
        attack.calibrate(samples=30)
        attack.prime()
        period = us_to_cycles(4_000)
        detections = 0
        for _ in range(400):
            system.timeline.idle_until(system.clock.now + period)
            detections += attack.probe().evicted
        assert detections == 0
