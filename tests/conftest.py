"""Shared fixtures: a minimal single-host DSA setup.

The virtualization layer (``repro.virt``) provides the full two-VM attack
topology; these fixtures give lower-level tests a bare device with one
shared work queue bound to one engine, plus helper factories for
processes (address space + PASID + portal).
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.dsa.device import DsaDevice, DsaDeviceConfig
from repro.dsa.portal import Portal
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.hw.clock import TscClock
from repro.hw.memory import PhysicalMemory
from repro.hw.pagetable import AddressSpace
from repro.hw.units import PAGE_SIZE


@dataclass
class Host:
    """A bare host: memory, clock, rng, and a DSA with WQ 0 -> engine 0."""

    memory: PhysicalMemory
    clock: TscClock
    rng: np.random.Generator
    device: DsaDevice
    _next_pasid: int = 1

    def new_process(self, wq_id: int = 0, base_va: int = 0x10_0000_0000) -> "Proc":
        """Create a process with its own address space, PASID, and portal."""
        space = AddressSpace(self.memory, base_va=base_va)
        pasid = self._next_pasid
        self._next_pasid += 1
        self.device.bind_process(pasid, space)
        portal = Portal(self.device, wq_id=wq_id, pasid=pasid)
        return Proc(space=space, pasid=pasid, portal=portal, host=self)


@dataclass
class Proc:
    """A guest process bound to the device."""

    space: AddressSpace
    pasid: int
    portal: Portal
    host: Host

    def buffer(self, size: int = PAGE_SIZE, huge: bool = False) -> int:
        """Map a fresh buffer and return its VA."""
        return self.space.mmap(size, huge=huge)

    def comp_record(self) -> int:
        """Map a page for a completion record (32-byte aligned by nature)."""
        return self.space.mmap(PAGE_SIZE)

    def write(self, va: int, data: bytes) -> None:
        """Write into the process's memory."""
        self.space.write(va, data)

    def read(self, va: int, size: int) -> bytes:
        """Read from the process's memory."""
        return self.space.read(va, size)


def build_host(
    seed: int = 1234,
    wq_size: int = 16,
    engine_count: int = 2,
    config: DsaDeviceConfig | None = None,
) -> Host:
    """Construct the standard single-queue test host."""
    memory = PhysicalMemory(total_bytes=8 * 1024 * 1024 * 1024)
    clock = TscClock()
    rng = np.random.default_rng(seed)
    device = DsaDevice(
        memory, clock, rng, config or DsaDeviceConfig(engine_count=engine_count)
    )
    device.configure_group(0, tuple(range(engine_count))[:1])
    device.configure_wq(
        WorkQueueConfig(wq_id=0, size=wq_size, mode=WqMode.SHARED, group_id=0)
    )
    return Host(memory=memory, clock=clock, rng=rng, device=device)


@pytest.fixture
def host() -> Host:
    return build_host()


@pytest.fixture
def proc(host) -> Proc:
    return host.new_process()
