"""Hypothesis property tests for the multi-actor timeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.clock import TscClock
from repro.virt.scheduler import Timeline


class TestTimelineProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=10**7), min_size=1, max_size=60)
    )
    @settings(max_examples=60, deadline=None)
    def test_actions_execute_in_time_order(self, times):
        clock = TscClock()
        timeline = Timeline(clock)
        fired: list[int] = []
        for when in times:
            timeline.schedule_at(when, lambda when=when: fired.append(when))
        timeline.run_until(max(times))
        assert fired == sorted(times)
        assert timeline.pending == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_until_respects_horizon(self, times, horizon):
        clock = TscClock()
        timeline = Timeline(clock)
        fired: list[int] = []
        for when in times:
            timeline.schedule_at(when, lambda when=when: fired.append(when))
        executed = timeline.run_until(horizon)
        assert executed == sum(1 for t in times if t <= horizon)
        assert all(t <= horizon for t in fired)
        assert timeline.pending == len(times) - executed

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_clock_at_event_times_during_execution(self, times):
        clock = TscClock()
        timeline = Timeline(clock)
        observed: list[tuple[int, int]] = []
        for when in times:
            timeline.schedule_at(
                when, lambda when=when: observed.append((when, clock.now))
            )
        timeline.run_until(max(times))
        for scheduled, at_clock in observed:
            assert at_clock >= scheduled  # never early
        # Clock never runs backwards across actions.
        clock_times = [c for _, c in observed]
        assert clock_times == sorted(clock_times)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_actions_scheduling_actions(self, pairs):
        """Self-rescheduling actions (scrubber/detector pattern) drain."""
        clock = TscClock()
        timeline = Timeline(clock)
        fired = []

        def chain(first, second):
            fired.append(first)
            timeline.schedule_at(clock.now + second, lambda: fired.append(second))

        for first, second in pairs:
            timeline.schedule_at(first, lambda f=first, s=second: chain(f, s))
        timeline.run_until(3 * 10**6)
        assert len(fired) == 2 * len(pairs)
