"""Process teardown lifecycle — and the DevTLB residue it leaves."""

import pytest

from repro.ats.devtlb import FieldType
from repro.dsa.descriptor import make_noop
from repro.errors import ConfigurationError
from repro.virt.system import AttackTopology, CloudSystem


class TestDestroyProcess:
    def test_pasid_recycled_and_bindings_removed(self):
        system = CloudSystem(seed=31)
        vm = system.create_vm("vm1")
        proc = vm.spawn_process("worker")
        pasid = proc.pasid
        system.destroy_process(proc)
        assert not system.device.pasid_table.is_bound(pasid)
        assert not system.pasid_allocator.is_live(pasid)
        with pytest.raises(ConfigurationError):
            vm.process("worker")
        # The PASID can be handed to a new process.
        fresh = vm.spawn_process("worker2")
        assert fresh.pasid == pasid

    def test_double_destroy_rejected(self):
        system = CloudSystem(seed=32)
        proc = system.create_vm("vm1").spawn_process("p")
        system.destroy_process(proc)
        with pytest.raises(ConfigurationError):
            system.destroy_process(proc)

    def test_iotlb_scrubbed_on_teardown(self):
        system = CloudSystem(seed=33)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        victim = handles.victim
        comp = victim.comp_record()
        victim.portal(0).submit_wait(make_noop(victim.pasid, comp))
        assert system.device.agent.iotlb.occupancy > 0
        before = system.device.agent.iotlb.occupancy
        system.destroy_process(victim)
        assert system.device.agent.iotlb.occupancy < before

    def test_devtlb_residue_survives_teardown(self):
        """The vulnerability's afterlife: the dead victim's translation
        stays in the DevTLB, and the attacker can still read its
        presence (a hit on a fresh probe would be absent otherwise)."""
        system = CloudSystem(seed=34)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        victim = handles.victim
        v_comp = victim.comp_record()
        victim.portal(handles.victim_wq).submit_wait(
            make_noop(victim.pasid, v_comp)
        )
        victim_page = v_comp >> 12
        dead_pasid = victim.pasid
        system.destroy_process(victim)
        devtlb = system.device.devtlb
        assert victim_page in devtlb.cached_pages(0, FieldType.COMP)
        # ... and since sub-entries carry no PASID tag, any process "hits"
        # on the dead process's page number.
        assert devtlb.peek(0, FieldType.COMP, victim_page, handles.attacker.pasid)