"""Tests for VMs, processes, portal mapping, and the attack topologies."""

import pytest

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import make_noop
from repro.errors import ConfigurationError
from repro.virt.system import AttackTopology, CloudSystem


class TestVmLifecycle:
    def test_create_vm_and_process(self):
        system = CloudSystem()
        vm = system.create_vm("vm1")
        proc = vm.spawn_process("worker")
        assert proc.pasid >= 1
        assert vm.process("worker") is proc

    def test_duplicate_vm_rejected(self):
        system = CloudSystem()
        system.create_vm("vm1")
        with pytest.raises(ConfigurationError):
            system.create_vm("vm1")

    def test_duplicate_process_rejected(self):
        system = CloudSystem()
        vm = system.create_vm("vm1")
        vm.spawn_process("p")
        with pytest.raises(ConfigurationError):
            vm.spawn_process("p")

    def test_unknown_process_rejected(self):
        system = CloudSystem()
        vm = system.create_vm("vm1")
        with pytest.raises(ConfigurationError):
            vm.process("ghost")

    def test_processes_get_distinct_pasids(self):
        system = CloudSystem()
        vm1 = system.create_vm("vm1")
        vm2 = system.create_vm("vm2")
        a = vm1.spawn_process("a")
        b = vm2.spawn_process("b")
        assert a.pasid != b.pasid

    def test_vm_memory_isolation(self):
        """Same VA in two VMs maps to different physical frames."""
        system = CloudSystem()
        a = system.create_vm("vm1").spawn_process("a")
        b = system.create_vm("vm2").spawn_process("b")
        va_a = a.buffer()
        va_b = b.buffer()
        a.write(va_a, b"AAAA")
        b.write(va_b, b"BBBB")
        assert a.read(va_a, 4) == b"AAAA"
        assert b.read(va_b, 4) == b"BBBB"

    def test_unopened_portal_rejected(self):
        system = CloudSystem()
        proc = system.create_vm("vm1").spawn_process("p")
        with pytest.raises(ConfigurationError):
            proc.portal(0)


class TestTopologies:
    def test_e0_shares_queue(self):
        system = CloudSystem()
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        assert handles.attacker_wq == handles.victim_wq
        assert handles.shared_engine

    def test_e1_separate_queues_same_engine(self):
        system = CloudSystem()
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        assert handles.attacker_wq != handles.victim_wq
        device = system.device
        assert (
            device.group_of_wq(handles.attacker_wq).engine_ids
            == device.group_of_wq(handles.victim_wq).engine_ids
        )

    def test_e2_separate_engines(self):
        system = CloudSystem()
        handles = system.setup_topology(AttackTopology.E2_SEPARATE_WQ_SEPARATE_ENGINE)
        device = system.device
        attacker_engines = set(device.group_of_wq(handles.attacker_wq).engine_ids)
        victim_engines = set(device.group_of_wq(handles.victim_wq).engine_ids)
        assert attacker_engines.isdisjoint(victim_engines)

    @pytest.mark.parametrize("topology", list(AttackTopology))
    def test_both_processes_can_submit(self, topology):
        system = CloudSystem()
        handles = system.setup_topology(topology)
        for proc in (handles.attacker, handles.victim):
            comp = proc.comp_record()
            result = proc.portal(
                handles.attacker_wq if proc is handles.attacker else handles.victim_wq
            ).submit_wait(make_noop(proc.pasid, comp))
            assert result.record.status is CompletionStatus.SUCCESS


class TestTimeline:
    def test_actions_run_in_time_order(self):
        system = CloudSystem()
        order = []
        system.timeline.schedule_at(500, lambda: order.append("b"))
        system.timeline.schedule_at(100, lambda: order.append("a"))
        system.timeline.schedule_at(900, lambda: order.append("c"))
        executed = system.timeline.run_until(600)
        assert executed == 2
        assert order == ["a", "b"]
        assert system.timeline.pending == 1

    def test_clock_advances_to_event_times(self):
        system = CloudSystem()
        seen = []
        system.timeline.schedule_at(1000, lambda: seen.append(system.clock.now))
        system.timeline.idle_until(2000)
        assert seen == [1000]
        assert system.clock.now == 2000

    def test_late_events_run_at_current_time(self):
        system = CloudSystem()
        system.clock.advance(5000)
        seen = []
        system.timeline.schedule_at(100, lambda: seen.append(system.clock.now))
        system.timeline.run_until(system.clock.now)
        assert seen == [5000]

    def test_same_time_events_fifo(self):
        system = CloudSystem()
        order = []
        system.timeline.schedule_at(100, lambda: order.append(1))
        system.timeline.schedule_at(100, lambda: order.append(2))
        system.timeline.run_until(100)
        assert order == [1, 2]

    def test_idle_for_us(self):
        system = CloudSystem()
        system.timeline.idle_for_us(10)
        assert system.clock.now == 20_000

    def test_clear_and_next_event(self):
        system = CloudSystem()
        assert system.timeline.next_event_time() is None
        system.timeline.schedule_at(42, lambda: None)
        assert system.timeline.next_event_time() == 42
        system.timeline.clear()
        assert system.timeline.pending == 0


class TestCrossVmLeakSurface:
    def test_e1_cross_vm_devtlb_eviction(self):
        """The headline E1 result: victim on a different VM and different
        WQ (same engine) evicts the attacker's DevTLB entry."""
        system = CloudSystem()
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attacker, victim = handles.attacker, handles.victim
        a_comp = attacker.comp_record()
        v_comp = victim.comp_record()

        a_portal = attacker.portal(handles.attacker_wq)
        v_portal = victim.portal(handles.victim_wq)

        a_portal.submit_wait(make_noop(attacker.pasid, a_comp))  # prime
        hit = a_portal.submit_wait(make_noop(attacker.pasid, a_comp))
        v_portal.submit_wait(make_noop(victim.pasid, v_comp))  # victim evicts
        miss = a_portal.submit_wait(make_noop(attacker.pasid, a_comp))
        assert miss.latency_cycles > hit.latency_cycles + 300

    def test_e2_no_cross_engine_eviction(self):
        system = CloudSystem()
        handles = system.setup_topology(AttackTopology.E2_SEPARATE_WQ_SEPARATE_ENGINE)
        attacker, victim = handles.attacker, handles.victim
        a_comp = attacker.comp_record()
        v_comp = victim.comp_record()
        a_portal = attacker.portal(handles.attacker_wq)
        v_portal = victim.portal(handles.victim_wq)

        a_portal.submit_wait(make_noop(attacker.pasid, a_comp))  # prime
        v_portal.submit_wait(make_noop(victim.pasid, v_comp))  # different engine
        probe = a_portal.submit_wait(make_noop(attacker.pasid, a_comp))
        assert probe.latency_cycles < 700  # still a hit
