"""Unit and property tests for the covert protocol pieces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covert.protocol import CovertConfig, CovertSender
from repro.hw.units import us_to_cycles
from repro.virt.system import AttackTopology, CloudSystem


def _sender(config, seed=0, evict=True):
    system = CloudSystem(seed=seed)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    sender = CovertSender(
        handles.victim, handles.victim_wq, config, system.rng, evict_devtlb=evict
    )
    return system, sender


class TestSenderScheduling:
    def test_preamble_prepended(self):
        config = CovertConfig(preamble_ones=5)
        system, sender = _sender(config)
        payload = np.array([0, 1, 0], dtype=np.int8)
        bits = sender.schedule_message(system.timeline, payload, system.clock.now)
        assert list(bits[:5]) == [1] * 5
        assert list(bits[5:]) == [0, 1, 0]

    def test_zero_bits_schedule_nothing(self):
        config = CovertConfig(preamble_ones=1)
        system, sender = _sender(config)
        payload = np.zeros(10, dtype=np.int8)
        sender.schedule_message(system.timeline, payload, system.clock.now)
        # 1 preamble one, 0 payload ones.
        assert sender.bits_scheduled == 1

    def test_burst_pulses_only_in_burst_section(self):
        config = CovertConfig(
            preamble_ones=6, preamble_burst_bits=2, sender_jitter_us=0.0,
            preamble_jitter_us=0.0,
        )
        system, sender = _sender(config)
        payload = np.array([1], dtype=np.int8)
        before = system.timeline.pending
        sender.schedule_message(
            system.timeline, payload, system.clock.now, preamble_pulses=4
        )
        scheduled = system.timeline.pending - before
        # 2 burst bits x 4 pulses + 4 single preamble + 1 payload = 13.
        assert scheduled == 13

    def test_events_never_before_start(self):
        config = CovertConfig(sender_jitter_us=500.0)  # huge jitter
        system, sender = _sender(config)
        start = system.clock.now + us_to_cycles(100)
        sender.schedule_message(
            system.timeline, np.ones(20, dtype=np.int8), start
        )
        assert system.timeline.next_event_time() >= start

    @given(st.integers(1, 30), st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_bit_count_bookkeeping(self, preamble, payload_ones):
        config = CovertConfig(preamble_ones=preamble)
        system, sender = _sender(config)
        payload = np.concatenate(
            [np.ones(payload_ones, dtype=np.int8), np.zeros(5, dtype=np.int8)]
        )
        sender.schedule_message(system.timeline, payload, system.clock.now)
        assert sender.bits_scheduled == preamble + payload_ones


class TestConfigValidation:
    def test_negative_preamble_jitter_allowed_zero(self):
        CovertConfig(preamble_jitter_us=0.0)

    @pytest.mark.parametrize("window", [42.5, 110.0, 249.0])
    def test_raw_rate(self, window):
        assert CovertConfig(bit_window_us=window).raw_bps == pytest.approx(
            1e6 / window
        )
