"""Unit and property tests for covert-channel framing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covert.framing import (
    FRAME_BITS,
    FRAME_PAYLOAD_BITS,
    DecodeReport,
    Frame,
    bits_to_bytes,
    bytes_to_bits,
    crc8,
    decode_frames,
    frame_message,
    goodput_bps,
)


class TestCrc:
    def test_deterministic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int8)
        assert crc8(bits) == crc8(bits)

    def test_detects_single_bit_flip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=36).astype(np.int8)
        original = crc8(bits)
        for position in range(len(bits)):
            flipped = bits.copy()
            flipped[position] ^= 1
            assert crc8(flipped) != original

    def test_range(self):
        assert 0 <= crc8(np.ones(50, dtype=np.int8)) <= 0xFF


class TestBitConversions:
    def test_roundtrip(self):
        data = b"DSAssassin!"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_bits(b"")

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestFrame:
    def test_encode_decode_roundtrip(self):
        payload = np.ones(FRAME_PAYLOAD_BITS, dtype=np.int8)
        frame = Frame(sequence=5, payload=payload)
        decoded = Frame.decode(frame.encode())
        assert decoded is not None
        assert decoded.sequence == 5
        assert np.array_equal(decoded.payload, payload)

    def test_corruption_rejected(self):
        frame = Frame(sequence=1, payload=np.zeros(FRAME_PAYLOAD_BITS, dtype=np.int8))
        bits = frame.encode()
        bits[10] ^= 1
        assert Frame.decode(bits) is None

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            Frame.decode(np.zeros(10, dtype=np.int8))


class TestMessageFraming:
    def test_clean_channel_recovers_message(self):
        message = b"attack at dawn"
        report = decode_frames(frame_message(message))
        assert report.frames_rejected == 0
        assert report.data[: len(message)] == message

    def test_stream_length_is_frame_multiple(self):
        stream = frame_message(b"xy")
        assert len(stream) % FRAME_BITS == 0

    def test_corrupted_frame_is_isolated(self):
        message = b"0123456789abcdef"  # 4 frames of 32 payload bits
        stream = frame_message(message)
        stream[FRAME_BITS + 3] ^= 1  # corrupt only frame 1
        report = decode_frames(stream)
        assert report.frames_rejected == 1
        assert report.frames_accepted == report.frames_total - 1
        # Frames 0, 2, 3 carry their bytes through unharmed.
        assert report.data[:4] == message[:4]
        assert report.data[8:16] == message[8:16]

    @given(st.binary(min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_lossless_roundtrip_property(self, message):
        report = decode_frames(frame_message(message))
        assert report.frame_acceptance_rate == 1.0
        assert report.data[: len(message)] == message


class TestGoodput:
    def test_perfect_channel(self):
        report = DecodeReport(data=b"", frames_total=10, frames_accepted=10, frames_rejected=0)
        expected = 1000.0 * FRAME_PAYLOAD_BITS / FRAME_BITS
        assert goodput_bps(report, 1000.0) == pytest.approx(expected)

    def test_dead_channel(self):
        report = DecodeReport(data=b"", frames_total=10, frames_accepted=0, frames_rejected=10)
        assert goodput_bps(report, 1000.0) == 0.0

    def test_negative_rate_rejected(self):
        report = DecodeReport(data=b"", frames_total=1, frames_accepted=1, frames_rejected=0)
        with pytest.raises(ValueError):
            goodput_bps(report, -1.0)


class TestEndToEndFraming:
    def test_framed_transfer_over_devtlb_channel(self):
        """Ship real bytes across the VM boundary with CRC validation."""
        from repro.covert.channel import DevTlbCovertReceiver
        from repro.covert.protocol import CovertConfig, CovertSender
        from repro.core.devtlb_attack import DsaDevTlbAttack
        from repro.hw.units import us_to_cycles
        from repro.virt.system import AttackTopology, CloudSystem

        message = b"exfil"
        config = CovertConfig(sender_jitter_us=3.0)
        system = CloudSystem(seed=31)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=40)
        sender = CovertSender(
            handles.victim, handles.victim_wq, config, system.rng, evict_devtlb=True
        )
        receiver = DevTlbCovertReceiver(attack, config)

        stream = frame_message(message)
        start = system.clock.now + us_to_cycles(5 * config.bit_window_us)
        sender.schedule_message(system.timeline, stream, start)
        estimated = receiver.synchronize(system.timeline)
        received = receiver.receive(system.timeline, estimated, len(stream))
        report = decode_frames(received)
        assert report.frame_acceptance_rate > 0.5
        if report.frames_rejected == 0:
            assert report.data[: len(message)] == message
