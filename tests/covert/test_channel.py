"""End-to-end covert channel tests (headline claims of Section VI-A)."""

import numpy as np
import pytest

from repro.covert.channel import run_devtlb_covert_channel, run_swq_covert_channel
from repro.covert.protocol import CovertConfig


class TestConfig:
    def test_raw_rate_from_window(self):
        assert CovertConfig(bit_window_us=100.0).raw_bps == pytest.approx(10_000)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bit_window_us": 0},
            {"preamble_ones": 0},
            {"sender_jitter_us": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CovertConfig(**kwargs)


class TestDevTlbChannel:
    def test_near_noiseless_transmission_is_exact(self):
        config = CovertConfig(sender_jitter_us=0.5, preamble_jitter_us=0.5)
        result = run_devtlb_covert_channel(payload_bits=128, seed=42, config=config)
        assert result.error_rate == 0.0
        assert np.array_equal(result.sent, result.received)

    def test_default_channel_meets_paper_band(self):
        """Paper: ~17.19 kbps true capacity at ~4.63% BER."""
        results = [
            run_devtlb_covert_channel(payload_bits=256, seed=seed)
            for seed in range(4)
        ]
        mean_ber = np.mean([r.error_rate for r in results])
        mean_true = np.mean([r.true_bps for r in results])
        assert mean_ber < 0.10
        assert mean_true > 14_000

    def test_raw_rate_reported(self):
        result = run_devtlb_covert_channel(payload_bits=64, seed=0)
        assert result.raw_bps == pytest.approx(1_000_000 / 42.5)
        assert result.bits == 64

    def test_higher_rate_higher_error(self):
        """The Fig. 9 trade-off: shrinking the window raises the BER."""
        slow = run_devtlb_covert_channel(
            payload_bits=192, seed=3, config=CovertConfig(bit_window_us=100.0)
        )
        fast = run_devtlb_covert_channel(
            payload_bits=192, seed=3, config=CovertConfig(bit_window_us=25.0)
        )
        assert fast.error_rate > slow.error_rate


class TestSwqChannel:
    def test_near_noiseless_transmission_is_exact(self):
        config = CovertConfig(
            bit_window_us=110.0,
            sender_jitter_us=0.5,
            preamble_jitter_us=0.5,
            preamble_ones=16,
            preamble_burst_bits=4,
        )
        result = run_swq_covert_channel(payload_bits=64, seed=7, config=config)
        assert result.error_rate == 0.0

    def test_default_channel_meets_paper_band(self):
        """Paper: ~4.02 kbps true capacity at ~13.11% BER."""
        results = [
            run_swq_covert_channel(payload_bits=128, seed=seed) for seed in range(4)
        ]
        mean_ber = np.mean([r.error_rate for r in results])
        mean_true = np.mean([r.true_bps for r in results])
        assert mean_ber < 0.20
        assert mean_true > 3_000

    def test_swq_slower_but_timer_free(self):
        """SWQ trades rate for needing no rdtsc at all."""
        swq = run_swq_covert_channel(payload_bits=64, seed=1)
        devtlb = run_devtlb_covert_channel(payload_bits=64, seed=1)
        assert swq.raw_bps < devtlb.raw_bps
