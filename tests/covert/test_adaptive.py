"""Tests for adaptive rate selection."""

import numpy as np
import pytest

from repro.covert.adaptive import AdaptiveResult, RateProbe, find_best_rate
from repro.covert.channel import CovertChannelResult
from repro.covert.metrics import true_capacity


def synthetic_probe(peak_window=42.5, sigma_us=11.0):
    """A channel whose BER follows the analytic slip model."""
    from scipy.stats import norm

    def probe(window_us):
        raw = 1e6 / window_us
        slip = 2 * norm.cdf(-window_us / (2 * sigma_us))
        ber = min(0.75 * slip, 0.5)
        return CovertChannelResult(
            sent=np.zeros(1, dtype=np.int8),
            received=np.zeros(1, dtype=np.int8),
            raw_bps=raw,
            error_rate=ber,
            true_bps=true_capacity(raw, ber),
        )

    return probe


class TestFindBestRate:
    def test_finds_the_capacity_peak(self):
        result = find_best_rate(synthetic_probe())
        windows = [p.bit_window_us for p in result.probes]
        capacities = {p.bit_window_us: p.true_bps for p in result.probes}
        assert result.best.true_bps == max(capacities.values())
        assert 30.0 <= result.best.bit_window_us <= 65.0

    def test_stops_after_consecutive_drops(self):
        result = find_best_rate(synthetic_probe(), stop_after_drops=2)
        # The full ladder has 6 rungs; the search should cut the tail.
        assert result.probes_spent <= 6

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            find_best_rate(synthetic_probe(), window_ladder=())

    def test_invalid_stop_rejected(self):
        with pytest.raises(ValueError):
            find_best_rate(synthetic_probe(), stop_after_drops=0)

    def test_monotone_channel_walks_whole_ladder(self):
        """With negligible jitter, faster is always better: no early stop."""
        result = find_best_rate(synthetic_probe(sigma_us=0.5))
        assert result.probes_spent == 6
        assert result.best.bit_window_us == 22.0

    def test_end_to_end_against_real_devtlb_channel(self):
        """Ladder search over the actual simulated channel."""
        from repro.covert.channel import run_devtlb_covert_channel
        from repro.covert.protocol import CovertConfig

        def probe(window_us):
            return run_devtlb_covert_channel(
                payload_bits=96,
                seed=17,
                config=CovertConfig(bit_window_us=window_us),
            )

        result = find_best_rate(probe, window_ladder=(150.0, 65.0, 42.5, 25.0))
        assert result.best.true_bps > 10_000
