"""Unit tests for receiver internals (geometry and phase fitting)."""

import numpy as np
import pytest

from repro.covert.channel import DevTlbCovertReceiver, SwqCovertReceiver
from repro.covert.protocol import CovertConfig
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.errors import ConfigurationError
from repro.hw.units import us_to_cycles
from repro.virt.system import AttackTopology, CloudSystem


class TestSwqReceiverGeometry:
    def test_anchor_scales_with_window(self):
        small = SwqCovertReceiver.anchor_bytes_for_window(50.0)
        large = SwqCovertReceiver.anchor_bytes_for_window(500.0)
        assert large == pytest.approx(10 * small, rel=0.01)

    def test_anchor_never_below_a_page(self):
        assert SwqCovertReceiver.anchor_bytes_for_window(0.01) >= 4096

    def test_sensing_span_centered_on_bit(self):
        config = CovertConfig(bit_window_us=110.0)
        system = CloudSystem(seed=1)
        system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=16)
        attacker = system.vms["attacker-vm"].process("attacker")
        attack = DsaSwqAttack(attacker, wq_id=0, anchor_bytes=1 << 21)
        receiver = SwqCovertReceiver(attack, config)
        window = us_to_cycles(config.bit_window_us)
        sensing_start = receiver._round_lead + receiver._congest_cycles
        sensing_end = sensing_start + receiver._idle_cycles
        mid = (sensing_start + sensing_end) / 2
        assert mid == pytest.approx(0.5 * window, rel=0.02)

    def test_custom_idle_span(self):
        config = CovertConfig(bit_window_us=110.0)
        system = CloudSystem(seed=2)
        system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=16)
        attacker = system.vms["attacker-vm"].process("attacker")
        attack = DsaSwqAttack(attacker, wq_id=0, anchor_bytes=1 << 21)
        wide = SwqCovertReceiver(attack, config, idle_span=0.7)
        narrow = SwqCovertReceiver(attack, config, idle_span=0.3)
        assert wide._idle_cycles > 2 * narrow._idle_cycles


class TestDevTlbPhaseFit:
    def _fit(self, centers, window=1000):
        return DevTlbCovertReceiver._align_to_preamble(
            np.asarray(centers, dtype=np.float64), window
        )

    def test_perfect_centers_recover_origin(self):
        window = 1000
        t0 = 12_345
        centers = [t0 + (k + 0.5) * window for k in range(8)]
        assert abs(self._fit(centers, window) - t0) < 2

    def test_jittered_centers_recover_origin(self):
        rng = np.random.default_rng(3)
        window = 1000
        t0 = 50_000
        centers = [
            t0 + (k + 0.5) * window + rng.normal(0, 120) for k in range(10)
        ]
        assert abs(self._fit(centers, window) - t0) < 150

    def test_isolated_outlier_does_not_shift_origin(self):
        """A stray hit well before the preamble (what a noise spike that
        slipped past the sync threshold looks like) is discarded by the
        run-anchoring; only *adjacent* strays are irreducible, which is
        why scanning uses a raised threshold in the first place."""
        window = 1000
        t0 = 9_000
        centers = [t0 - 3.5 * window]  # isolated stray, 3+ windows early
        centers += [t0 + (k + 0.5) * window for k in range(8)]
        assert abs(self._fit(centers, window) - t0) < 100

    def test_sync_failure_raises(self):
        config = CovertConfig(bit_window_us=42.5)
        system = CloudSystem(seed=4)
        handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
        attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
        attack.calibrate(samples=30)
        receiver = DevTlbCovertReceiver(attack, config)
        with pytest.raises(ConfigurationError):
            receiver.synchronize(system.timeline, max_windows=20)  # silence
