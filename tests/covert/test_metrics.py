"""Unit and property tests for covert-channel metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covert.metrics import (
    binary_entropy,
    bit_error_rate,
    random_bits,
    true_capacity,
)


class TestBinaryEntropy:
    def test_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)

    @given(st.floats(min_value=0.001, max_value=0.499))
    def test_monotone_below_half(self, p):
        assert binary_entropy(p) < binary_entropy(p + 0.001)


class TestBitErrorRate:
    def test_identical_is_zero(self):
        bits = np.array([0, 1, 1, 0])
        assert bit_error_rate(bits, bits) == 0.0

    def test_counts_differences(self):
        assert bit_error_rate(np.array([0, 1, 1, 0]), np.array([1, 1, 1, 1])) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.array([1]), np.array([1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.array([]), np.array([]))


class TestTrueCapacity:
    def test_perfect_channel(self):
        assert true_capacity(1000.0, 0.0) == 1000.0

    def test_useless_channel(self):
        assert true_capacity(1000.0, 0.5) == pytest.approx(0.0)

    def test_paper_devtlb_point(self):
        """raw 23.5 kbps at 4.63% error gives ~17.2 kbps true capacity."""
        assert true_capacity(23_530, 0.0463) == pytest.approx(17_100, rel=0.02)

    def test_above_half_clamped(self):
        assert true_capacity(1000, 0.9) == pytest.approx(true_capacity(1000, 0.1))

    def test_negative_raw_rejected(self):
        with pytest.raises(ValueError):
            true_capacity(-1, 0.1)

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=0.5),
    )
    @settings(max_examples=100)
    def test_capacity_bounded_by_raw(self, raw, p):
        capacity = true_capacity(raw, p)
        assert 0 <= capacity <= raw + 1e-9


class TestRandomBits:
    def test_length_and_values(self):
        bits = random_bits(np.random.default_rng(0), 100)
        assert bits.shape == (100,)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            random_bits(np.random.default_rng(0), 0)

    def test_roughly_balanced(self):
        bits = random_bits(np.random.default_rng(1), 10_000)
        assert 0.45 < bits.mean() < 0.55
