"""Unit and property tests for descriptor encode/decode and field streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ats.devtlb import FieldType
from repro.dsa.descriptor import (
    DESCRIPTOR_SIZE,
    BatchDescriptor,
    Descriptor,
    make_dualcast,
    make_memcmp,
    make_memcpy,
    make_noop,
    spans_pages,
)
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.errors import InvalidDescriptorError


class TestFieldAccesses:
    def test_noop_touches_only_comp(self):
        desc = make_noop(pasid=1, completion_addr=0x1000)
        fields = [a.field_type for a in desc.field_accesses()]
        assert fields == [FieldType.COMP]

    def test_memcpy_fields(self):
        desc = make_memcpy(pasid=1, src=0x1000, dst=0x2000, size=64, completion_addr=0x3000)
        fields = [(a.field_type, a.write) for a in desc.field_accesses()]
        assert fields == [
            (FieldType.SRC, False),
            (FieldType.DST, True),
            (FieldType.COMP, True),
        ]

    def test_memcmp_uses_src2_not_dst(self):
        """The byte-24 slot is src2 for compares (Listing 4's overlap)."""
        desc = make_memcmp(pasid=1, src=0x1000, src2=0x2000, size=64, completion_addr=0x3000)
        fields = [a.field_type for a in desc.field_accesses()]
        assert FieldType.SRC2 in fields
        assert FieldType.DST not in fields

    def test_dualcast_has_two_destinations(self):
        desc = make_dualcast(
            pasid=1, src=0x1000, dst=0x2000, dst2=0x4000, size=64, completion_addr=0x3000
        )
        fields = [a.field_type for a in desc.field_accesses()]
        assert fields == [
            FieldType.SRC,
            FieldType.DST,
            FieldType.DST2,
            FieldType.COMP,
        ]

    def test_comp_always_last(self):
        desc = make_memcpy(pasid=1, src=0, dst=0x2000, size=8, completion_addr=0x3000)
        assert desc.field_accesses()[-1].field_type == FieldType.COMP

    def test_batch_has_no_devtlb_streams(self):
        batch = BatchDescriptor(pasid=1, desc_list_addr=0x1000, count=4)
        # batches bypass the DevTLB; Descriptor.field_accesses only covers
        # work descriptors, and BatchDescriptor never reaches an engine PU.
        assert batch.opcode is Opcode.BATCH

    def test_no_completion_record_flag_drops_comp_stream(self):
        desc = Descriptor(
            opcode=Opcode.NOOP, pasid=1, flags=DescriptorFlags.NONE
        )
        assert desc.field_accesses() == []

    def test_pages_touched_counts_cross_page(self):
        desc = make_memcpy(
            pasid=1, src=0x1F00, dst=0x5000, size=0x200, completion_addr=0x9000
        )
        # src spans 2 pages, dst 1, comp 1
        assert desc.pages_touched() == 4

    def test_field_access_pages(self):
        desc = make_memcpy(pasid=1, src=0xFFF, dst=0x5000, size=2, completion_addr=0x9000)
        src_access = desc.field_accesses()[0]
        assert src_access.pages() == [0, 1]


class TestValidation:
    def test_zero_pasid_rejected(self):
        with pytest.raises(InvalidDescriptorError):
            make_noop(pasid=0, completion_addr=0x1000).validate()

    def test_misaligned_completion_rejected(self):
        with pytest.raises(InvalidDescriptorError):
            make_noop(pasid=1, completion_addr=0x1001).validate()

    def test_zero_size_data_op_rejected(self):
        with pytest.raises(InvalidDescriptorError):
            make_memcpy(pasid=1, src=0, dst=0x1000, size=0, completion_addr=0x2000).validate()

    def test_noop_zero_size_allowed(self):
        make_noop(pasid=1, completion_addr=0x1000).validate()

    def test_batch_count_validated(self):
        with pytest.raises(InvalidDescriptorError):
            BatchDescriptor(pasid=1, desc_list_addr=0x1000, count=0).validate()

    def test_batch_list_bytes(self):
        batch = BatchDescriptor(pasid=1, desc_list_addr=0x1000, count=4)
        assert batch.list_bytes() == 4 * DESCRIPTOR_SIZE


class TestWireFormat:
    def test_encode_is_64_bytes(self):
        desc = make_noop(pasid=1, completion_addr=0x1000)
        assert len(desc.encode()) == DESCRIPTOR_SIZE

    def test_roundtrip(self):
        desc = make_dualcast(
            pasid=42, src=0x1234000, dst=0x2345000, dst2=0x3456000, size=4096,
            completion_addr=0x7777000,
        )
        assert Descriptor.decode(desc.encode()) == desc

    def test_decode_wrong_length_rejected(self):
        with pytest.raises(InvalidDescriptorError):
            Descriptor.decode(b"\x00" * 32)

    def test_decode_unknown_opcode_rejected(self):
        raw = bytearray(make_noop(pasid=1, completion_addr=0).encode())
        raw[7] = 0xEE
        with pytest.raises(InvalidDescriptorError):
            Descriptor.decode(bytes(raw))

    def test_src2_aliases_dst(self):
        desc = make_memcmp(pasid=1, src=0x1000, src2=0xBEEF000, size=8, completion_addr=0)
        assert desc.dst == 0xBEEF000
        assert desc.src2 == 0xBEEF000

    @given(
        opcode=st.sampled_from([Opcode.NOOP, Opcode.MEMMOVE, Opcode.COMPVAL, Opcode.DUALCAST]),
        pasid=st.integers(1, (1 << 20) - 1),
        src=st.integers(0, 2**48),
        dst=st.integers(0, 2**48),
        size=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, opcode, pasid, src, dst, size):
        desc = Descriptor(
            opcode=opcode, pasid=pasid, src=src, dst=dst, size=size, completion_addr=0x40
        )
        assert Descriptor.decode(desc.encode()) == desc


class TestSpansPages:
    @pytest.mark.parametrize(
        "address,size,expected",
        [
            (0, 1, 1),
            (0, 4096, 1),
            (0, 4097, 2),
            (4095, 2, 2),
            (0x1000, 0x2000, 2),
            (0x1800, 0x2000, 3),
            (0, 0, 1),
        ],
    )
    def test_page_span(self, address, size, expected):
        assert spans_pages(address, size) == expected

    @given(st.integers(0, 2**40), st.integers(1, 2**24))
    @settings(max_examples=100, deadline=None)
    def test_span_bounds(self, address, size):
        pages = spans_pages(address, size)
        assert pages >= (size + 4095) // 4096
        assert pages <= size // 4096 + 2
