"""Tests for the arbiter policy and the batch engine.

Encodes the paper's Section IV-C findings: the arbiter prioritizes work
descriptors over batch-buffer descriptors regardless of arrival order, and
batch-fetcher memory traffic bypasses the DevTLB.
"""

import pytest

from repro.ats.devtlb import FieldType
from repro.dsa.arbiter import Arbiter, ArbiterPolicy, BatchBufferEntry
from repro.dsa.batch import write_batch_list
from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import BatchDescriptor, make_memcpy, make_noop
from repro.dsa.wq import WorkQueue, WorkQueueConfig

from tests.conftest import build_host


def _noop():
    return make_noop(pasid=1, completion_addr=0x1000)


class TestArbiterUnit:
    def test_wq_beats_batch_even_when_batch_older(self):
        """Listing 5's result: WQ descriptors always win."""
        arbiter = Arbiter(ArbiterPolicy.WQ_PRIORITY)
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        wq.try_enqueue(_noop(), time=100)
        batch_buffer = [
            BatchBufferEntry(descriptor=_noop(), available_time=5, parent_token=None, sequence=0)
        ]
        choice = arbiter.choose([wq], batch_buffer, time=200)
        assert choice.wq_entry is not None

    def test_batch_dispatches_when_wq_empty(self):
        arbiter = Arbiter(ArbiterPolicy.WQ_PRIORITY)
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        batch_buffer = [
            BatchBufferEntry(descriptor=_noop(), available_time=5, parent_token=None, sequence=0)
        ]
        choice = arbiter.choose([wq], batch_buffer, time=200)
        assert choice.batch_entry is not None

    def test_fifo_ablation_lets_batch_win(self):
        arbiter = Arbiter(ArbiterPolicy.FIFO)
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        wq.try_enqueue(_noop(), time=100)
        batch_buffer = [
            BatchBufferEntry(descriptor=_noop(), available_time=5, parent_token=None, sequence=0)
        ]
        choice = arbiter.choose([wq], batch_buffer, time=200)
        assert choice.batch_entry is not None

    def test_higher_priority_queue_wins(self):
        arbiter = Arbiter()
        low = WorkQueue(WorkQueueConfig(wq_id=0, size=4, priority=1))
        high = WorkQueue(WorkQueueConfig(wq_id=1, size=4, priority=8))
        low.try_enqueue(_noop(), time=0)
        high.try_enqueue(_noop(), time=50)
        choice = arbiter.choose([low, high], [], time=100)
        assert choice.wq is high

    def test_fifo_within_same_priority(self):
        arbiter = Arbiter()
        a = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        b = WorkQueue(WorkQueueConfig(wq_id=1, size=4))
        b.try_enqueue(_noop(), time=10)
        a.try_enqueue(_noop(), time=20)
        choice = arbiter.choose([a, b], [], time=100)
        assert choice.wq is b

    def test_nothing_ready_returns_none(self):
        arbiter = Arbiter()
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        wq.try_enqueue(_noop(), time=500)
        assert arbiter.choose([wq], [], time=100) is None

    def test_future_batch_not_chosen(self):
        arbiter = Arbiter()
        batch_buffer = [
            BatchBufferEntry(descriptor=_noop(), available_time=999, parent_token=None, sequence=0)
        ]
        assert arbiter.choose([], batch_buffer, time=100) is None


class TestBatchEngine:
    def test_batch_executes_children_and_parent_record(self):
        host = build_host()
        proc = host.new_process()
        list_addr = proc.buffer(4096)
        batch_comp = proc.comp_record()
        dst = proc.buffer(4096)
        src = proc.buffer(4096)
        proc.space.write(src, b"batchdata!" * 10)
        children = [
            make_memcpy(proc.pasid, src, dst, 100, proc.comp_record()),
            make_noop(proc.pasid, proc.comp_record()),
            make_noop(proc.pasid, proc.comp_record()),
        ]
        write_batch_list(proc.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=proc.pasid, desc_list_addr=list_addr, count=3,
            completion_addr=batch_comp,
        )
        ticket = proc.portal.submit(batch)
        proc.portal.wait(ticket)
        assert ticket.record.status is CompletionStatus.SUCCESS
        assert ticket.record.result == 3
        assert proc.space.read(dst, 100) == b"batchdata!" * 10

    def test_batch_fetch_bypasses_devtlb(self):
        """The fetcher's descriptor reads must not touch any sub-entry."""
        host = build_host()
        proc = host.new_process()
        list_addr = proc.buffer(4096)
        children = [make_noop(proc.pasid, proc.comp_record())]
        write_batch_list(proc.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=proc.pasid, desc_list_addr=list_addr, count=1,
            completion_addr=proc.comp_record(),
        )
        ticket = proc.portal.submit(batch)
        proc.portal.wait(ticket)
        devtlb = host.device.devtlb
        list_page = list_addr >> 12
        for field_type in FieldType:
            assert list_page not in devtlb.cached_pages(0, field_type)

    def test_batch_parent_completion_bypasses_devtlb(self):
        host = build_host()
        proc = host.new_process()
        list_addr = proc.buffer(4096)
        batch_comp = proc.comp_record()
        children = [make_noop(proc.pasid, proc.comp_record())]
        write_batch_list(proc.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=proc.pasid, desc_list_addr=list_addr, count=1,
            completion_addr=batch_comp,
        )
        ticket = proc.portal.submit(batch)
        proc.portal.wait(ticket)
        assert (batch_comp >> 12) not in host.device.devtlb.cached_pages(
            0, FieldType.COMP
        )

    def test_wq_descriptor_preempts_queued_batch_children(self):
        """Reverse-engineered QoS: a work descriptor submitted after a
        batch still dispatches before the batch's buffered children."""
        host = build_host()
        proc = host.new_process()
        list_addr = proc.buffer(4096)
        children = [make_noop(proc.pasid, proc.comp_record()) for _ in range(3)]
        write_batch_list(proc.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=proc.pasid, desc_list_addr=list_addr, count=3,
            completion_addr=proc.comp_record(),
        )
        batch_ticket = proc.portal.submit(batch)
        work = make_noop(proc.pasid, proc.comp_record())
        work_ticket = proc.portal.submit(work)
        proc.portal.wait(batch_ticket)
        proc.portal.wait(work_ticket)
        # The work descriptor completed before the batch parent resolved.
        assert work_ticket.completion_time <= batch_ticket.completion_time

    def test_forged_pasid_in_batch_rejected(self):
        host = build_host()
        proc = host.new_process()
        intruder = host.new_process()
        list_addr = proc.buffer(4096)
        children = [make_noop(intruder.pasid, proc.comp_record())]
        write_batch_list(proc.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=proc.pasid, desc_list_addr=list_addr, count=1,
            completion_addr=proc.comp_record(),
        )
        from repro.errors import InvalidDescriptorError

        with pytest.raises(InvalidDescriptorError):
            ticket = proc.portal.submit(batch)
            proc.portal.wait(ticket)
