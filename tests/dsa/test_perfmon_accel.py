"""Tests for Perfmon privilege gating and the accel-config emulation."""

import pytest

from repro.dsa.accel_config import AccelConfig
from repro.dsa.descriptor import make_noop
from repro.dsa.perfmon import EVENTS, Perfmon
from repro.dsa.wq import WqMode
from repro.errors import ConfigurationError, PermissionDeniedError

from tests.conftest import build_host


class TestPerfmon:
    def test_unprivileged_read_denied(self):
        host = build_host()
        perfmon = Perfmon(host.device, privileged=False)
        with pytest.raises(PermissionDeniedError):
            perfmon.read("EV_ATC_HIT_PREV")

    def test_table1_events_present(self):
        assert set(EVENTS) == {"EV_ATC_ALLOC", "EV_ATC_NO_ALLOC", "EV_ATC_HIT_PREV"}
        assert EVENTS["EV_ATC_ALLOC"].category == 0x2
        assert EVENTS["EV_ATC_ALLOC"].code == 0x40
        assert EVENTS["EV_ATC_NO_ALLOC"].code == 0x80
        assert EVENTS["EV_ATC_HIT_PREV"].code == 0x100

    def test_counters_reflect_probe_activity(self):
        host = build_host()
        proc = host.new_process()
        perfmon = Perfmon(host.device, privileged=True)
        comp = proc.comp_record()
        before = perfmon.snapshot()
        proc.portal.submit_wait(make_noop(proc.pasid, comp))  # miss
        proc.portal.submit_wait(make_noop(proc.pasid, comp))  # hit
        after = perfmon.snapshot()
        assert after["EV_ATC_ALLOC"] - before["EV_ATC_ALLOC"] == 2
        assert after["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"] == 1

    def test_per_engine_read(self):
        host = build_host()
        perfmon = Perfmon(host.device, privileged=True)
        assert perfmon.read("EV_ATC_ALLOC", engine_id=0) == 0

    def test_unknown_event_rejected(self):
        host = build_host()
        perfmon = Perfmon(host.device, privileged=True)
        with pytest.raises(ConfigurationError):
            perfmon.read("EV_DOES_NOT_EXIST")

    def test_unknown_engine_rejected(self):
        host = build_host()
        perfmon = Perfmon(host.device, privileged=True)
        with pytest.raises(ConfigurationError):
            perfmon.read("EV_ATC_ALLOC", engine_id=99)


class TestAccelConfig:
    def test_wq_size_readable_without_root(self):
        """Section IV-C: the SWQ attack reads wq_size unprivileged."""
        host = build_host(wq_size=16)
        config = AccelConfig(host.device, privileged=False)
        assert config.wq_size(0) == 16

    def test_wq_info_and_listing(self):
        host = build_host(wq_size=16)
        config = AccelConfig(host.device, privileged=False)
        infos = config.list_wqs()
        assert len(infos) == 1
        assert infos[0].mode is WqMode.SHARED
        assert infos[0].occupancy == 0
        assert config.list_engines() == [0, 1]

    def test_configuration_requires_root(self):
        host = build_host()
        config = AccelConfig(host.device, privileged=False)
        with pytest.raises(PermissionDeniedError):
            config.configure_wq(wq_id=5, size=8)
        with pytest.raises(PermissionDeniedError):
            config.configure_group(1, [1])
        with pytest.raises(PermissionDeniedError):
            config.remove_wq(0)

    def test_privileged_configuration_roundtrip(self):
        host = build_host()
        config = AccelConfig(host.device, privileged=True)
        config.configure_group(1, [1])
        config.configure_wq(wq_id=5, size=8, group_id=1)
        assert config.wq_size(5) == 8
        config.remove_wq(5)
        with pytest.raises(ConfigurationError):
            config.wq_size(5)
