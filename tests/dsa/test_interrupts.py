"""Tests for completion interrupts."""

import pytest

from repro.dsa.descriptor import Descriptor, make_noop
from repro.dsa.opcodes import (
    STANDARD_COMPLETION_FLAGS,
    DescriptorFlags,
    Opcode,
)

from tests.conftest import build_host


def interrupting_noop(pasid, comp, handle=7):
    return Descriptor(
        opcode=Opcode.NOOP,
        pasid=pasid,
        flags=STANDARD_COMPLETION_FLAGS | DescriptorFlags.REQUEST_COMPLETION_INTERRUPT,
        completion_addr=comp,
        interrupt_handle=handle,
    )


class TestCompletionInterrupts:
    def test_interrupt_raised_at_completion(self):
        host = build_host()
        proc = host.new_process()
        comp = proc.comp_record()
        ticket = proc.portal.submit(interrupting_noop(proc.pasid, comp))
        assert host.device.interrupt_log == []  # not completed yet
        proc.portal.wait(ticket)
        assert len(host.device.interrupt_log) == 1
        event = host.device.interrupt_log[0]
        assert event.pasid == proc.pasid
        assert event.interrupt_handle == 7
        assert event.timestamp == ticket.completion_time
        assert host.device.stats.interrupts_raised == 1

    def test_plain_descriptor_raises_no_interrupt(self):
        host = build_host()
        proc = host.new_process()
        comp = proc.comp_record()
        proc.portal.submit_wait(make_noop(proc.pasid, comp))
        assert host.device.interrupt_log == []

    def test_interrupts_ordered_by_completion(self):
        host = build_host()
        proc = host.new_process()
        tickets = [
            proc.portal.submit(
                interrupting_noop(proc.pasid, proc.comp_record(), handle=i)
            )
            for i in range(4)
        ]
        for ticket in tickets:
            proc.portal.wait(ticket)
        handles = [e.interrupt_handle for e in host.device.interrupt_log]
        times = [e.timestamp for e in host.device.interrupt_log]
        assert handles == [0, 1, 2, 3]
        assert times == sorted(times)

    def test_interrupt_wire_flag_roundtrips(self):
        descriptor = interrupting_noop(1, 0x40, handle=99)
        decoded = Descriptor.decode(descriptor.encode())
        assert decoded.interrupt_handle == 99
        assert decoded.flags & DescriptorFlags.REQUEST_COMPLETION_INTERRUPT
