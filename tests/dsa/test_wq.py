"""Unit tests for work queues and the shared hardware queue space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsa.descriptor import make_noop
from repro.dsa.wq import (
    HardwareQueueSpace,
    WorkQueue,
    WorkQueueConfig,
    WqMode,
)
from repro.errors import QueueConfigurationError


def _noop():
    return make_noop(pasid=1, completion_addr=0x1000)


class TestWorkQueue:
    def test_enqueue_dequeue_fifo(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        a = wq.try_enqueue(_noop(), time=10)
        b = wq.try_enqueue(_noop(), time=20)
        assert a is not None and b is not None
        assert wq.pop() is a
        assert wq.pop() is b

    def test_full_queue_rejects(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=2))
        assert wq.try_enqueue(_noop(), 0) is not None
        assert wq.try_enqueue(_noop(), 0) is not None
        assert wq.try_enqueue(_noop(), 0) is None
        assert wq.rejected_total == 1
        assert wq.is_full

    def test_occupancy_and_free_slots(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=3))
        wq.try_enqueue(_noop(), 0)
        assert wq.occupancy == 1
        assert wq.free_slots == 2
        assert len(wq) == 1

    def test_pop_empty_raises(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=1))
        with pytest.raises(IndexError):
            wq.pop()

    def test_peek_does_not_remove(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=2))
        entry = wq.try_enqueue(_noop(), 5)
        assert wq.peek() is entry
        assert wq.occupancy == 1

    def test_drain_pending(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        wq.try_enqueue(_noop(), 0)
        wq.try_enqueue(_noop(), 1)
        drained = wq.drain_pending()
        assert len(drained) == 2
        assert wq.occupancy == 0

    def test_max_occupancy_tracked(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        wq.try_enqueue(_noop(), 0)
        wq.try_enqueue(_noop(), 0)
        wq.pop()
        assert wq.max_occupancy_seen == 2

    def test_sequence_increases(self):
        wq = WorkQueue(WorkQueueConfig(wq_id=0, size=4))
        a = wq.try_enqueue(_noop(), 0)
        b = wq.try_enqueue(_noop(), 0)
        assert b.sequence == a.sequence + 1


class TestWorkQueueConfig:
    def test_zero_size_rejected(self):
        with pytest.raises(QueueConfigurationError):
            WorkQueueConfig(wq_id=0, size=0)

    def test_priority_range(self):
        with pytest.raises(QueueConfigurationError):
            WorkQueueConfig(wq_id=0, size=1, priority=16)

    def test_modes(self):
        assert WorkQueueConfig(wq_id=0, size=1, mode=WqMode.DEDICATED).mode is WqMode.DEDICATED


class TestHardwareQueueSpace:
    def test_budget_enforced(self):
        space = HardwareQueueSpace(total_entries=128)
        space.configure(WorkQueueConfig(wq_id=0, size=100))
        with pytest.raises(QueueConfigurationError):
            space.configure(WorkQueueConfig(wq_id=1, size=29))
        space.configure(WorkQueueConfig(wq_id=1, size=28))
        assert space.entries_configured == 128

    def test_duplicate_id_rejected(self):
        space = HardwareQueueSpace()
        space.configure(WorkQueueConfig(wq_id=0, size=8))
        with pytest.raises(QueueConfigurationError):
            space.configure(WorkQueueConfig(wq_id=0, size=8))

    def test_remove_releases_budget(self):
        space = HardwareQueueSpace(total_entries=16)
        space.configure(WorkQueueConfig(wq_id=0, size=16))
        space.remove(0)
        space.configure(WorkQueueConfig(wq_id=1, size=16))

    def test_remove_unknown_rejected(self):
        with pytest.raises(QueueConfigurationError):
            HardwareQueueSpace().remove(3)

    def test_get_unknown_rejected(self):
        with pytest.raises(QueueConfigurationError):
            HardwareQueueSpace().get(0)

    def test_queues_sorted_by_id(self):
        space = HardwareQueueSpace()
        space.configure(WorkQueueConfig(wq_id=2, size=4))
        space.configure(WorkQueueConfig(wq_id=0, size=4))
        assert [q.wq_id for q in space.queues()] == [0, 2]

    @given(st.lists(st.integers(1, 64), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_configured_never_exceeds_total(self, sizes):
        space = HardwareQueueSpace(total_entries=128)
        for wq_id, size in enumerate(sizes):
            try:
                space.configure(WorkQueueConfig(wq_id=wq_id, size=size))
            except QueueConfigurationError:
                pass
        assert space.entries_configured <= 128
