"""Property-style invariant tests on engine/device behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import make_memcpy, make_noop

from tests.conftest import build_host


class TestTimingInvariants:
    def test_completion_latency_monotone_in_size(self):
        host = build_host(seed=3)
        proc = host.new_process()
        comp = proc.comp_record()
        latencies = []
        for exponent in range(10, 24, 2):
            size = 1 << exponent
            src = proc.buffer(size)
            dst = proc.buffer(size)
            # Average several samples to wash out environment noise.
            samples = [
                proc.portal.submit_wait(
                    make_memcpy(proc.pasid, src, dst, size, comp)
                ).latency_cycles
                for _ in range(6)
            ]
            latencies.append(np.mean(samples))
        assert all(b >= a * 0.93 for a, b in zip(latencies, latencies[1:]))

    @given(st.integers(1, 1 << 22))
    @settings(max_examples=15, deadline=None)
    def test_any_size_completes_successfully(self, size):
        host = build_host(seed=size % 97)
        proc = host.new_process()
        src = proc.buffer(max(size, 4096))
        dst = proc.buffer(max(size, 4096))
        comp = proc.comp_record()
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, src, dst, size, comp)
        )
        assert result.record.status is CompletionStatus.SUCCESS
        assert result.latency_cycles > 0

    def test_dispatch_never_precedes_enqueue(self):
        host = build_host()
        proc = host.new_process()
        tickets = [
            proc.portal.submit(make_noop(proc.pasid, proc.comp_record()))
            for _ in range(8)
        ]
        for ticket in tickets:
            proc.portal.wait(ticket)
            assert ticket.dispatch_time >= ticket.enqueue_time
            assert ticket.completion_time > ticket.dispatch_time


class TestConservationInvariants:
    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_every_accepted_submission_completes(self, kinds):
        """accepted == completed once the device drains (no lost work)."""
        host = build_host(seed=11, wq_size=8)
        proc = host.new_process()
        comp = proc.comp_record()
        src = proc.buffer(1 << 16)
        dst = proc.buffer(1 << 16)
        accepted = 0
        for big in kinds:
            descriptor = (
                make_memcpy(proc.pasid, src, dst, 1 << 14, comp)
                if big
                else make_noop(proc.pasid, comp)
            )
            if not proc.portal.enqcmd(descriptor):
                accepted += 1
        host.clock.advance(200_000_000)
        host.device.advance_to(host.clock.now)
        stats = host.device.stats
        assert stats.submissions_accepted == accepted
        assert stats.descriptors_completed == accepted
        assert host.device.wq(0).occupancy == 0

    def test_queue_slots_conserved_under_churn(self):
        host = build_host(seed=13, wq_size=4)
        proc = host.new_process()
        comp = proc.comp_record()
        rng = np.random.default_rng(0)
        for _ in range(200):
            proc.portal.enqcmd(make_noop(proc.pasid, comp))
            if rng.random() < 0.3:
                host.clock.advance(int(rng.integers(100, 50_000)))
                host.device.advance_to(host.clock.now)
            wq = host.device.wq(0)
            assert 0 <= wq.occupancy <= wq.config.size
        host.clock.advance(10_000_000)
        host.device.advance_to(host.clock.now)
        assert host.device.wq(0).occupancy == 0


class TestFaultAccounting:
    def test_engine_fault_stats(self):
        host = build_host()
        proc = host.new_process()
        comp = proc.comp_record()
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, 0xBAD_0000_000, proc.buffer(), 64, comp)
        )
        assert result.record.status is CompletionStatus.PAGE_FAULT
        assert host.device.engines[0].stats.faults == 1
        assert len(host.device.prs.log) == 1

    def test_fault_in_stream_tail_detected(self):
        """The bulk path still faults when the last page is unmapped.

        The source must be the process's *last* mapping: the bump
        allocator otherwise places the next buffer right behind it and
        accidentally maps the overrun pages.
        """
        host = build_host()
        proc = host.new_process()
        comp = proc.comp_record()
        dst = proc.buffer(1 << 16)
        src = proc.buffer(4096)  # final mapping: nothing beyond it
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, src, dst, 3 * 4096, comp)
        )
        assert result.record.status is CompletionStatus.PAGE_FAULT
