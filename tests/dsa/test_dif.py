"""Tests for the T10-DIF operations."""

import numpy as np
import pytest

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import Descriptor
from repro.dsa.opcodes import Opcode

from tests.conftest import build_host

BLOCK = 512
STRIDE = 520


@pytest.fixture
def host():
    return build_host(seed=41)


@pytest.fixture
def proc(host):
    return host.new_process()


def dif_descriptor(proc, opcode, src, dst, size):
    return Descriptor(
        opcode=opcode, pasid=proc.pasid, src=src, dst=dst, size=size,
        completion_addr=proc.comp_record(),
    )


def insert(proc, payload):
    src = proc.buffer(max(len(payload), 4096))
    dst = proc.buffer(2 * max(len(payload), 4096))
    proc.write(src, payload)
    result = proc.portal.submit_wait(
        dif_descriptor(proc, Opcode.DIF_INSERT, src, dst, len(payload))
    )
    return result, dst


class TestDifInsert:
    def test_inserts_pi_per_block(self, proc):
        payload = np.random.default_rng(0).bytes(2 * BLOCK)
        result, dst = insert(proc, payload)
        assert result.record.status is CompletionStatus.SUCCESS
        protected = proc.read(dst, 2 * STRIDE)
        assert protected[:BLOCK] == payload[:BLOCK]
        assert protected[STRIDE : STRIDE + BLOCK] == payload[BLOCK:]
        # Reference tags carry the block index.
        assert int.from_bytes(protected[BLOCK + 4 : BLOCK + 8], "little") == 0
        assert int.from_bytes(protected[STRIDE + BLOCK + 4 : STRIDE + BLOCK + 8], "little") == 1

    def test_unaligned_size_rejected(self, proc):
        src = proc.buffer(4096)
        dst = proc.buffer(4096)
        result = proc.portal.submit_wait(
            dif_descriptor(proc, Opcode.DIF_INSERT, src, dst, 100)
        )
        assert result.record.status is CompletionStatus.INVALID_DESCRIPTOR


class TestDifCheckAndStrip:
    def test_check_passes_on_inserted_data(self, proc):
        payload = np.random.default_rng(1).bytes(3 * BLOCK)
        _, protected = insert(proc, payload)
        result = proc.portal.submit_wait(
            dif_descriptor(proc, Opcode.DIF_CHECK, protected, 0, 3 * STRIDE)
        )
        assert result.record.result == 0

    def test_check_catches_corruption(self, proc):
        payload = np.random.default_rng(2).bytes(3 * BLOCK)
        _, protected = insert(proc, payload)
        corrupted = bytearray(proc.read(protected, 3 * STRIDE))
        corrupted[STRIDE + 7] ^= 0xFF  # flip a byte in block 1
        proc.write(protected, bytes(corrupted))
        result = proc.portal.submit_wait(
            dif_descriptor(proc, Opcode.DIF_CHECK, protected, 0, 3 * STRIDE)
        )
        assert result.record.result == 1
        assert result.record.bytes_completed == STRIDE  # block 1 flagged

    def test_strip_roundtrip(self, proc):
        payload = np.random.default_rng(3).bytes(2 * BLOCK)
        _, protected = insert(proc, payload)
        out = proc.buffer(4096)
        result = proc.portal.submit_wait(
            dif_descriptor(proc, Opcode.DIF_STRIP, protected, out, 2 * STRIDE)
        )
        assert result.record.status is CompletionStatus.SUCCESS
        assert proc.read(out, 2 * BLOCK) == payload

    def test_check_unaligned_rejected(self, proc):
        src = proc.buffer(4096)
        result = proc.portal.submit_wait(
            dif_descriptor(proc, Opcode.DIF_CHECK, src, 0, 513)
        )
        assert result.record.status is CompletionStatus.INVALID_DESCRIPTOR
