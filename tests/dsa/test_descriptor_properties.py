"""Hypothesis round-trip and validation properties for descriptors.

The strategies draw from the same boundary pools the fuzzer's generator
uses (:data:`repro.fuzz.gen.SIZES` / :data:`repro.fuzz.gen.OFFSETS` /
:data:`repro.fuzz.gen.PASID_MAX`), so the property tests and the
campaign probe the same edges of the encoding.  ``derandomize=True``
keeps the examples a pure function of the test source — CI runs are
reproducible, like everything else in the artifact.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.dsa.descriptor import (  # noqa: E402
    COMPLETION_ALIGN,
    DESCRIPTOR_SIZE,
    BatchDescriptor,
    Descriptor,
)
from repro.dsa.opcodes import DescriptorFlags, Opcode  # noqa: E402
from repro.errors import InvalidDescriptorError  # noqa: E402
from repro.fuzz.gen import OFFSETS, PASID_MAX, SIZES  # noqa: E402

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

#: Data-moving opcodes (the ones whose validate() demands a size).
DATA_OPCODES = [
    op for op in Opcode if op not in (Opcode.NOOP, Opcode.DRAIN, Opcode.BATCH)
]

#: Addresses built from the generator's boundary offsets plus a page
#: base, so page-spanning and alignment edges are always in the pool.
addresses = st.builds(
    lambda page, off: (page << 12) + off,
    st.integers(0, (1 << 48) - 1),
    st.sampled_from(OFFSETS),
)

sizes = st.one_of(st.sampled_from(SIZES), st.integers(0, (1 << 32) - 1))

pasids = st.one_of(
    st.integers(1, PASID_MAX), st.sampled_from([1, 2, PASID_MAX])
)

#: The flags byte as encoded on the wire (encode() masks to 8 bits).
flag_bytes = st.integers(0, 0xFF).map(DescriptorFlags)

descriptors = st.builds(
    Descriptor,
    opcode=st.sampled_from(list(Opcode)),
    pasid=pasids,
    flags=flag_bytes,
    completion_addr=addresses,
    src=addresses,
    dst=addresses,
    size=sizes,
    dst2=addresses,
    interrupt_handle=st.integers(0, 0xFFFF),
    privileged=st.booleans(),
)


class TestDescriptorRoundTrip:
    @SETTINGS
    @given(descriptors)
    def test_encode_decode_is_identity(self, desc):
        raw = desc.encode()
        assert len(raw) == DESCRIPTOR_SIZE
        assert Descriptor.decode(raw) == desc

    @SETTINGS
    @given(descriptors)
    def test_encode_is_deterministic(self, desc):
        assert desc.encode() == desc.encode()

    @SETTINGS
    @given(st.binary(min_size=0, max_size=DESCRIPTOR_SIZE * 2))
    def test_wrong_length_raises_typed_error(self, raw):
        if len(raw) == DESCRIPTOR_SIZE:
            raw += b"\x00"
        with pytest.raises(InvalidDescriptorError):
            Descriptor.decode(raw)

    @SETTINGS
    @given(descriptors, st.integers(0, 0xFF))
    def test_unknown_opcode_raises_typed_error(self, desc, byte):
        valid = {int(op) for op in Opcode}
        raw = bytearray(desc.encode())
        raw[7] = byte  # the opcode byte in the wire layout
        if byte in valid:
            assert Descriptor.decode(bytes(raw)).opcode == Opcode(byte)
        else:
            with pytest.raises(InvalidDescriptorError):
                Descriptor.decode(bytes(raw))


class TestDescriptorValidate:
    @SETTINGS
    @given(st.sampled_from(DATA_OPCODES), st.integers(-4096, 0))
    def test_nonpositive_size_rejected_for_data_opcodes(self, opcode, size):
        desc = Descriptor(opcode=opcode, pasid=1, size=size)
        with pytest.raises(InvalidDescriptorError):
            desc.validate()

    @SETTINGS
    @given(st.sampled_from([Opcode.NOOP, Opcode.DRAIN, Opcode.BATCH]))
    def test_sizeless_opcodes_accept_zero_size(self, opcode):
        Descriptor(opcode=opcode, pasid=1, size=0).validate()

    @SETTINGS
    @given(st.integers(-(1 << 20), 0))
    def test_nonpositive_pasid_rejected(self, pasid):
        with pytest.raises(InvalidDescriptorError):
            Descriptor(opcode=Opcode.NOOP, pasid=pasid).validate()

    @SETTINGS
    @given(st.integers(0, 1 << 20))
    def test_completion_alignment_gates_validate(self, addr):
        desc = Descriptor(
            opcode=Opcode.NOOP, pasid=1, completion_addr=addr
        )
        assert desc.wants_completion
        if addr % COMPLETION_ALIGN:
            with pytest.raises(InvalidDescriptorError):
                desc.validate()
        else:
            desc.validate()


class TestBatchDescriptorValidate:
    @SETTINGS
    @given(pasids, st.integers(1, 1024), st.integers(0, 1 << 16))
    def test_validate_matches_field_predicates(self, pasid, count, comp):
        batch = BatchDescriptor(
            pasid=pasid,
            desc_list_addr=0x1000,
            count=count,
            completion_addr=comp * COMPLETION_ALIGN,
        )
        batch.validate()
        assert batch.list_bytes() == count * DESCRIPTOR_SIZE

    @SETTINGS
    @given(st.integers(-16, 0))
    def test_empty_batch_rejected(self, count):
        batch = BatchDescriptor(pasid=1, desc_list_addr=0x1000, count=count)
        with pytest.raises(InvalidDescriptorError):
            batch.validate()

    @SETTINGS
    @given(st.integers(1, COMPLETION_ALIGN - 1))
    def test_misaligned_batch_completion_rejected(self, slack):
        batch = BatchDescriptor(
            pasid=1,
            desc_list_addr=0x1000,
            count=2,
            completion_addr=COMPLETION_ALIGN + slack,
        )
        with pytest.raises(InvalidDescriptorError):
            batch.validate()
