"""Tests for portal submission modes, drain, and device bookkeeping."""

import pytest

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import Descriptor, make_memcpy, make_noop
from repro.dsa.device import DsaDevice, DsaDeviceConfig, GroupConfig
from repro.dsa.opcodes import Opcode
from repro.dsa.portal import Portal
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import ConfigurationError, QueueConfigurationError, QueueFullError

from tests.conftest import build_host


def build_dedicated_host():
    host = build_host()
    host.device.configure_wq(
        WorkQueueConfig(wq_id=1, size=8, mode=WqMode.DEDICATED, group_id=0)
    )
    return host


class TestDedicatedQueues:
    def test_movdir64b_submits(self):
        host = build_dedicated_host()
        proc = host.new_process(wq_id=1)
        comp = proc.comp_record()
        proc.portal.movdir64b(make_noop(proc.pasid, comp))
        assert proc.portal.last_ticket is not None
        proc.portal.wait(proc.portal.last_ticket)
        assert proc.portal.last_ticket.record.status is CompletionStatus.SUCCESS

    def test_enqcmd_to_dedicated_rejected(self):
        host = build_dedicated_host()
        proc = host.new_process(wq_id=1)
        with pytest.raises(ConfigurationError):
            proc.portal.enqcmd(make_noop(proc.pasid, proc.comp_record()))

    def test_movdir64b_to_shared_rejected(self):
        host = build_host()
        proc = host.new_process(wq_id=0)
        with pytest.raises(ConfigurationError):
            proc.portal.movdir64b(make_noop(proc.pasid, proc.comp_record()))

    def test_movdir64b_to_full_queue_raises(self):
        host = build_dedicated_host()
        proc = host.new_process(wq_id=1)
        comp = proc.comp_record()
        big = make_memcpy(
            proc.pasid, proc.buffer(1 << 22), proc.buffer(1 << 22), 1 << 22, comp
        )
        for _ in range(8):
            proc.portal.movdir64b(big)
        with pytest.raises(QueueFullError):
            proc.portal.movdir64b(big)

    def test_submit_uses_native_instruction(self):
        host = build_dedicated_host()
        proc = host.new_process(wq_id=1)
        ticket = proc.portal.submit(make_noop(proc.pasid, proc.comp_record()))
        proc.portal.wait(ticket)
        assert ticket.completed


class TestDrain:
    def test_drain_waits_for_prior_work(self):
        host = build_host()
        proc = host.new_process()
        comp = proc.comp_record()
        big = make_memcpy(
            proc.pasid, proc.buffer(1 << 21), proc.buffer(1 << 21), 1 << 21, comp
        )
        big_ticket = proc.portal.submit(big)
        drain = Descriptor(
            opcode=Opcode.DRAIN, pasid=proc.pasid, completion_addr=proc.comp_record()
        )
        drain_ticket = proc.portal.submit(drain)
        proc.portal.wait(drain_ticket)
        assert big_ticket.completed
        assert drain_ticket.completion_time >= big_ticket.completion_time


class TestDeviceBookkeeping:
    def test_stats_counters(self):
        host = build_host(wq_size=1)
        proc = host.new_process()
        comp = proc.comp_record()
        big = make_memcpy(
            proc.pasid, proc.buffer(1 << 22), proc.buffer(1 << 22), 1 << 22, comp
        )
        proc.portal.enqcmd(big)
        proc.portal.enqcmd(big)  # ZF (slot held until completion)
        stats = host.device.stats
        assert stats.submissions_accepted == 1
        assert stats.submissions_retried == 1

    def test_group_validation(self):
        host = build_host()
        with pytest.raises(ConfigurationError):
            host.device.configure_group(5, (99,))
        with pytest.raises(QueueConfigurationError):
            host.device.configure_group(1, (0,))  # engine 0 is in group 0
        with pytest.raises(QueueConfigurationError):
            GroupConfig(group_id=2, engine_ids=())

    def test_wq_needs_existing_group(self):
        host = build_host()
        with pytest.raises(QueueConfigurationError):
            host.device.configure_wq(WorkQueueConfig(wq_id=7, size=4, group_id=9))

    def test_group_of_wq(self):
        host = build_host()
        assert host.device.group_of_wq(0).group_id == 0

    def test_ticket_metadata(self):
        host = build_host()
        proc = host.new_process()
        comp = proc.comp_record()
        result = proc.portal.submit_wait(make_noop(proc.pasid, comp))
        ticket = result.ticket
        assert ticket.engine_id == 0
        assert ticket.dispatch_time >= ticket.enqueue_time
        assert ticket.completion_time > ticket.dispatch_time
        assert ticket.devtlb_misses == 1  # fresh comp page

    def test_environment_switch_propagates(self):
        from repro.hw.noise import Environment

        host = build_host()
        host.device.set_environment(Environment.CLOUD_NOISE)
        assert host.device.environment is Environment.CLOUD_NOISE
        for engine in host.device.engines.values():
            assert engine.noise.environment is Environment.CLOUD_NOISE


class TestPrivilegedPortal:
    def test_privileged_portal_sees_zf_under_mitigation(self):
        from repro.mitigation.partitioning import privileged_dmwr_config

        host = build_host(config=privileged_dmwr_config(DsaDeviceConfig(engine_count=2)))
        proc = host.new_process()
        comp = proc.comp_record()
        root_portal = Portal(host.device, wq_id=0, pasid=proc.pasid, privileged=True)
        big = make_memcpy(
            proc.pasid, proc.buffer(1 << 22), proc.buffer(1 << 22), 1 << 22, comp
        )
        results = [root_portal.enqcmd(big) for _ in range(17)]
        assert any(results)  # a privileged submitter still reads real ZF
