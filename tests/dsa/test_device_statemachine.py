"""Hypothesis state-machine test of device-level invariants.

Random interleavings of submissions (both queue modes, all sizes),
time advancement, and environment switches must never violate:

* queue occupancy stays within [0, size];
* accepted submissions eventually all complete (conservation);
* the engine never runs more descriptors concurrently than it has
  processing units;
* device-local replay time never exceeds the shared clock.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dsa.descriptor import make_memcpy, make_noop
from repro.hw.noise import Environment

from tests.conftest import build_host


class DeviceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.host = build_host(seed=99, wq_size=6)
        self.proc = self.host.new_process()
        self.comp = self.proc.comp_record()
        self.src = self.proc.buffer(1 << 20)
        self.dst = self.proc.buffer(1 << 20)
        self.accepted = 0

    @rule(size=st.sampled_from([0, 64, 4096, 1 << 16, 1 << 20]))
    def submit(self, size):
        if size == 0:
            descriptor = make_noop(self.proc.pasid, self.comp)
        else:
            descriptor = make_memcpy(self.proc.pasid, self.src, self.dst, size, self.comp)
        if not self.proc.portal.enqcmd(descriptor):
            self.accepted += 1

    @rule(cycles=st.integers(min_value=0, max_value=5_000_000))
    def advance(self, cycles):
        self.host.clock.advance(cycles)
        self.host.device.advance_to(self.host.clock.now)

    @rule(environment=st.sampled_from(list(Environment)))
    def switch_environment(self, environment):
        self.host.device.set_environment(environment)

    @invariant()
    def occupancy_bounded(self):
        wq = self.host.device.wq(0)
        assert 0 <= wq.occupancy <= wq.config.size

    @invariant()
    def engine_concurrency_bounded(self):
        for engine in self.host.device.engines.values():
            assert len(engine.inflight) <= engine.timing.concurrent_descriptors

    @invariant()
    def device_time_never_ahead_of_clock(self):
        assert self.host.device.time <= self.host.clock.now

    @invariant()
    def completions_never_exceed_accepted(self):
        assert self.host.device.stats.descriptors_completed <= self.accepted

    def teardown(self):
        # Drain: everything accepted must eventually complete.
        self.host.clock.advance(10_000_000_000)
        self.host.device.advance_to(self.host.clock.now)
        assert self.host.device.stats.descriptors_completed == self.accepted
        assert self.host.device.wq(0).occupancy == 0


DeviceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestDeviceMachine = DeviceMachine.TestCase
