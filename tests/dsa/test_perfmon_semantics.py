"""End-to-end Perfmon event semantics (Table I) over mixed workloads.

The reverse-engineering suite checks individual listings; these tests pin
the counter algebra over longer mixed sequences, which is what protects
the counters' meaning against engine refactors.
"""

import numpy as np

from repro.dsa.descriptor import make_dualcast, make_memcmp, make_memcpy, make_noop
from repro.dsa.perfmon import Perfmon

from tests.conftest import build_host


class TestCounterAlgebra:
    def test_alloc_counts_every_page_request(self):
        """EV_ATC_ALLOC == total page segments across all field streams."""
        host = build_host()
        proc = host.new_process()
        perfmon = Perfmon(host.device, privileged=True)
        comp = proc.comp_record()
        src = proc.buffer(4 * 4096)
        dst = proc.buffer(4 * 4096)

        before = perfmon.snapshot()
        expected = 0
        descriptors = [
            make_noop(proc.pasid, comp),  # 1 page (comp)
            make_memcpy(proc.pasid, src, dst, 2 * 4096, comp),  # 2+2+1
            make_memcmp(proc.pasid, src, dst, 64, comp),  # 1+1+1
            make_dualcast(proc.pasid, src, dst, dst + 8192, 64, comp),  # 4
        ]
        expected = 1 + 5 + 3 + 4
        for descriptor in descriptors:
            proc.portal.submit_wait(descriptor)
        delta = perfmon.snapshot()["EV_ATC_ALLOC"] - before["EV_ATC_ALLOC"]
        assert delta == expected

    def test_hits_equal_no_alloc_on_single_slot_device(self):
        """Single-slot sub-entries: a hit is exactly a no-replacement."""
        host = build_host()
        proc = host.new_process()
        perfmon = Perfmon(host.device, privileged=True)
        rng = np.random.default_rng(0)
        comps = [proc.comp_record() for _ in range(3)]
        for _ in range(60):
            proc.portal.submit_wait(
                make_noop(proc.pasid, comps[int(rng.integers(0, 3))])
            )
        snapshot = perfmon.snapshot()
        assert snapshot["EV_ATC_HIT_PREV"] == snapshot["EV_ATC_NO_ALLOC"]
        assert 0 < snapshot["EV_ATC_HIT_PREV"] < snapshot["EV_ATC_ALLOC"]

    def test_repeat_rate_drives_hit_rate(self):
        """Probing one page yields ~100% hits; cycling three pages ~0%."""
        host = build_host()
        proc = host.new_process()
        perfmon = Perfmon(host.device, privileged=True)

        single = proc.comp_record()
        proc.portal.submit_wait(make_noop(proc.pasid, single))
        before = perfmon.snapshot()
        for _ in range(20):
            proc.portal.submit_wait(make_noop(proc.pasid, single))
        delta = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]
        assert delta == 20

        cycle = [proc.comp_record() for _ in range(3)]
        before = perfmon.snapshot()
        for i in range(21):
            proc.portal.submit_wait(make_noop(proc.pasid, cycle[i % 3]))
        delta = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]
        assert delta == 0

    def test_counters_attributed_to_the_right_engine(self):
        from repro.dsa.wq import WorkQueueConfig, WqMode

        host = build_host(engine_count=2)
        host.device.configure_group(1, (1,))
        host.device.configure_wq(
            WorkQueueConfig(wq_id=1, size=8, mode=WqMode.SHARED, group_id=1)
        )
        proc0 = host.new_process(wq_id=0)
        proc1 = host.new_process(wq_id=1)
        perfmon = Perfmon(host.device, privileged=True)
        proc0.portal.submit_wait(make_noop(proc0.pasid, proc0.comp_record()))
        proc1.portal.submit_wait(make_noop(proc1.pasid, proc1.comp_record()))
        proc1.portal.submit_wait(make_noop(proc1.pasid, proc1.comp_record()))
        assert perfmon.read("EV_ATC_ALLOC", engine_id=0) == 1
        assert perfmon.read("EV_ATC_ALLOC", engine_id=1) == 2
        total = perfmon.read("EV_ATC_ALLOC")
        assert total == 3
