"""Integration tests: submission through completion on the device model."""

import pytest

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import (
    Descriptor,
    make_dualcast,
    make_memcmp,
    make_memcpy,
    make_noop,
)
from repro.dsa.opcodes import Opcode
from repro.errors import QueueFullError
from repro.hw.units import PAGE_SIZE

from tests.conftest import build_host


class TestBasicExecution:
    def test_noop_completes_successfully(self, proc):
        comp = proc.comp_record()
        result = proc.portal.submit_wait(make_noop(proc.pasid, comp))
        assert result.record.status is CompletionStatus.SUCCESS

    def test_completion_record_written_to_memory(self, proc):
        comp = proc.comp_record()
        proc.portal.submit_wait(make_noop(proc.pasid, comp))
        from repro.dsa.completion import CompletionRecord

        record = CompletionRecord.decode(proc.space.read(comp, 32))
        assert record.status is CompletionStatus.SUCCESS

    def test_memcpy_moves_bytes(self, proc):
        src = proc.buffer()
        dst = proc.buffer()
        comp = proc.comp_record()
        proc.space.write(src, b"dsassassin" * 10)
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, src, dst, 100, comp)
        )
        assert result.record.status is CompletionStatus.SUCCESS
        assert result.record.bytes_completed == 100
        assert proc.space.read(dst, 100) == b"dsassassin" * 10

    def test_memcmp_equal(self, proc):
        a = proc.buffer()
        b = proc.buffer()
        comp = proc.comp_record()
        proc.space.write(a, b"same-bytes")
        proc.space.write(b, b"same-bytes")
        result = proc.portal.submit_wait(make_memcmp(proc.pasid, a, b, 10, comp))
        assert result.record.result == 0

    def test_memcmp_differs_reports_offset(self, proc):
        a = proc.buffer()
        b = proc.buffer()
        comp = proc.comp_record()
        proc.space.write(a, b"same-bytes")
        proc.space.write(b, b"same-bytEs")
        result = proc.portal.submit_wait(make_memcmp(proc.pasid, a, b, 10, comp))
        assert result.record.result == 1
        assert result.record.bytes_completed == 8

    def test_dualcast_writes_both_destinations(self, proc):
        src = proc.buffer()
        d1 = proc.buffer()
        d2 = proc.buffer()
        comp = proc.comp_record()
        proc.space.write(src, b"xyz")
        proc.portal.submit_wait(make_dualcast(proc.pasid, src, d1, d2, 3, comp))
        assert proc.space.read(d1, 3) == b"xyz"
        assert proc.space.read(d2, 3) == b"xyz"

    def test_fill(self, proc):
        dst = proc.buffer()
        comp = proc.comp_record()
        desc = Descriptor(
            opcode=Opcode.FILL, pasid=proc.pasid, src=0xAB, dst=dst, size=32,
            completion_addr=comp,
        )
        proc.portal.submit_wait(desc)
        assert proc.space.read(dst, 32) == b"\xab" * 32

    def test_crcgen(self, proc):
        import zlib

        src = proc.buffer()
        comp = proc.comp_record()
        proc.space.write(src, b"check me")
        desc = Descriptor(
            opcode=Opcode.CRCGEN, pasid=proc.pasid, src=src, size=8, completion_addr=comp
        )
        result = proc.portal.submit_wait(desc)
        assert result.record.result == zlib.crc32(b"check me")

    def test_delta_roundtrip(self, proc):
        base = proc.buffer()
        modified = proc.buffer()
        delta = proc.buffer()
        target = proc.buffer()
        comp = proc.comp_record()
        original = bytes(range(64))
        changed = bytearray(original)
        changed[8:16] = b"ZZZZZZZZ"
        proc.space.write(base, original)
        proc.space.write(modified, bytes(changed))
        create = Descriptor(
            opcode=Opcode.CREATE_DELTA, pasid=proc.pasid, src=base, dst=modified,
            dst2=delta, size=64, completion_addr=comp,
        )
        result = proc.portal.submit_wait(create)
        delta_size = result.record.result
        assert delta_size == 12  # one changed 8-byte word

        proc.space.write(target, original)
        apply = Descriptor(
            opcode=Opcode.APPLY_DELTA, pasid=proc.pasid, src=delta, dst=target,
            size=delta_size, completion_addr=comp,
        )
        proc.portal.submit_wait(apply)
        assert proc.space.read(target, 64) == bytes(changed)

    def test_cross_page_memcpy(self, proc):
        src = proc.buffer(3 * PAGE_SIZE)
        dst = proc.buffer(3 * PAGE_SIZE)
        comp = proc.comp_record()
        payload = bytes(range(256)) * 40  # 10240 bytes, spans 3 pages
        proc.space.write(src, payload)
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, src, dst, len(payload), comp)
        )
        assert result.record.status is CompletionStatus.SUCCESS
        assert proc.space.read(dst, len(payload)) == payload

    def test_unmapped_source_reports_page_fault(self, proc):
        dst = proc.buffer()
        comp = proc.comp_record()
        result = proc.portal.submit_wait(
            make_memcpy(proc.pasid, 0xDEAD_0000_000, dst, 8, comp)
        )
        assert result.record.status is CompletionStatus.PAGE_FAULT
        assert result.record.fault_address == 0xDEAD_0000_000


class TestQueueSemantics:
    def test_enqcmd_zf_when_full(self):
        host = build_host(wq_size=2)
        proc = host.new_process()
        comp = proc.comp_record()
        anchor = make_memcpy(
            proc.pasid,
            proc.buffer(1 << 22),
            proc.buffer(1 << 22),
            1 << 22,
            comp,
        )
        # The anchor executes on the (serial) engine but still holds its
        # SWQ slot until completion; the second fills the other slot.
        assert not proc.portal.enqcmd(anchor)
        big = make_memcpy(proc.pasid, anchor.src, anchor.dst, 1 << 22, comp)
        assert not proc.portal.enqcmd(big)
        assert proc.portal.enqcmd(big)  # ZF: queue full

    def test_submit_raises_when_full(self):
        host = build_host(wq_size=1)
        proc = host.new_process()
        comp = proc.comp_record()
        big = make_memcpy(
            proc.pasid, proc.buffer(1 << 22), proc.buffer(1 << 22), 1 << 22, comp
        )
        proc.portal.submit(big)  # dispatched but its slot stays occupied
        with pytest.raises(QueueFullError):
            proc.portal.submit(big)

    def test_queue_drains_after_completion(self):
        host = build_host(wq_size=1)
        proc = host.new_process()
        comp = proc.comp_record()
        small = make_noop(proc.pasid, comp)
        for _ in range(5):
            result = proc.portal.submit_wait(small)
            assert result.record.status is CompletionStatus.SUCCESS

    def test_fifo_completion_order(self, proc):
        comp_addrs = [proc.comp_record() for _ in range(4)]
        tickets = [
            proc.portal.submit(make_noop(proc.pasid, addr)) for addr in comp_addrs
        ]
        for ticket in tickets:
            proc.portal.wait(ticket)
        times = [t.completion_time for t in tickets]
        assert times == sorted(times)

    def test_pasid_is_stamped_by_portal(self, proc):
        """enqcmd takes the PASID from the process context, not the payload."""
        comp = proc.comp_record()
        forged = make_noop(pasid=99999, completion_addr=comp)
        ticket = proc.portal.submit(forged)
        proc.portal.wait(ticket)
        assert ticket.descriptor.pasid == proc.pasid


class TestLatencyLandmarks:
    def test_submission_latency_near_700_cycles(self, proc):
        comp = proc.comp_record()
        latencies = []
        for _ in range(50):
            start = proc.host.clock.now
            proc.portal.enqcmd(make_noop(proc.pasid, comp))
            latencies.append(proc.host.clock.now - start)
            # drain so the queue never fills
            proc.portal.wait(proc.portal.last_ticket)
        mean = sum(latencies) / len(latencies)
        assert 550 <= mean <= 900

    def test_noop_probe_latency_hit_vs_miss(self, proc):
        comp = proc.comp_record()
        other = proc.comp_record()
        probe = make_noop(proc.pasid, comp)
        evict = make_noop(proc.pasid, other)

        proc.portal.submit_wait(probe)  # prime (miss, fills entry)
        hit = proc.portal.submit_wait(probe).latency_cycles
        proc.portal.submit_wait(evict)  # evict comp sub-entry
        miss = proc.portal.submit_wait(probe).latency_cycles
        assert hit < 700
        assert miss > 900
        assert miss - hit > 300

    def test_completion_latency_scales_with_size(self, proc):
        comp = proc.comp_record()
        sizes = [1 << 12, 1 << 16, 1 << 20]
        latencies = []
        for size in sizes:
            src = proc.buffer(size)
            dst = proc.buffer(size)
            result = proc.portal.submit_wait(
                make_memcpy(proc.pasid, src, dst, size, comp)
            )
            latencies.append(result.latency_cycles)
        assert latencies[0] < latencies[1] < latencies[2]
        assert latencies[2] > 10 * latencies[0]
