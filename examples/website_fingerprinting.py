#!/usr/bin/env python3
"""Website fingerprinting demo (Section VI-B).

The victim VM browses through a VPP/memif network path whose packet
copies run on the DSA; the attacker samples the DevTLB from another VM,
trains the Attention-BiLSTM on labeled traces, and then identifies which
site an *unlabeled* visit belongs to.

Run:  python examples/website_fingerprinting.py   (~1-2 minutes)
"""

import numpy as np

from repro.experiments.wf_common import WfSamplerSettings, collect_website_trace
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.train import TrainConfig, Trainer
from repro.workloads.websites import top_sites

SITES = 5
TRAIN_VISITS = 10
SETTINGS = WfSamplerSettings(sample_period_us=100.0, samples_per_slot=40, slots=100)


def main() -> None:
    profiles = top_sites(SITES)
    print("target sites:", ", ".join(p.name for p in profiles))

    print(f"collecting {SITES * TRAIN_VISITS} training traces "
          f"({SETTINGS.slots} slots each)...")
    traces, labels = [], []
    for label, profile in enumerate(profiles):
        for visit in range(TRAIN_VISITS):
            traces.append(
                collect_website_trace(profile, seed=1000 + label * 100 + visit,
                                      settings=SETTINGS)
            )
            labels.append(label)
    x, y = np.stack(traces), np.array(labels)

    print("training the Attention-BiLSTM...")
    model = AttentionBiLstmClassifier(
        classes=SITES, hidden=12, rng=np.random.default_rng(0)
    )
    trainer = Trainer(model, TrainConfig(epochs=60, batch_size=16))
    trainer.fit(x, y)

    print("classifying fresh, unlabeled visits:")
    correct = 0
    rng = np.random.default_rng(99)
    for trial in range(SITES):
        secret = int(rng.integers(0, SITES))
        unknown = collect_website_trace(
            profiles[secret], seed=90_000 + trial, settings=SETTINGS
        )
        guess = int(trainer.predict(unknown[None, :])[0])
        verdict = "correct" if guess == secret else "WRONG"
        correct += guess == secret
        print(f"  visit {trial}: attacker says {profiles[guess].name:<18} "
              f"actual {profiles[secret].name:<18} [{verdict}]")
    print(f"identified {correct}/{SITES} unseen visits "
          f"(paper: 85.7% over 100 sites, 96.5% over 15)")


if __name__ == "__main__":
    main()
