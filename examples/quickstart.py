#!/usr/bin/env python3
"""Quickstart: observe a victim VM's DSA activity from another VM.

Builds the paper's E1 topology (attacker and victim in separate VMs,
separate work queues, one shared DSA engine), calibrates the DevTLB
hit/miss threshold without privileges, and demonstrates that a single
victim memcpy — in a different VM, under PASID isolation — is visible to
the attacker as a DevTLB eviction.

Run:  python examples/quickstart.py
"""

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.dsa.descriptor import make_memcpy
from repro.virt.system import AttackTopology, CloudSystem


def main() -> None:
    # One physical host; attacker and victim VMs with portals onto
    # separate work queues bound to the same engine.
    system = CloudSystem(seed=42)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    attacker, victim = handles.attacker, handles.victim
    print(f"attacker PASID {attacker.pasid} (VM '{attacker.vm_name}'), "
          f"victim PASID {victim.pasid} (VM '{victim.vm_name}')")

    # Unprivileged threshold calibration (Fig. 4's 600-900 cycle band).
    attack = DsaDevTlbAttack(attacker, wq_id=handles.attacker_wq)
    calibration = attack.calibrate(samples=100)
    print(f"calibrated: hit ~{calibration.hit_mean:.0f} cycles, "
          f"miss ~{calibration.miss_mean:.0f} cycles, "
          f"threshold {calibration.threshold} cycles")

    # Prime, stay idle — a quiet engine keeps the entry.
    attack.prime()
    quiet = attack.probe()
    print(f"quiet window:  probe {quiet.latency_cycles} cycles "
          f"-> evicted={quiet.evicted}")

    # The victim copies a buffer through the DSA in its own VM.
    src = victim.buffer(8192)
    dst = victim.buffer(8192)
    comp = victim.comp_record()
    victim.write(src, b"sensitive" * 128)
    victim.portal(handles.victim_wq).submit_wait(
        make_memcpy(victim.pasid, src, dst, 1152, comp)
    )

    busy = attack.probe()
    print(f"victim active: probe {busy.latency_cycles} cycles "
          f"-> evicted={busy.evicted}")
    assert busy.evicted and not quiet.evicted
    print("cross-VM DSA activity observed despite VT-d PASID isolation.")


if __name__ == "__main__":
    main()
