#!/usr/bin/env python3
"""Defense-side demo: detect, then jam, a live DSAssassin attacker.

A host management daemon runs the :class:`AttackDetector` while an
attacker conducts the SWQ Congest+Probe and DevTLB Prime+Probe attacks.
After detection fires, the host deploys the DevTLB scrubber and the demo
shows the attacker's observations turning into noise.

Run:  python examples/defense_monitoring.py
"""

import numpy as np

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.dsa.descriptor import make_noop
from repro.hw.units import us_to_cycles
from repro.mitigation.detector import AttackDetector, DetectorConfig
from repro.mitigation.partitioning import DevTlbScrubber
from repro.virt.system import AttackTopology, CloudSystem


def main() -> None:
    system = CloudSystem(seed=99)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    attacker, victim = handles.attacker, handles.victim

    detector = AttackDetector(system.device, DetectorConfig(poll_period_us=500.0))
    detector.start(system.timeline)
    print("host: attack detector armed (500 us polling)")

    # --- the attacker probes the DevTLB at 10 us cadence -------------
    attack = DsaDevTlbAttack(attacker, wq_id=handles.attacker_wq)
    attack.calibrate(samples=40)
    attack.prime()
    for _ in range(300):
        system.timeline.idle_for_us(10)
        attack.probe()
    system.timeline.idle_for_us(1000)

    print(f"host: detector raised {len(detector.findings)} finding(s):")
    for finding in detector.findings[:3]:
        print(f"  [{finding.kind.value}] {finding.detail}")

    # --- response: deploy the scrubber --------------------------------
    daemon = system.create_vm("host-daemon").spawn_process("scrubber")
    system.open_portal(daemon, handles.attacker_wq)
    scrubber = DevTlbScrubber(daemon, handles.attacker_wq, period_us=8.0,
                              rng=np.random.default_rng(1))
    scrubber.start(system.timeline)
    print("host: DevTLB scrubber deployed (8 us period)")

    # --- the attacker tries to watch the victim again -----------------
    v_portal = victim.portal(handles.victim_wq)
    v_comp = victim.comp_record()
    readings = []
    for i in range(24):
        if i % 2 == 0:
            v_portal.enqcmd(make_noop(victim.pasid, v_comp))  # victim active
        system.timeline.idle_for_us(15)
        readings.append(int(attack.probe().evicted))
    truth = [i % 2 == 0 for i in range(24)]
    agreement = np.mean([r == t for r, t in zip(readings, truth)])
    print(f"attacker reads under scrubbing: {''.join(map(str, readings))}")
    print(f"agreement with victim activity: {agreement * 100:.0f}% "
          f"(~50% = the channel is jammed)")
    scrubber.stop()
    detector.stop()


if __name__ == "__main__":
    main()
