#!/usr/bin/env python3
"""A tour of the Section IV reverse-engineering results.

Runs every microbenchmark the paper used to uncover the DSA's DevTLB
structure, indexing policy, cross-page handling, batch-fetcher behavior,
and arbiter QoS — and shows the raw Perfmon counter deltas behind each
takeaway.

Run:  python examples/reverse_engineering_tour.py
"""

from repro.core.primitives import Prober
from repro.dsa.perfmon import Perfmon
from repro.experiments import reverse_engineering
from repro.virt.system import AttackTopology, CloudSystem


def show_perfmon_walkthrough() -> None:
    """Listing 2 step by step, with live Table I counters."""
    system = CloudSystem(seed=3)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    attacker = system.vms["attacker-vm"].process("attacker")
    prober = Prober(attacker, wq_id=0)
    perfmon = Perfmon(system.device, privileged=True)

    base = prober.fresh_comp()
    evictor = prober.fresh_comp()
    print("Listing 2 walk-through (Perfmon requires root; the attack itself")
    print("never touches it — this is the reverse-engineering view):")
    for step, action in (
        ("probe_noop(base)        # prime", lambda: prober.probe_noop(base)),
        ("probe_noop(base)        # same page", lambda: prober.probe_noop(base)),
        ("probe_noop(base+OFFSET) # evict", lambda: prober.probe_noop(evictor)),
        ("probe_noop(base)        # probe", lambda: prober.probe_noop(base)),
    ):
        before = perfmon.snapshot()
        result = action()
        after = perfmon.snapshot()
        hit = after["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]
        print(f"  {step:<28} latency {result.latency_cycles:>5} cycles  "
              f"EV_ATC_HIT_PREV +{hit}")
    print()


def main() -> None:
    show_perfmon_walkthrough()
    results = reverse_engineering.run()
    print(reverse_engineering.report(results))
    print()
    print(f"every paper observation reproduced: {results.all_reproduced}")


if __name__ == "__main__":
    main()
