#!/usr/bin/env python3
"""Cross-VM covert channel demo (Section VI-A).

Transmits an ASCII message between two VMs that share no memory and no
network — only the DSA.  Shows both primitives: the timing-based DevTLB
channel (~17 kbps true capacity) and the entirely timer-free SWQ channel
(~4 kbps).

Run:  python examples/covert_channel_demo.py
"""

import numpy as np

from repro.covert.channel import (
    DevTlbCovertReceiver,
    run_swq_covert_channel,
)
from repro.covert.metrics import bit_error_rate, true_capacity
from repro.covert.protocol import CovertConfig, CovertSender
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.hw.units import us_to_cycles
from repro.virt.system import AttackTopology, CloudSystem

MESSAGE = "DSASSASSIN"


def text_to_bits(text: str) -> np.ndarray:
    bits = []
    for byte in text.encode():
        bits.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
    return np.array(bits, dtype=np.int8)


def bits_to_text(bits: np.ndarray) -> str:
    data = bytearray()
    for start in range(0, len(bits) - 7, 8):
        value = 0
        for bit in bits[start : start + 8]:
            value = (value << 1) | int(bit)
        data.append(value)
    return data.decode(errors="replace")


def devtlb_demo() -> None:
    print(f"--- DevTLB channel: sending {MESSAGE!r} ---")
    config = CovertConfig()  # 42.5 us windows ~ 23.5 kbps raw
    system = CloudSystem(seed=7)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)

    attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
    attack.calibrate(samples=60)
    sender = CovertSender(
        handles.victim, handles.victim_wq, config, system.rng, evict_devtlb=True
    )
    receiver = DevTlbCovertReceiver(attack, config)

    payload = text_to_bits(MESSAGE)
    start = system.clock.now + us_to_cycles(5 * config.bit_window_us)
    sender.schedule_message(system.timeline, payload, start)
    estimated = receiver.synchronize(system.timeline)
    received = receiver.receive(system.timeline, estimated, len(payload))

    error = bit_error_rate(payload, received)
    print(f"decoded: {bits_to_text(received)!r}")
    print(f"raw {config.raw_bps / 1e3:.1f} kbps, BER {error * 100:.2f}%, "
          f"true capacity {true_capacity(config.raw_bps, error) / 1e3:.2f} kbps")


def swq_demo() -> None:
    print(f"--- SWQ channel (timer-free): random payload ---")
    result = run_swq_covert_channel(payload_bits=len(MESSAGE) * 8, seed=9)
    print(f"raw {result.raw_bps / 1e3:.2f} kbps, BER {result.error_rate * 100:.2f}%, "
          f"true capacity {result.true_bps / 1e3:.2f} kbps "
          f"(no rdtsc anywhere: only EFLAGS.ZF)")


def main() -> None:
    devtlb_demo()
    print()
    swq_demo()


if __name__ == "__main__":
    main()
