#!/usr/bin/env python3
"""LLM fingerprinting demo (Section VI-D).

Cloud LLM inference moves tensors constantly; behind DTO those moves hit
the DSA.  An attacker VM sampling the DevTLB can tell *which model* a
co-tenant is serving — layer depth, token rate, backend type, and MoE
expert swaps all leave distinct cadences.

Run:  python examples/llm_fingerprinting.py   (~1-2 minutes)
"""

import numpy as np

from repro.experiments.fig13_llm import LlmSamplerSettings, collect_llm_trace
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.train import TrainConfig, Trainer
from repro.workloads.llm import LLM_ZOO

MODELS = LLM_ZOO[:5]
TRAIN_TRACES = 6
SETTINGS = LlmSamplerSettings(slots=100)


def main() -> None:
    print("model zoo:", ", ".join(m.name for m in MODELS))
    print(f"collecting {len(MODELS) * TRAIN_TRACES} training traces "
          f"(8 ms slots, {SETTINGS.slots} slots each)...")
    traces, labels = [], []
    for label, model in enumerate(MODELS):
        for index in range(TRAIN_TRACES):
            traces.append(
                collect_llm_trace(model, seed=7000 + label * 100 + index,
                                  settings=SETTINGS)
            )
            labels.append(label)

    print("training the Attention-BiLSTM...")
    classifier = AttentionBiLstmClassifier(
        classes=len(MODELS), hidden=12, rng=np.random.default_rng(1)
    )
    trainer = Trainer(classifier, TrainConfig(epochs=50, batch_size=16))
    trainer.fit(np.stack(traces), np.array(labels))

    print("identifying which model an unknown tenant is serving:")
    rng = np.random.default_rng(11)
    correct = 0
    for trial in range(5):
        secret = int(rng.integers(0, len(MODELS)))
        unknown = collect_llm_trace(
            MODELS[secret], seed=80_000 + trial, settings=SETTINGS
        )
        guess = int(trainer.predict(unknown[None, :])[0])
        verdict = "correct" if guess == secret else "WRONG"
        correct += guess == secret
        print(f"  tenant {trial}: attacker says {MODELS[guess].name:<18} "
              f"actual {MODELS[secret].name:<18} [{verdict}]")
    print(f"identified {correct}/5 (paper: 98.6% over 8 models)")


if __name__ == "__main__":
    main()
