#!/usr/bin/env python3
"""SSH keystroke timing recovery (Section VI-C).

A victim types a command over SSH; DTO transparently offloads the
connection's buffer operations to the DSA.  The attacker — in another VM
— recovers the keystroke timestamps with both primitives and scores
itself against the ground truth.

Run:  python examples/keystroke_sniffing.py
"""

from repro.experiments import fig12_keystrokes


def main() -> None:
    print("victim types 192 keystrokes over an SSH session with DTO enabled")
    print("attacker 1: DevTLB Prime+Probe   (timing threshold on rdtsc)")
    print("attacker 2: SWQ Congest+Probe    (no timer at all: EFLAGS.ZF)")
    print()
    result = fig12_keystrokes.run(keystrokes=192, seed=3)
    print(fig12_keystrokes.report(result))
    print()
    devtlb, swq = result.devtlb.evaluation, result.swq.evaluation
    print(f"With the recovered inter-keystroke timings "
          f"(DevTLB sigma {devtlb.timestamp_std_ms:.2f} ms, "
          f"SWQ sigma {swq.timestamp_std_ms:.2f} ms), the standard "
          f"Song-et-al. analysis can narrow the typed text.")


if __name__ == "__main__":
    main()
