#!/usr/bin/env bash
# Full static-analysis gate (see docs/static-analysis.md):
#
#   1. repro.lint   — the AST determinism/invariant checker (always runs;
#                     new findings beyond lint-baseline.json fail),
#   2. ruff / mypy  — configured in pyproject.toml, run when installed,
#                     skipped with a notice otherwise (the container may
#                     not ship them),
#   3. pytest -m lint — the subprocess self-scan excluded from tier-1.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== repro.lint =="
python -m repro.lint src "$@"

# SARIF artifact for CI annotation surfaces; the second run is cheap
# because the summary cache is warm after the gate above.
SARIF_OUT="${SARIF_OUT:-lint-results.sarif}"
python -m repro.lint src --format sarif > "$SARIF_OUT" || true
echo "SARIF written to $SARIF_OUT"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff == (not installed; skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy
else
    echo "== mypy == (not installed; skipped)"
fi

echo "== pytest -m lint =="
python -m pytest tests/tools -o addopts="" -m lint -q

echo "lint gate passed"
