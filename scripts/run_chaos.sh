#!/usr/bin/env bash
# Run the full chaos suite, including the long fault-storm scenarios that
# the default pytest configuration excludes via `-m "not chaos"`.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Preflight: chaos evidence is only meaningful if the tree obeys the
# determinism/invariant rules (docs/static-analysis.md) — including
# the whole-program DET101/DET102/PAR101/EXC101 findings; any new
# finding fails the run here.
python -m repro.lint src

# Chaos runs assert "injected faults are either handled or detected":
# every CloudSystem built under this suite carries the strict runtime
# invariant monitor (docs/invariants.md).
export REPRO_INVARIANTS="${REPRO_INVARIANTS:-strict}"

exec python -m pytest tests/chaos -o addopts="" -q "$@"
