#!/usr/bin/env python3
"""Run an experiment at (or toward) the paper's full scale.

The benchmarks default to reduced dataset sizes so the suite finishes in
minutes; this script exposes the scale knobs for long runs::

    # the paper's 15-site subset of Fig. 11 at full trace geometry
    python scripts/paper_scale.py fig11 --sites 15 --visits 50 --paper-sampling

    # the full 100 x 200 configuration (expect many hours, like the
    # paper's own "approximately a day to collect")
    python scripts/paper_scale.py fig11 --sites 100 --visits 200 --paper-sampling

    # Fig. 13 at 50 traces per model, Fig. 12 at the paper's 512 keystrokes
    python scripts/paper_scale.py fig13 --traces 50
    python scripts/paper_scale.py fig12 --keystrokes 512

Collection cost grows linearly in traces and in samples per trace.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig11_wf_classification, fig12_keystrokes, fig13_llm
from repro.experiments.runner import monotonic_clock
from repro.experiments.wf_common import PAPER_SCALE, WfSamplerSettings


def run_fig11(args: argparse.Namespace) -> None:
    settings = PAPER_SCALE if args.paper_sampling else None
    result = fig11_wf_classification.run(
        sites=args.sites,
        visits_per_site=args.visits,
        settings=settings,
        epochs=args.epochs,
        hidden=args.hidden,
        seed=args.seed,
    )
    print(fig11_wf_classification.report(result))


def run_fig12(args: argparse.Namespace) -> None:
    result = fig12_keystrokes.run(keystrokes=args.keystrokes, seed=args.seed)
    print(fig12_keystrokes.report(result))


def run_fig13(args: argparse.Namespace) -> None:
    result = fig13_llm.run(
        traces_per_model=args.traces, epochs=args.epochs, seed=args.seed
    )
    print(fig13_llm.report(result))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="experiment", required=True)

    fig11 = sub.add_parser("fig11", help="website fingerprinting")
    fig11.add_argument("--sites", type=int, default=15)
    fig11.add_argument("--visits", type=int, default=50)
    fig11.add_argument("--epochs", type=int, default=80)
    fig11.add_argument("--hidden", type=int, default=16)
    fig11.add_argument("--paper-sampling", action="store_true",
                       help="10 us sampling, 400 samples/slot, 250 slots")
    fig11.set_defaults(runner=run_fig11)

    fig12 = sub.add_parser("fig12", help="SSH keystrokes")
    fig12.add_argument("--keystrokes", type=int, default=512)
    fig12.set_defaults(runner=run_fig12)

    fig13 = sub.add_parser("fig13", help="LLM fingerprinting")
    fig13.add_argument("--traces", type=int, default=50)
    fig13.add_argument("--epochs", type=int, default=80)
    fig13.set_defaults(runner=run_fig13)

    for subparser in (fig11, fig12, fig13):
        subparser.add_argument("--seed", type=int, default=2026)

    args = parser.parse_args(argv)
    started = monotonic_clock()
    args.runner(args)
    print(f"({monotonic_clock() - started:.0f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
