#!/usr/bin/env bash
# Run the randomized self-verifying soak harness (docs/invariants.md).
#
# Default budget is deliberately bounded: SOAK_RUNS consecutive seeds at
# SOAK_OPERATIONS operations each under the strict monitor — about a
# minute of wall clock — so the script is safe to wire into CI.  Raise
# the env knobs (or pass explicit flags after `--`) for a longer hunt:
#
#   SOAK_RUNS=50 SOAK_SEED=1000 scripts/run_soak.sh
#   scripts/run_soak.sh -- --seed 7 --operations 2000 --mode strict
#
# Exit code 6 (EXIT_INVARIANT) means a violation was found; the minimal
# shrunken reproducer and the one-command repro line are printed.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SOAK_SEED="${SOAK_SEED:-0}"
SOAK_RUNS="${SOAK_RUNS:-8}"
SOAK_OPERATIONS="${SOAK_OPERATIONS:-300}"

# The soak-marked pytest scenarios first (excluded from tier-1).
python -m pytest tests/invariants -o addopts="" -m soak -q

if [[ "${1:-}" == "--" ]]; then
    shift
    exec python -m repro.invariants.soak "$@"
fi

exec python -m repro.invariants.soak \
    --seed "$SOAK_SEED" \
    --runs "$SOAK_RUNS" \
    --operations "$SOAK_OPERATIONS" \
    "$@"
