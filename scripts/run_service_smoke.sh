#!/usr/bin/env bash
# Always-on service smoke test:
#
#   1. lint preflight (includes ASY101 — host-blocking calls reachable
#      from the service's device-time coroutines),
#   2. clean CLI run: every offer settles, books balance, exit 0,
#   3. chaos lane: all three SERVICE_* fault sites armed plus the
#      session-kill coroutine — still exactly accounted, exit 0,
#   4. SIGTERM drain lane: kill a bigger run mid-flight (expect exit
#      130 and a drain checkpoint), then --resume it to completion and
#      check no session was lost across the restart,
#   5. run the pytest suites marked `service` (excluded from tier-1).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint preflight =="
python -m repro.lint src

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== clean run =="
python -m repro.service --sessions 300 --report "$workdir/clean.json"

echo "== chaos run (all service sites + kill lane) =="
python -m repro.service --sessions 300 --chaos-prob 0.05 --kill-prob 0.3 \
    --report "$workdir/chaos.json"

# Provisioned load for the drain lane: 8 lanes at an 80k-cycle mean
# interarrival is just under capacity, so an uninterrupted run
# completes every session — which is what makes "drain + resume loses
# nothing" checkable as an exact count.
drain_load=(--sessions 6000 --lanes 8 --mean-interarrival-cycles 80000)

echo "== drain lane (SIGTERM mid-run) =="
python -m repro.service "${drain_load[@]}" --collect-session-ids \
    --checkpoint-dir "$workdir" --report "$workdir/drained.json" \
    >/dev/null 2>&1 &
pid=$!
sleep 2
kill -TERM "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
if [[ "$rc" -ne 130 ]]; then
    echo "FAIL: drained run exited $rc, expected 130" >&2
    exit 1
fi
if [[ ! -f "$workdir/service-checkpoint.json" ]]; then
    echo "FAIL: SIGTERM drain left no checkpoint" >&2
    exit 1
fi
echo "   drained with checkpoint (exit 130)"

echo "== resume =="
python -m repro.service "${drain_load[@]}" --collect-session-ids \
    --resume "$workdir/service-checkpoint.json" \
    --checkpoint-dir "$workdir" --report "$workdir/resumed.json"
python - "$workdir" <<'PY'
import json, sys
workdir = sys.argv[1]
first = json.load(open(f"{workdir}/drained.json"))
second = json.load(open(f"{workdir}/resumed.json"))
a = set(first["session_ids"].get("completed", ()))
b = set(second["session_ids"].get("completed", ()))
acct1, acct2 = first["accounting"], second["accounting"]
assert first["status"] == "drained" and second["status"] == "completed"
assert not (a & b), "a session completed twice across the restart"
offered = acct1["offered"] + acct2["offered"]
assert offered == 6000, f"sessions lost across restart: {offered}/6000"
assert len(a) + len(b) == 6000, (
    f"non-completed exits under a provisioned load: {len(a)}+{len(b)}/6000"
)
assert acct2["resumed"] == acct1["checkpointed"], "checkpointed != resumed"
print(f"   {len(a)} + {len(b)} completions, disjoint; "
      f"{acct1['checkpointed']} checkpointed and all resumed")
PY

echo "== pytest -m service =="
python -m pytest tests -o addopts="" -m service -q "$@"

echo "service smoke test passed"
