#!/usr/bin/env bash
# End-to-end crash/resume smoke test:
#
#   1. run a small checkpointed fig09 sweep to completion (the reference),
#   2. start the identical sweep fresh, SIGTERM it mid-run (expect exit
#      130 and a journaled partial run),
#   3. --resume the killed run to completion,
#   4. byte-compare the resumed artifact against the reference,
#   5. run the pytest suites marked `resume` (excluded from tier-1).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint preflight =="
python -m repro.lint src

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

sweep=(fig09 --set payload_bits=256 --set runs=3)

echo "== reference run (uninterrupted) =="
python -m repro.experiments "${sweep[@]}" --run-dir "$workdir/ref" >/dev/null

echo "== interrupted run (SIGTERM mid-sweep) =="
python -m repro.experiments "${sweep[@]}" --run-dir "$workdir/int" >/dev/null 2>&1 &
pid=$!
sleep 1
kill -TERM "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
if [[ "$rc" -ne 130 ]]; then
    echo "FAIL: interrupted run exited $rc, expected 130" >&2
    exit 1
fi
completed=$(python -c "import json;print(json.load(open('$workdir/int/manifest.json'))['completed'])")
echo "   killed after $completed journaled trials (exit 130)"

echo "== resume =="
python -m repro.experiments "${sweep[@]}" --resume "$workdir/int" >/dev/null

echo "== diff artifact =="
cmp "$workdir/ref/result.pkl" "$workdir/int/result.pkl"
echo "   resumed artifact is byte-identical to the uninterrupted run"

echo "== pytest -m resume =="
python -m pytest tests -o addopts="" -m resume -q "$@"

echo "resume smoke test passed"
