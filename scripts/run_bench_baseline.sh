#!/usr/bin/env bash
# Record the parallel-scaling baseline: the fig09 covert plan at 1/2/4
# workers, written to BENCH_parallel.json at the repo root (the first
# tracked BENCH_* artifact).  Run on a >= 4-core machine to enforce the
# 2.5x speedup target; on fewer cores the run records measured numbers
# and bounds the sharding overhead instead.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest benchmarks/test_bench_parallel_scaling.py \
    -o addopts="" -q -s -p no:cacheprovider "$@"

echo "== BENCH_parallel.json =="
cat BENCH_parallel.json
