#!/usr/bin/env bash
# Run the coverage-guided fuzzer's smoke suite (docs/fuzzing.md).
#
# Order matters: the FUZ001 lint preflight runs first, because an
# unseeded draw anywhere in repro.fuzz silently voids every determinism
# guarantee the campaign tests then appear to certify.  After the
# fuzz-marked pytest scenarios, a short seeded campaign runs end to end
# and writes its report under FUZZ_DIR.
#
#   FUZZ_TRIALS=500 FUZZ_SEED=3 scripts/run_fuzz_smoke.sh
#   scripts/run_fuzz_smoke.sh -- --seed 7 --trials 1000 --fault-rate 0.01
#
# Exit code 7 (EXIT_FINDINGS) means the campaign found a contract
# violation; the shrunken reproducer and its one-command replay line are
# printed and persisted under FUZZ_DIR/findings/.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

FUZZ_SEED="${FUZZ_SEED:-0}"
FUZZ_TRIALS="${FUZZ_TRIALS:-150}"
FUZZ_DIR="${FUZZ_DIR:-fuzz-campaign}"

# Lint preflight: the fuzzer's own RNG-hygiene rule plus the
# whole-program rules — seed provenance and corpus-state taint only
# resolve with every module's summary in view, so lint all of src
# (the summary cache keeps warm re-runs fast).
python -m repro.lint src

# The fuzz-marked pytest scenarios (excluded from tier-1).
python -m pytest tests/fuzz -o addopts="" -m fuzz -q

if [[ "${1:-}" == "--" ]]; then
    shift
    exec python -m repro.fuzz "$@"
fi

exec python -m repro.fuzz \
    --seed "$FUZZ_SEED" \
    --trials "$FUZZ_TRIALS" \
    --dir "$FUZZ_DIR" \
    "$@"
