#!/usr/bin/env bash
# Persistent-pool smoke test:
#
#   1. lint preflight (includes the PAR002 pool-resource rule and its
#      whole-program twins PAR101/EXC101 — cross-process shared-state
#      writes and resource leaks through helper returns),
#   2. run a small fig09 sweep serially and again on the supervised
#      pool (--executor pool, 2 workers), byte-compare the artifacts,
#   3. run the pytest suites marked `pool` (excluded from tier-1):
#      the chaos matrix (crash/stall/corrupt workers, external kill -9,
#      SIGTERM drain) plus anything else riding the marker.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint preflight =="
python -m repro.lint src

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

sweep=(fig09 --set payload_bits=256 --set runs=3)

echo "== serial reference =="
python -m repro.experiments "${sweep[@]}" --run-dir "$workdir/serial" >/dev/null

echo "== 2-worker pooled run =="
python -m repro.experiments "${sweep[@]}" --workers 2 --executor pool \
    --run-dir "$workdir/pool" >/dev/null

echo "== diff artifact =="
cmp "$workdir/serial/result.pkl" "$workdir/pool/result.pkl"
echo "   pooled artifact is byte-identical to the serial run"

echo "== pytest -m pool =="
python -m pytest tests -o addopts="" -m pool -q "$@"

echo "pool smoke test passed"
