#!/usr/bin/env bash
# Sharded-executor smoke test:
#
#   1. lint preflight (includes the PAR001 worker-closure rule),
#   2. run a small fig09 sweep serially and again with --workers 2,
#      byte-compare the finalized artifacts,
#   3. run the pytest suites marked `parallel` (excluded from tier-1).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint preflight =="
python -m repro.lint src

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

sweep=(fig09 --set payload_bits=256 --set runs=3)

echo "== serial reference =="
python -m repro.experiments "${sweep[@]}" --run-dir "$workdir/serial" >/dev/null

echo "== 2-worker sharded run =="
python -m repro.experiments "${sweep[@]}" --workers 2 --executor spawn \
    --run-dir "$workdir/par" >/dev/null

echo "== diff artifact =="
cmp "$workdir/serial/result.pkl" "$workdir/par/result.pkl"
echo "   sharded artifact is byte-identical to the serial run"

echo "== pytest -m parallel =="
python -m pytest tests -o addopts="" -m parallel -q "$@"

echo "parallel smoke test passed"
