"""DSAssassin reproduction library.

A production-quality behavioral model of the Intel Data Streaming
Accelerator (DSA) and the cross-VM side-channel attacks built on it by
*DSAssassin: Cross-VM Side-Channel Attacks by Exploiting Intel Data
Streaming Accelerator* (HPCA 2026).

Packages
--------
``repro.hw``
    Simulated hardware base: TSC, physical memory, page tables, PCIe,
    environment noise models.
``repro.ats``
    VT-d Address Translation Services: PASIDs, the IOMMU translation
    agent, the IOTLB, and the reverse-engineered per-engine DevTLB.
``repro.dsa``
    The DSA device: descriptors, work queues, portals (enqcmd/DMWr),
    engines, the batch engine, the arbiter, and the Perfmon block.
``repro.virt``
    Virtual machines, guest processes, and the hypervisor's scalable-IOV
    portal mapping.
``repro.core``
    The paper's attack primitives: DevTLB Prime+Probe and SWQ
    Congest+Probe, plus calibration and trace sampling.
``repro.covert``
    The cross-VM covert channel (Fig. 9).
``repro.workloads``
    Victim workloads: DTO, VPP/memif, website traffic, SSH keystrokes,
    LLM inference.
``repro.ml``
    NumPy-from-scratch Attention-BiLSTM classifier and baselines.
``repro.mitigation``
    Software/hardware mitigations and the Fig. 14 overhead harness.
``repro.analysis``
    Statistics, keystroke-event evaluation, and report formatting.
``repro.experiments``
    One runnable module per paper table and figure.
"""

__version__ = "1.0.0"
