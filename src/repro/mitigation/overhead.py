"""The Fig. 14 overhead harness.

Reproduces the paper's methodology: run the ``dsa-perf-micros``-style
native DSA copy loop and the DTO-intercepted copy loop across transfer
sizes, with and without the software DevTLB mitigation, and report the
throughput degradation.  The paper sees up to 15.7 % (native) and 17.9 %
(DTO) at the smallest size (256 B), fading as transfers grow — small
operations live and die by DevTLB locality, which is exactly what the
scrubber destroys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsa.descriptor import make_memcpy
from repro.hw.units import DEFAULT_TSC_HZ
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline
from repro.virt.system import CloudSystem
from repro.workloads.dto import DtoRuntime


@dataclass(frozen=True)
class OverheadRow:
    """One Fig. 14 data point."""

    size_bytes: int
    path: str  # "dsa" or "dto"
    baseline_gbps: float
    mitigated_gbps: float

    @property
    def overhead_percent(self) -> float:
        """Throughput loss caused by the mitigation."""
        if self.baseline_gbps <= 0:
            return 0.0
        return (1.0 - self.mitigated_gbps / self.baseline_gbps) * 100.0


def _gbps(total_bytes: int, cycles: int, tsc_hz: int = DEFAULT_TSC_HZ) -> float:
    seconds = cycles / tsc_hz
    return total_bytes / seconds / 1e9 if seconds > 0 else 0.0


def measure_dsa_throughput(
    process: GuestProcess,
    wq_id: int,
    size: int,
    iterations: int,
    timeline: Timeline | None = None,
) -> float:
    """Native-path throughput: synchronous submit/poll memcpy loop.

    Reuses the same source/destination buffers every iteration, as
    ``dsa-perf-micros`` does — which is what gives the baseline its
    DevTLB locality.
    """
    src = process.buffer(max(size, 4096))
    dst = process.buffer(max(size, 4096))
    comp = process.comp_record()
    portal = process.portal(wq_id)
    clock = portal.clock
    # Warm up translations so steady-state locality is measured.
    portal.submit_wait(make_memcpy(process.pasid, src, dst, size, comp))
    start = clock.now
    for _ in range(iterations):
        portal.submit_wait(make_memcpy(process.pasid, src, dst, size, comp))
        if timeline is not None:
            timeline.run_until(clock.now)
    return _gbps(size * iterations, clock.now - start, clock.freq_hz)


def measure_dto_throughput(
    dto: DtoRuntime,
    size: int,
    iterations: int,
    timeline: Timeline | None = None,
) -> float:
    """DTO-path throughput: intercepted memcpy loop with a final drain."""
    process = dto.process
    src = process.buffer(max(size, 4096))
    dst = process.buffer(max(size, 4096))
    clock = dto.portal.clock
    dto.memcpy(dst, src, size)  # warm-up
    if dto.portal.last_ticket is not None:
        dto.portal.wait(dto.portal.last_ticket)
    start = clock.now
    for _ in range(iterations):
        dto.memcpy(dst, src, size)
        if dto.portal.last_ticket is not None:
            dto.portal.wait(dto.portal.last_ticket)
        if timeline is not None:
            timeline.run_until(clock.now)
    return _gbps(size * iterations, clock.now - start, clock.freq_hz)


def mitigation_overhead_sweep(
    sizes: list[int],
    iterations: int = 200,
    scrub_period_us: float = 4.6,
    seed: int = 99,
) -> list[OverheadRow]:
    """Run the full Fig. 14 sweep and return its rows.

    Each (size, path) cell compares a quiet system against one running
    the :class:`~repro.mitigation.partitioning.DevTlbScrubber` on the
    victim's queue.
    """
    from repro.mitigation.partitioning import DevTlbScrubber
    from repro.virt.system import AttackTopology

    rows: list[OverheadRow] = []
    for size in sizes:
        throughput: dict[tuple[str, bool], float] = {}
        for mitigated in (False, True):
            system = CloudSystem(seed=seed)
            handles = system.setup_topology(
                AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE
            )
            victim = handles.victim
            scrubber = None
            if mitigated:
                daemon_vm = system.create_vm("host-daemon")
                daemon = daemon_vm.spawn_process("scrubber")
                system.open_portal(daemon, handles.attacker_wq)
                scrubber = DevTlbScrubber(
                    daemon, handles.attacker_wq, period_us=scrub_period_us
                )
                scrubber.start(system.timeline)
            throughput[("dsa", mitigated)] = measure_dsa_throughput(
                victim, handles.victim_wq, size, iterations, system.timeline
            )
            # DTO path needs its threshold below the smallest size so the
            # sweep exercises the offload at 256 B like the paper.
            dto = DtoRuntime(victim, wq_id=handles.victim_wq, min_bytes=64)
            throughput[("dto", mitigated)] = measure_dto_throughput(
                dto, size, iterations, system.timeline
            )
            if scrubber is not None:
                scrubber.stop()
        for path in ("dsa", "dto"):
            rows.append(
                OverheadRow(
                    size_bytes=size,
                    path=path,
                    baseline_gbps=throughput[(path, False)],
                    mitigated_gbps=throughput[(path, True)],
                )
            )
    return rows
