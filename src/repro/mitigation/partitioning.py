"""Mitigations against DSAssassin (Section VII).

**Hardware level** — two proposals from the paper, both expressible as
device configuration:

* :func:`hardware_partitioned_config` tags DevTLB entries with the PASID
  (the IOTLB-style isolation fix), killing ``DSA_DevTLB``.
* :func:`privileged_dmwr_config` hides the DMWr accept/retry answer from
  unprivileged submitters, killing ``DSA_SWQ``.

**Software level** — the mitigation the paper actually implements and
measures (Fig. 14): :class:`DevTlbScrubber`, a privileged daemon that
*periodically inserts random entries into the DevTLB* so an attacker's
probe observations decorrelate from victim activity.  Its cost is the
victim's lost DevTLB locality plus the scrubber's own queue slots, which
Fig. 14 quantifies.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.ats.devtlb import DevTlbConfig
from repro.dsa.descriptor import make_noop
from repro.dsa.device import DsaDeviceConfig
from repro.hw.units import PAGE_SIZE
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline


def hardware_partitioned_config(
    base: DsaDeviceConfig | None = None,
) -> DsaDeviceConfig:
    """A device whose DevTLB is PASID-partitioned (hardware fix #1)."""
    base = base or DsaDeviceConfig()
    return replace(base, devtlb=DevTlbConfig(
        pasid_partitioned=True,
        slots_per_subentry=base.devtlb.slots_per_subentry,
    ))


def privileged_dmwr_config(base: DsaDeviceConfig | None = None) -> DsaDeviceConfig:
    """A device whose DMWr answer is privileged (hardware fix #2)."""
    base = base or DsaDeviceConfig()
    return replace(base, dmwr_privileged=True)


class DevTlbScrubber:
    """The software *partitioning* mitigation measured in Fig. 14.

    A privileged host daemon owns one process per protected work queue
    and, every ``period_us``, submits a noop descriptor with a random
    completion-record page — replacing whatever translation a tenant (or
    attacker) had cached in that engine's ``comp`` sub-entry.

    Parameters
    ----------
    process:
        The daemon's guest process (typically host-owned), already bound
        to the protected queue.
    wq_id:
        Queue whose engine to scrub.
    period_us:
        Scrub interval; smaller = stronger protection, larger overhead.
    pool_pages:
        Number of distinct completion pages cycled through.
    """

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int,
        period_us: float = 25.0,
        pool_pages: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self.process = process
        self.portal = process.portal(wq_id)
        self.period_us = period_us
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._pool = [process.space.mmap(PAGE_SIZE) for _ in range(pool_pages)]
        self.scrubs = 0
        self.skipped_full = 0
        self._running = False

    def start(self, timeline: Timeline) -> None:
        """Begin periodic scrubbing (self-rescheduling timeline action)."""
        self._running = True
        timeline.schedule_after_us(self.period_us, lambda: self._tick(timeline))

    def stop(self) -> None:
        """Stop after the next tick."""
        self._running = False

    def _tick(self, timeline: Timeline) -> None:
        if not self._running:
            return
        # The daemon is privileged: it reads the occupancy register and
        # yields to tenant traffic, scrubbing only idle gaps — protection
        # without queueing interference.
        device = self.portal.device
        device.advance_to(self.portal.clock.now)
        busy = any(q.occupancy > 0 for q in device.queue_space.queues())
        if busy:
            self.skipped_full += 1
        else:
            comp = self._pool[int(self.rng.integers(0, len(self._pool)))]
            descriptor = make_noop(self.process.pasid, comp)
            if self.portal.enqcmd(descriptor):
                self.skipped_full += 1
            else:
                self.scrubs += 1
        # Jitter the period slightly so attackers cannot subtract a
        # deterministic scrub pattern.
        jitter = float(self.rng.uniform(0.85, 1.15))
        timeline.schedule_after_us(self.period_us * jitter, lambda: self._tick(timeline))
