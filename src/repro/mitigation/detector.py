"""Runtime detection of DSAssassin-style attack patterns.

Beyond blocking (partitioning, privileged DMWr) and jamming (the
scrubber), a host can *detect* these attacks: their primitives leave
highly characteristic fingerprints in counters a privileged daemon
already has —

* ``DSA_SWQ`` congests a queue with bursts of ``wq_size - 1``
  submissions and probes it: per-queue **rejection rates** (DMWr retry
  counts) explode, and queue occupancy sits pinned at capacity.
* ``DSA_DevTLB`` probes one completion page at a fixed cadence: the
  engine's Perfmon shows a stream of single-page descriptors whose
  DevTLB behavior alternates with victim activity — an
  **abnormally high request rate with near-zero data movement**.

:class:`AttackDetector` polls those counters periodically and raises
findings.  It needs root (Perfmon + occupancy registers), which a cloud
host's management plane has.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dsa.device import DsaDevice
from repro.virt.scheduler import Timeline


class FindingKind(enum.Enum):
    """What the detector believes it saw."""

    SWQ_CONGESTION_PROBING = "swq-congestion-probing"
    DEVTLB_PROBE_CADENCE = "devtlb-probe-cadence"


@dataclass(frozen=True)
class Finding:
    """One detector alert."""

    kind: FindingKind
    timestamp: int
    detail: str


@dataclass
class _QueueBaseline:
    rejected: int = 0
    enqueued: int = 0


@dataclass
class _EngineBaseline:
    requests: int = 0
    bytes_processed: int = 0
    descriptors: int = 0


@dataclass
class DetectorConfig:
    """Detection thresholds per polling window."""

    poll_period_us: float = 1000.0
    #: Rejected/attempted ratio above which a queue is congestion-probed.
    rejection_ratio_threshold: float = 0.05
    #: Minimum submissions in a window before the ratio is meaningful.
    min_submissions: int = 8
    #: Consecutive polls with occupancy pinned at >= size-1 before the
    #: queue is flagged (the armed state of Congest+Probe).
    pinned_polls_threshold: int = 3
    #: Descriptors/window above this with avg size below min_avg_bytes
    #: flags a probe cadence.
    probe_rate_threshold: int = 20
    min_avg_bytes: float = 64.0


class AttackDetector:
    """Privileged polling detector for both attack primitives."""

    def __init__(self, device: DsaDevice, config: DetectorConfig | None = None) -> None:
        self.device = device
        self.config = config or DetectorConfig()
        self.findings: list[Finding] = []
        self._queue_baselines: dict[int, _QueueBaseline] = {}
        self._engine_baselines: dict[int, _EngineBaseline] = {}
        self._pinned_streak: dict[int, int] = {}
        self._running = False
        self.polls = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, timeline: Timeline) -> None:
        """Begin periodic polling on *timeline*."""
        self._running = True
        self._snapshot_baselines()
        timeline.schedule_after_us(
            self.config.poll_period_us, lambda: self._poll(timeline)
        )

    def stop(self) -> None:
        """Stop after the next tick."""
        self._running = False

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def _snapshot_baselines(self) -> None:
        for queue in self.device.queue_space.queues():
            self._queue_baselines[queue.wq_id] = _QueueBaseline(
                rejected=queue.rejected_total, enqueued=queue.enqueued_total
            )
        for engine_id, engine in self.device.engines.items():
            stats = self.device.devtlb.engine_stats(engine_id)
            self._engine_baselines[engine_id] = _EngineBaseline(
                requests=stats.alloc_requests,
                bytes_processed=engine.stats.bytes_processed,
                descriptors=engine.stats.descriptors_executed,
            )

    def _poll(self, timeline: Timeline) -> None:
        if not self._running:
            return
        self.polls += 1
        now = timeline.clock.now
        self.device.advance_to(now)
        self._check_queues(now)
        self._check_engines(now)
        self._snapshot_baselines()
        timeline.schedule_after_us(
            self.config.poll_period_us, lambda: self._poll(timeline)
        )

    def _check_queues(self, now: int) -> None:
        config = self.config
        for queue in self.device.queue_space.queues():
            baseline = self._queue_baselines.get(queue.wq_id, _QueueBaseline())
            rejected = queue.rejected_total - baseline.rejected
            attempted = (queue.enqueued_total - baseline.enqueued) + rejected
            ratio = rejected / attempted if attempted else 0.0
            if (
                attempted >= config.min_submissions
                and ratio >= config.rejection_ratio_threshold
            ):
                self.findings.append(
                    Finding(
                        kind=FindingKind.SWQ_CONGESTION_PROBING,
                        timestamp=now,
                        detail=(
                            f"WQ {queue.wq_id}: {rejected}/{attempted} DMWr "
                            f"retries ({ratio:.0%}) in one window"
                        ),
                    )
                )
                continue
            # Armed-state detection: Congest+Probe keeps the occupancy
            # register pinned at capacity(-1) even when nobody is being
            # rejected (no victim active yet).
            pinned = queue.occupancy >= queue.config.size - 1
            streak = self._pinned_streak.get(queue.wq_id, 0) + 1 if pinned else 0
            self._pinned_streak[queue.wq_id] = streak
            if streak == config.pinned_polls_threshold:
                self.findings.append(
                    Finding(
                        kind=FindingKind.SWQ_CONGESTION_PROBING,
                        timestamp=now,
                        detail=(
                            f"WQ {queue.wq_id}: occupancy pinned at "
                            f"{queue.occupancy}/{queue.config.size} for "
                            f"{streak} consecutive polls"
                        ),
                    )
                )

    def _check_engines(self, now: int) -> None:
        config = self.config
        for engine_id, engine in self.device.engines.items():
            baseline = self._engine_baselines.get(engine_id, _EngineBaseline())
            descriptors = engine.stats.descriptors_executed - baseline.descriptors
            data_bytes = engine.stats.bytes_processed - baseline.bytes_processed
            if descriptors < config.probe_rate_threshold:
                continue
            average = data_bytes / descriptors
            if average < config.min_avg_bytes:
                self.findings.append(
                    Finding(
                        kind=FindingKind.DEVTLB_PROBE_CADENCE,
                        timestamp=now,
                        detail=(
                            f"engine {engine_id}: {descriptors} descriptors "
                            f"averaging {average:.0f} B in one window "
                            f"(zero-work probe cadence)"
                        ),
                    )
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def findings_of(self, kind: FindingKind) -> list[Finding]:
        """All findings of one kind."""
        return [f for f in self.findings if f.kind is kind]

    @property
    def triggered(self) -> bool:
        """Whether anything was flagged."""
        return bool(self.findings)
