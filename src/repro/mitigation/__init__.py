"""Mitigations (Section VII), detection, and the Fig. 14 overhead harness."""

from repro.mitigation.detector import (
    AttackDetector,
    DetectorConfig,
    Finding,
    FindingKind,
)
from repro.mitigation.overhead import (
    OverheadRow,
    measure_dsa_throughput,
    measure_dto_throughput,
    mitigation_overhead_sweep,
)
from repro.mitigation.partitioning import (
    DevTlbScrubber,
    hardware_partitioned_config,
    privileged_dmwr_config,
)

__all__ = [
    "AttackDetector",
    "DetectorConfig",
    "DevTlbScrubber",
    "Finding",
    "FindingKind",
    "OverheadRow",
    "hardware_partitioned_config",
    "measure_dsa_throughput",
    "measure_dto_throughput",
    "mitigation_overhead_sweep",
    "privileged_dmwr_config",
]
