"""The Translation Agent (TA).

On a DevTLB miss the device sends an ATS translation request across the
link; the TA selects the process page table via the PASID, consults its own
IOTLB, walks the page table on an IOTLB miss, and returns the physical
address (Section II-B, steps 1-3).  The returned
:class:`TranslationResult` carries the cycle cost so the engine model can
charge it to the descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ats.iotlb import IoTlb
from repro.ats.pasid import PasidTable
from repro.ats.prs import PageRequestService
from repro.errors import TranslationFault
from repro.hw.units import PAGE_SHIFT, PAGE_SIZE


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of one ATS translation request."""

    physical_address: int
    cycles: int
    iotlb_hit: bool
    faulted: bool = False


class TranslationAgent:
    """Services ATS translation requests on behalf of the IOMMU.

    Parameters
    ----------
    pasid_table:
        The PASID → page-table bindings.
    iotlb:
        The agent's PASID-tagged IOTLB.
    prs:
        Page Request Service used when a walk faults.
    """

    def __init__(
        self,
        pasid_table: PasidTable,
        iotlb: IoTlb | None = None,
        prs: PageRequestService | None = None,
    ) -> None:
        self.pasid_table = pasid_table
        self.iotlb = iotlb or IoTlb()
        self.prs = prs or PageRequestService()
        self.walks = 0
        self.invariant_monitor = None
        #: Optional ``(site, token)`` callback installed by the fuzzer's
        #: coverage map (:meth:`repro.fuzz.coverage.CoverageMap.install`).
        self.coverage_probe = None

    def translate(
        self, pasid: int, virtual_address: int, write: bool = False, timestamp: int = 0
    ) -> TranslationResult:
        """Translate *virtual_address* in the PASID's address space.

        The cost is the IOTLB lookup plus, on a miss, a full page walk.  A
        faulting walk goes through the PRS; if the PRS handler resolves the
        fault the walk is retried once.
        """
        if self.invariant_monitor is not None:
            self.invariant_monitor.note("translate", pasid=pasid)
        space = self.pasid_table.lookup(pasid)
        vpn = virtual_address >> PAGE_SHIFT
        cycles = self.iotlb.lookup_cycles
        frame = self.iotlb.lookup(pasid, vpn)
        if frame is not None:
            if self.coverage_probe is not None:
                self.coverage_probe("ats.translate", "iotlb-hit")
            pa = (frame << PAGE_SHIFT) | (virtual_address & (PAGE_SIZE - 1))
            return TranslationResult(physical_address=pa, cycles=cycles, iotlb_hit=True)

        faulted = False
        cycles += space.walk_cycles
        self.walks += 1
        try:
            pa = space.translate(virtual_address, write=write)
            if self.coverage_probe is not None:
                self.coverage_probe("ats.translate", "walk")
        except TranslationFault:
            faulted = True
            if self.coverage_probe is not None:
                self.coverage_probe("ats.translate", "prs-retry")
            cycles += self.prs.report(pasid, virtual_address, write, timestamp)
            cycles += space.walk_cycles
            self.walks += 1
            pa = space.translate(virtual_address, write=write)

        self.iotlb.insert(pasid, vpn, pa >> PAGE_SHIFT)
        return TranslationResult(
            physical_address=pa, cycles=cycles, iotlb_hit=False, faulted=faulted
        )

    def invalidate_pasid(self, pasid: int) -> None:
        """PASID-selective invalidation of the agent's IOTLB."""
        self.iotlb.invalidate_pasid(pasid)
