"""VT-d Address Translation Services substrate.

Models the translation path the paper describes in Section II-B:

* :mod:`repro.ats.pasid` — Process Address Space ID allocation and the
  PASID table that binds a PASID to a process page table.
* :mod:`repro.ats.iotlb` — the IOMMU's PASID-tagged, set-associative
  IOTLB (properly isolated, per VT-d scalable mode).
* :mod:`repro.ats.devtlb` — the device-side TLB the paper
  reverse-engineers: indexed by engine ID and descriptor field type,
  one slot per sub-entry, **not** tagged by PASID.
* :mod:`repro.ats.agent` — the Translation Agent that services ATS
  translation requests by walking the PASID-selected page table.
* :mod:`repro.ats.prs` — the Page Request Service used for device-side
  page faults.
"""

from repro.ats.agent import TranslationAgent, TranslationResult
from repro.ats.devtlb import DevTlb, DevTlbConfig, FieldType
from repro.ats.iotlb import IoTlb
from repro.ats.pasid import PasidAllocator, PasidTable
from repro.ats.prs import PageRequestService

__all__ = [
    "DevTlb",
    "DevTlbConfig",
    "FieldType",
    "IoTlb",
    "PageRequestService",
    "PasidAllocator",
    "PasidTable",
    "TranslationAgent",
    "TranslationResult",
]
