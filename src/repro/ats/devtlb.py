"""The reverse-engineered DSA Device TLB (Address Translation Cache).

Section IV-B of the paper establishes, via the Perfmon events of Table I,
that DSA's DevTLB:

* is indexed first by **engine ID**, then by the **descriptor field type**
  the access belongs to — ``src``, ``src2``, ``dst``, ``dst2``, or the
  completion-record address ``comp`` (Takeaways 1 and 2);
* holds exactly **one slot** per ``(engine, field)`` sub-entry, so any
  access to a different page directly evicts the previous entry;
* caches translations at page granularity (the low 12 bits are ignored)
  and keeps **no dedicated entries per page size** — a huge-page access
  evicts a 4 KiB entry in the same sub-entry;
* carries **no PASID tag**: processes in different VMs sharing an engine
  share the sub-entries, which is the vulnerability behind
  ``DSA_DevTLB``;
* caches only the translation of the **final page segment** of a
  cross-page transfer (the engine model enforces this by issuing one
  :meth:`DevTlb.access` per page segment in order);
* is bypassed entirely by the batch fetcher's descriptor reads and
  completion writes (enforced by the batch-engine model).

The three Perfmon events are modeled exactly as the paper uses them:
``EV_ATC_ALLOC`` counts every translation request, ``EV_ATC_NO_ALLOC``
counts requests that did *not* replace an entry (i.e. hits), and
``EV_ATC_HIT_PREV`` counts hits on a previously cached entry.

:class:`DevTlbConfig` also exposes the two knobs the mitigation study
(Section VII) and the ablation benchmarks need: PASID partitioning (the
proposed hardware fix) and the number of slots per sub-entry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.faults.canary import CANARY_DEVTLB_EVICT, canary_active


class FieldType(enum.Enum):
    """The five descriptor fields that own DevTLB sub-entries (Fig. 3)."""

    SRC = "src"
    SRC2 = "src2"
    DST = "dst"
    DST2 = "dst2"
    COMP = "comp"


#: Number of sub-entries per engine — one per field type.
SUB_ENTRIES_PER_ENGINE = len(FieldType)


@dataclass(frozen=True)
class DevTlbConfig:
    """Structural configuration of the DevTLB.

    The defaults model the real device as reverse-engineered.  The other
    settings exist for the mitigation study and ablations:

    ``pasid_partitioned``
        When ``True``, entries are tagged by PASID (the hardware defense
        proposed in Section VII); cross-PASID eviction and cross-PASID hits
        both disappear.
    ``slots_per_subentry``
        Associativity of each sub-entry (the real device has 1); eviction
        within a sub-entry is LRU when more than one slot exists.
    """

    pasid_partitioned: bool = False
    slots_per_subentry: int = 1

    def __post_init__(self) -> None:
        if self.slots_per_subentry < 1:
            raise ValueError("slots_per_subentry must be at least 1")


@dataclass
class DevTlbStats:
    """The Table I Perfmon events, as raw counters."""

    alloc_requests: int = 0  # EV_ATC_ALLOC  (0x2 / 0x40)
    no_alloc: int = 0  # EV_ATC_NO_ALLOC (0x2 / 0x80)
    hits: int = 0  # EV_ATC_HIT_PREV (0x2 / 0x100)

    def snapshot(self) -> "DevTlbStats":
        """Return a copy (used to diff counters around an experiment)."""
        return DevTlbStats(self.alloc_requests, self.no_alloc, self.hits)

    def delta(self, before: "DevTlbStats") -> "DevTlbStats":
        """Return the counter increase since *before*."""
        return DevTlbStats(
            alloc_requests=self.alloc_requests - before.alloc_requests,
            no_alloc=self.no_alloc - before.no_alloc,
            hits=self.hits - before.hits,
        )


@dataclass
class _Slot:
    """One cached translation."""

    base_vpn: int  # first 4 KiB page covered
    pages: int  # coverage in 4 KiB pages (1 or 512)
    pasid: int  # only compared when partitioned

    def covers(self, vpn: int) -> bool:
        return self.base_vpn <= vpn < self.base_vpn + self.pages


@dataclass
class _SubEntry:
    """The slot list of one (engine, field) sub-entry; front = LRU."""

    slots: list[_Slot] = field(default_factory=list)


class DevTlb:
    """The device-side TLB shared by all work queues of each engine."""

    def __init__(self, config: DevTlbConfig | None = None) -> None:
        self.config = config or DevTlbConfig()
        self._entries: dict[tuple, _SubEntry] = {}
        self.stats = DevTlbStats()
        self._per_engine: dict[int, DevTlbStats] = {}
        self.invariant_monitor = None
        #: Optional ``(site, token)`` callback installed by the fuzzer's
        #: coverage map (:meth:`repro.fuzz.coverage.CoverageMap.install`).
        self.coverage_probe = None

    def _evict_limit(self) -> int:
        """Slot count at which a miss evicts the sub-entry's LRU slot."""
        limit = self.config.slots_per_subentry
        if canary_active(CANARY_DEVTLB_EVICT):
            # Seeded canary bug (REPRO_FUZZ_CANARY=devtlb-evict): the
            # eviction check runs one slot too late, letting a sub-entry
            # exceed its associativity — the devtlb census audit must
            # catch the oversized slot list.
            limit += 1
        return limit

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def _sub_entry(self, engine_id: int, field_type: FieldType, pasid: int) -> _SubEntry:
        # The proposed hardware fix partitions the structure by PASID:
        # each PASID owns private sub-entries, so no cross-tenant hit
        # *or eviction* is possible.  The real device has one shared
        # sub-entry per (engine, field).
        if self.config.pasid_partitioned:
            key: tuple = (engine_id, field_type, pasid)
        else:
            key = (engine_id, field_type)
        sub = self._entries.get(key)
        if sub is None:
            sub = _SubEntry()
            self._entries[key] = sub
        return sub

    def _engine_stats(self, engine_id: int) -> DevTlbStats:
        stats = self._per_engine.get(engine_id)
        if stats is None:
            stats = DevTlbStats()
            self._per_engine[engine_id] = stats
        return stats

    def _matches(self, slot: _Slot, vpn: int, pasid: int) -> bool:
        if self.config.pasid_partitioned and slot.pasid != pasid:
            return False
        return slot.covers(vpn)

    def access(
        self,
        engine_id: int,
        field_type: FieldType,
        virtual_page: int,
        pasid: int,
        huge: bool = False,
    ) -> bool:
        """One translation request from an engine's processing unit.

        Returns ``True`` on a DevTLB hit.  On a miss, the new translation
        replaces the sub-entry's LRU slot, which models the paper's
        "the new entry evicts the old one directly" (Takeaway 1).
        """
        sub = self._sub_entry(engine_id, field_type, pasid)
        engine_stats = self._engine_stats(engine_id)
        self.stats.alloc_requests += 1
        engine_stats.alloc_requests += 1

        for index, slot in enumerate(sub.slots):
            if self._matches(slot, virtual_page, pasid):
                self.stats.hits += 1
                self.stats.no_alloc += 1
                engine_stats.hits += 1
                engine_stats.no_alloc += 1
                sub.slots.append(sub.slots.pop(index))  # mark MRU
                if self.coverage_probe is not None:
                    self.coverage_probe(
                        "devtlb.access", f"{field_type.value}:hit"
                    )
                if self.invariant_monitor is not None:
                    self.invariant_monitor.note(
                        "devtlb", engine_id=engine_id, pasid=pasid, hit=1
                    )
                return True

        pages = 512 if huge else 1
        base_vpn = virtual_page - (virtual_page % pages) if huge else virtual_page
        new_slot = _Slot(base_vpn=base_vpn, pages=pages, pasid=pasid)
        evicted = None
        if len(sub.slots) >= self._evict_limit():
            evicted = sub.slots.pop(0)
        sub.slots.append(new_slot)
        if self.coverage_probe is not None:
            if evicted is not None and evicted.pasid != pasid:
                token = f"{field_type.value}:evict-xpasid"
            elif evicted is not None:
                token = f"{field_type.value}:evict"
            else:
                token = f"{field_type.value}:miss"
            self.coverage_probe("devtlb.access", token)
        if self.invariant_monitor is not None:
            self.invariant_monitor.note(
                "devtlb", engine_id=engine_id, pasid=pasid, hit=0
            )
        return False

    def fill(
        self,
        engine_id: int,
        field_type: FieldType,
        virtual_page: int,
        pasid: int,
        huge: bool = False,
    ) -> None:
        """Install a translation without touching the event counters.

        Used by the engine's bulk cross-page path: the counters for the
        skipped pages are adjusted arithmetically, and this leaves the
        final page cached (the paper's cross-page takeaway).
        """
        sub = self._sub_entry(engine_id, field_type, pasid)
        pages = 512 if huge else 1
        base_vpn = virtual_page - (virtual_page % pages) if huge else virtual_page
        if len(sub.slots) >= self._evict_limit():
            sub.slots.pop(0)
        sub.slots.append(_Slot(base_vpn=base_vpn, pages=pages, pasid=pasid))
        if self.invariant_monitor is not None:
            self.invariant_monitor.note(
                "devtlb", engine_id=engine_id, pasid=pasid, hit=0
            )

    def peek(
        self, engine_id: int, field_type: FieldType, virtual_page: int, pasid: int
    ) -> bool:
        """Non-mutating "would this hit" check (testing/diagnostics only)."""
        key = (
            (engine_id, field_type, pasid)
            if self.config.pasid_partitioned
            else (engine_id, field_type)
        )
        sub = self._entries.get(key)
        if sub is None:
            return False
        return any(self._matches(slot, virtual_page, pasid) for slot in sub.slots)

    # ------------------------------------------------------------------
    # Invalidation and inspection
    # ------------------------------------------------------------------
    def invalidate_engine(self, engine_id: int) -> None:
        """Drop every sub-entry of *engine_id* (device reset path)."""
        for key, sub in self._entries.items():
            if key[0] == engine_id:
                sub.slots.clear()

    def invalidate_all(self) -> None:
        """Drop everything (ATS global invalidate)."""
        for sub in self._entries.values():
            sub.slots.clear()

    def engine_stats(self, engine_id: int) -> DevTlbStats:
        """Return (and lazily create) the counter block of one engine."""
        return self._engine_stats(engine_id)

    def cached_pages(
        self, engine_id: int, field_type: FieldType, pasid: int | None = None
    ) -> list[int]:
        """Base page numbers currently cached in one sub-entry (LRU first).

        With a partitioned DevTLB the sub-entry is per-PASID, so *pasid*
        selects whose partition to inspect.
        """
        if self.config.pasid_partitioned:
            if pasid is None:
                pages = []
                for key, sub in self._entries.items():
                    if key[0] == engine_id and key[1] is field_type:
                        pages.extend(slot.base_vpn for slot in sub.slots)
                return pages
            sub = self._entries.get((engine_id, field_type, pasid))
        else:
            sub = self._entries.get((engine_id, field_type))
        if sub is None:
            return []
        return [slot.base_vpn for slot in sub.slots]

    def census(self) -> "list[tuple[int, str, int | None, tuple[int, ...]]]":
        """A read-only walk over every sub-entry for the invariant audit.

        Yields ``(engine_id, field_name, key_pasid, slot_pasids)`` per
        sub-entry; ``key_pasid`` is ``None`` on the real (unpartitioned)
        device, where sub-entries carry no PASID tag.
        """
        rows = []
        for key, sub in self._entries.items():
            key_pasid = key[2] if self.config.pasid_partitioned else None
            rows.append(
                (
                    key[0],
                    key[1].value,
                    key_pasid,
                    tuple(slot.pasid for slot in sub.slots),
                )
            )
        return rows

    @property
    def occupancy(self) -> int:
        """Total valid slots across all sub-entries."""
        return sum(len(sub.slots) for sub in self._entries.values())
