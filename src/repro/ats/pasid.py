"""PASID allocation and the PASID table.

With Shared Virtual Memory (SVM), the OS assigns a Process Address Space
ID when a process opens the device (maps a DSA portal).  The IOMMU's PASID
table then binds each PASID to that process's page table so the
Translation Agent can walk it on the device's behalf.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.pagetable import AddressSpace

#: VT-d defines PASIDs as 20-bit values; 0 is reserved.
MAX_PASID = (1 << 20) - 1


class PasidAllocator:
    """Hands out unique PASIDs and recycles released ones."""

    def __init__(self) -> None:
        self._next = 1
        self._free: list[int] = []
        self._live: set[int] = set()

    def allocate(self) -> int:
        """Allocate a fresh PASID."""
        if self._free:
            pasid = self._free.pop()
        else:
            if self._next > MAX_PASID:
                raise ConfigurationError("PASID space exhausted")
            pasid = self._next
            self._next += 1
        self._live.add(pasid)
        return pasid

    def release(self, pasid: int) -> None:
        """Return *pasid* to the pool."""
        if pasid not in self._live:
            raise ConfigurationError(f"PASID {pasid} is not allocated")
        self._live.remove(pasid)
        self._free.append(pasid)

    def is_live(self, pasid: int) -> bool:
        """Return ``True`` while *pasid* is allocated."""
        return pasid in self._live

    @property
    def live_count(self) -> int:
        """Number of currently allocated PASIDs."""
        return len(self._live)


class PasidTable:
    """Binds PASIDs to process page tables (the scalable-mode PASID table).

    One table exists per IOMMU; the hypervisor installs entries when a VM's
    process opens the device.
    """

    def __init__(self) -> None:
        self._entries: dict[int, AddressSpace] = {}

    def bind(self, pasid: int, address_space: AddressSpace) -> None:
        """Install the page-table binding for *pasid*."""
        if pasid in self._entries:
            raise ConfigurationError(f"PASID {pasid} is already bound")
        self._entries[pasid] = address_space

    def unbind(self, pasid: int) -> None:
        """Remove the binding for *pasid*."""
        if self._entries.pop(pasid, None) is None:
            raise ConfigurationError(f"PASID {pasid} is not bound")

    def lookup(self, pasid: int) -> AddressSpace:
        """Return the page table bound to *pasid*."""
        space = self._entries.get(pasid)
        if space is None:
            raise ConfigurationError(f"PASID {pasid} has no page-table binding")
        return space

    def is_bound(self, pasid: int) -> bool:
        """Return ``True`` when *pasid* has a binding."""
        return pasid in self._entries

    def __len__(self) -> int:
        return len(self._entries)
