"""The IOMMU's IOTLB.

Under VT-d scalable mode the IOTLB is tagged with the PASID, which is
exactly the isolation the paper says mitigates *traditional* IOTLB attacks
(DevIOus-style).  The model is a set-associative cache with true-LRU
replacement within each set, indexed by the low bits of the virtual page
number, and supports the per-PASID invalidations VT-d exposes.

DSAssassin works *despite* this structure being safe — the leak lives in
the DevTLB, which sits on the device side of the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IoTlbTag:
    """Cache tag: the PASID makes entries per-process."""

    pasid: int
    virtual_page: int


@dataclass
class IoTlbStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Set:
    """One cache set; ``order`` front = LRU, back = MRU."""

    entries: dict[IoTlbTag, int] = field(default_factory=dict)
    order: list[IoTlbTag] = field(default_factory=list)


class IoTlb:
    """PASID-tagged set-associative IOTLB with LRU replacement.

    Parameters
    ----------
    sets:
        Number of sets (power of two).
    ways:
        Associativity.
    lookup_cycles:
        Cost of one IOTLB lookup inside the translation agent.
    """

    def __init__(self, sets: int = 64, ways: int = 8, lookup_cycles: int = 28) -> None:
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"sets must be a positive power of two, got {sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.sets = sets
        self.ways = ways
        self.lookup_cycles = lookup_cycles
        self._sets = [_Set() for _ in range(sets)]
        self.stats = IoTlbStats()

    def _set_for(self, virtual_page: int) -> _Set:
        return self._sets[virtual_page & (self.sets - 1)]

    def lookup(self, pasid: int, virtual_page: int) -> int | None:
        """Look up a translation; return the physical frame or ``None``."""
        tag = IoTlbTag(pasid=pasid, virtual_page=virtual_page)
        cache_set = self._set_for(virtual_page)
        frame = cache_set.entries.get(tag)
        if frame is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        cache_set.order.remove(tag)
        cache_set.order.append(tag)
        return frame

    def insert(self, pasid: int, virtual_page: int, physical_frame: int) -> None:
        """Install a translation, evicting the set's LRU entry if full."""
        tag = IoTlbTag(pasid=pasid, virtual_page=virtual_page)
        cache_set = self._set_for(virtual_page)
        if tag in cache_set.entries:
            cache_set.order.remove(tag)
        elif len(cache_set.entries) >= self.ways:
            victim = cache_set.order.pop(0)
            del cache_set.entries[victim]
        cache_set.entries[tag] = physical_frame
        cache_set.order.append(tag)

    def invalidate_pasid(self, pasid: int) -> int:
        """Drop every entry of *pasid* (VT-d PASID-selective invalidation)."""
        dropped = 0
        for cache_set in self._sets:
            victims = [tag for tag in cache_set.entries if tag.pasid == pasid]
            for tag in victims:
                del cache_set.entries[tag]
                cache_set.order.remove(tag)
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def invalidate_all(self) -> None:
        """Global invalidation."""
        for cache_set in self._sets:
            self.stats.invalidations += len(cache_set.entries)
            cache_set.entries.clear()
            cache_set.order.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid entries."""
        return sum(len(s.entries) for s in self._sets)
