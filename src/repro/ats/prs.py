"""Page Request Service.

ATS lets the device report major page faults to the OS instead of failing
the transfer (Section II-B).  The model queues page requests and hands
them to a registered handler — in the reproduction the handler is usually
the owning process's "OS", which maps the page on demand.

The request log is bounded (``max_log`` entries, oldest dropped first)
so million-submission runs do not grow memory without limit; ``dropped``
counts rotated-out entries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import TranslationFault
from repro.faults.plan import FaultSite

#: Round-trip cost of a page request: interrupt the host, run the fault
#: handler, respond to the device.  Page faults are catastrophically slower
#: than any TLB effect, which is why attack buffers are always pre-faulted.
PAGE_REQUEST_CYCLES = 12_000

#: Default bound on the retained request log.
DEFAULT_MAX_LOG = 65_536

PageRequestHandler = Callable[[int, int, bool], bool]


@dataclass(frozen=True)
class PageRequest:
    """One queued device page fault."""

    pasid: int
    virtual_address: int
    write: bool
    timestamp: int


class PageRequestService:
    """Queues device page faults and dispatches them to a handler.

    Parameters
    ----------
    handler:
        The OS-side fault handler (installable later via
        :meth:`set_handler`).
    max_log:
        Retained-log bound; ``None`` keeps every request (unbounded).
    """

    def __init__(
        self,
        handler: PageRequestHandler | None = None,
        max_log: int | None = DEFAULT_MAX_LOG,
    ) -> None:
        if max_log is not None and max_log < 1:
            raise ValueError(f"max_log must be positive or None, got {max_log}")
        self._handler = handler
        self._log: deque[PageRequest] = deque(maxlen=max_log)
        self.resolved = 0
        self.failed = 0
        self.dropped = 0
        self.fault_injector = None
        #: Optional ``(site, token)`` callback installed by the fuzzer's
        #: coverage map (:meth:`repro.fuzz.coverage.CoverageMap.install`).
        self.coverage_probe = None

    def set_handler(self, handler: PageRequestHandler) -> None:
        """Install the OS-side fault handler."""
        self._handler = handler

    def report(self, pasid: int, virtual_address: int, write: bool, timestamp: int) -> int:
        """Report a fault; return the cycles the device stalled.

        Raises :class:`~repro.errors.TranslationFault` when no handler is
        installed or the handler cannot resolve the fault — matching a
        descriptor completing with a page-fault status.
        """
        request = PageRequest(pasid, virtual_address, write, timestamp)
        if self._log.maxlen is not None and len(self._log) == self._log.maxlen:
            self.dropped += 1
        self._log.append(request)
        if self.fault_injector is not None:
            drop = self.fault_injector.fire(
                FaultSite.PRS_DROP,
                timestamp=timestamp,
                pasid=pasid,
                address=virtual_address,
            )
        else:
            drop = None
        if drop is not None:
            self.failed += 1
            self.fault_injector.acknowledge(drop, action="prs-request-dropped")
            if self.coverage_probe is not None:
                self.coverage_probe("ats.prs", "injected-drop")
            raise TranslationFault(
                virtual_address,
                f"injected unresolved device page fault at {virtual_address:#x} "
                f"(PASID {pasid})",
                pasid=pasid,
            )
        if self._handler is not None and self._handler(pasid, virtual_address, write):
            self.resolved += 1
            if self.coverage_probe is not None:
                self.coverage_probe("ats.prs", "resolved")
            return PAGE_REQUEST_CYCLES
        self.failed += 1
        if self.coverage_probe is not None:
            self.coverage_probe("ats.prs", "unresolved")
        raise TranslationFault(
            virtual_address,
            f"unresolved device page fault at {virtual_address:#x} (PASID {pasid})",
            pasid=pasid,
        )

    @property
    def log(self) -> tuple[PageRequest, ...]:
        """The retained requests, oldest first (see ``dropped``)."""
        return tuple(self._log)
