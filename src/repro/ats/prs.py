"""Page Request Service.

ATS lets the device report major page faults to the OS instead of failing
the transfer (Section II-B).  The model queues page requests and hands
them to a registered handler — in the reproduction the handler is usually
the owning process's "OS", which maps the page on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import TranslationFault

#: Round-trip cost of a page request: interrupt the host, run the fault
#: handler, respond to the device.  Page faults are catastrophically slower
#: than any TLB effect, which is why attack buffers are always pre-faulted.
PAGE_REQUEST_CYCLES = 12_000

PageRequestHandler = Callable[[int, int, bool], bool]


@dataclass(frozen=True)
class PageRequest:
    """One queued device page fault."""

    pasid: int
    virtual_address: int
    write: bool
    timestamp: int


class PageRequestService:
    """Queues device page faults and dispatches them to a handler."""

    def __init__(self, handler: PageRequestHandler | None = None) -> None:
        self._handler = handler
        self._log: list[PageRequest] = []
        self.resolved = 0
        self.failed = 0

    def set_handler(self, handler: PageRequestHandler) -> None:
        """Install the OS-side fault handler."""
        self._handler = handler

    def report(self, pasid: int, virtual_address: int, write: bool, timestamp: int) -> int:
        """Report a fault; return the cycles the device stalled.

        Raises :class:`~repro.errors.TranslationFault` when no handler is
        installed or the handler cannot resolve the fault — matching a
        descriptor completing with a page-fault status.
        """
        request = PageRequest(pasid, virtual_address, write, timestamp)
        self._log.append(request)
        if self._handler is not None and self._handler(pasid, virtual_address, write):
            self.resolved += 1
            return PAGE_REQUEST_CYCLES
        self.failed += 1
        raise TranslationFault(
            virtual_address,
            f"unresolved device page fault at {virtual_address:#x} (PASID {pasid})",
        )

    @property
    def log(self) -> tuple[PageRequest, ...]:
        """Every request reported so far, in order."""
        return tuple(self._log)
