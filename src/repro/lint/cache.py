"""The summary cache: warm re-lints only re-analyze what changed.

Phase 1 (parse + per-file rules + summary extraction) is the expensive
part of a lint run — a couple hundred ASTs.  Phase 2 (the whole-program
fixpoint) is pure dict math over summaries and runs in milliseconds.
The cache therefore stores, per file, keyed by the SHA-256 of its
source:

* the extracted :class:`~repro.lint.project.ModuleSummary`,
* the per-file rule findings (post-suppression, pre-baseline) with
  their baseline fingerprints and the suppression count.

A warm run re-parses only files whose hash changed; every other module
contributes its cached summary to phase 2, which always re-runs — so an
edit to one module is still checked against the *whole* program, and
the engine reports the invalidation set (the changed modules plus their
transitive reverse importers) for observability and tests.

The cache is invalidated wholesale when the engine fingerprint changes:
rule set, summary format version, or cache schema version.  It is a
pure accelerator — deleting it is always safe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.lint.checker import Finding
from repro.lint.project import SUMMARY_VERSION, ModuleSummary

#: Cache schema version, bumped on incompatible change.
CACHE_VERSION = 1

#: Default cache filename, resolved against the lint root.
DEFAULT_CACHE = ".repro-lint-cache.json"


def engine_fingerprint(rule_ids: list[str]) -> str:
    """Identity of the analysis configuration a cache entry is valid
    for: cache schema, summary format, and the selected rule set."""
    payload = json.dumps(
        {
            "cache": CACHE_VERSION,
            "summary": SUMMARY_VERSION,
            "rules": sorted(rule_ids),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheEntry:
    """Everything phase 1 produced for one file."""

    sha256: str
    summary: ModuleSummary
    #: ``[finding, fingerprint]`` pairs surviving inline suppression.
    findings: list[tuple[Finding, str]] = field(default_factory=list)
    suppressed: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "sha256": self.sha256,
            "summary": self.summary.to_json(),
            "findings": [
                [f.to_json(), print_] for f, print_ in self.findings
            ],
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "CacheEntry":
        return cls(
            sha256=raw["sha256"],
            summary=ModuleSummary.from_json(raw["summary"]),
            findings=[
                (
                    Finding(
                        path=f["path"],
                        line=f["line"],
                        col=f["col"],
                        rule=f["rule"],
                        message=f["message"],
                    ),
                    print_,
                )
                for f, print_ in raw["findings"]
            ],
            suppressed=raw["suppressed"],
        )


class SummaryCache:
    """The on-disk phase-1 cache of one lint root."""

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.entries: dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_shas: dict[str, str] = {}

    # -- persistence ---------------------------------------------------
    @classmethod
    def load(cls, path: str | Path, fingerprint: str) -> "SummaryCache":
        """Read the cache at *path*; a missing, malformed, or
        differently-fingerprinted cache yields an empty one."""
        cache = cls(path, fingerprint)
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cache
        if (
            not isinstance(raw, dict)
            or raw.get("version") != CACHE_VERSION
            or raw.get("fingerprint") != fingerprint
        ):
            return cache
        try:
            for rel, entry in raw.get("files", {}).items():
                cache.entries[rel] = CacheEntry.from_json(entry)
        except (KeyError, TypeError, ValueError):
            cache.entries.clear()
            return cache
        cache._loaded_shas = {
            rel: entry.sha256 for rel, entry in cache.entries.items()
        }
        return cache

    def save(self) -> None:
        """Write the cache (sorted keys, stable bytes)."""
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": {
                rel: entry.to_json()
                for rel, entry in sorted(self.entries.items())
            },
        }
        self.path.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )

    # -- lookups -------------------------------------------------------
    def get(self, rel: str, sha256: str) -> CacheEntry | None:
        """Cache hit for *rel* at content *sha256*, if any."""
        entry = self.entries.get(rel)
        if entry is not None and entry.sha256 == sha256:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, rel: str, entry: CacheEntry) -> None:
        self.entries[rel] = entry

    def changed_since_load(self, rel: str, sha256: str) -> bool:
        """Whether *rel* differs from what the loaded cache recorded
        (new files count as changed)."""
        return self._loaded_shas.get(rel) != sha256

    def prune(self, keep: set[str]) -> None:
        """Drop entries for files no longer part of the lint scope."""
        for rel in list(self.entries):
            if rel not in keep:
                del self.entries[rel]
