"""File discovery, the two-phase lint driver, suppressions, baselines.

:class:`LintEngine` runs a lint as two phases:

* **Phase 1 — per file, cached.**  Each ``*.py`` file is hashed
  (SHA-256); on a cache hit its per-file findings and module summary
  are reused verbatim, otherwise the file is parsed once, every
  selected per-file rule's checker walks the shared AST, inline
  suppressions are applied, and the
  :class:`~repro.lint.project.ModuleSummary` is extracted.
* **Phase 2 — whole program, always.**  The summaries are stitched
  into the project call graph, the taint fixpoint runs
  (:func:`repro.lint.taint.analyze`), and the interprocedural rules
  (DET101/DET102/PAR101/EXC101) emit findings anchored at
  summary-recorded sites — no AST needed, which is why warm re-lints
  are fast while still checking every edit against the whole program.

The report's :attr:`~LintReport.invalidated_modules` records which
modules phase 2 had to *re-verify* because of this run's edits: the
changed modules plus their transitive reverse importers.

Suppressions
------------
A finding is suppressed by a comment on its own physical line::

    latency = time.time()  # repro-lint: ignore[DET002]

``ignore[RULE1,RULE2]`` scopes the suppression; a bare
``# repro-lint: ignore`` suppresses every rule on that line.  Policy
(docs/static-analysis.md): suppressions are for the rare *intentional*
exception and must carry a justification in an adjacent comment —
determinism rules (DET001/DET002/DET101/DET102) are fixed, not
suppressed.

Baselines
---------
A baseline file grandfathers pre-existing findings so the checker can be
wired into CI before the backlog reaches zero.  Fingerprints hash the
rule, file, and normalized source line (plus an occurrence counter for
duplicates) — **not** the line number — so unrelated edits do not churn
the baseline.  ``python -m repro.lint --write-baseline`` regenerates it;
the committed ``lint-baseline.json`` is empty because every real finding
was fixed at the source.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.cache import CacheEntry, SummaryCache, engine_fingerprint
from repro.lint.checker import Checker, FileContext, Finding, ProjectChecker
from repro.lint.project import ModuleSummary, sha256_text, summarize
from repro.lint.rules import (
    ALL_CHECKERS,
    PROJECT_CHECKERS,
    RULES,
)
from repro.lint.taint import ProjectAnalysis, analyze

#: Baseline schema version, bumped on incompatible change.
BASELINE_VERSION = 1

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "lint-baseline.json"

#: Directory name holding intentional-finding fixtures; skipped when a
#: *parent* directory is walked (linting the fixtures directly still
#: works — the golden tests depend on it).
FIXTURE_DIR_NAME = "lint_fixtures"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Rules suppressed on *line*: a set of ids, ``frozenset()`` for an
    unscoped ``ignore`` (suppress everything), or ``None`` for no
    directive."""
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(
        rule.strip().upper() for rule in rules.split(",") if rule.strip()
    )


def fingerprint(finding: Finding, source_line: str, occurrence: int) -> str:
    """Line-number-independent identity of one finding."""
    payload = "|".join(
        [finding.rule, finding.path, source_line.strip(), str(occurrence)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """Grandfathered findings, addressed by fingerprint."""

    fingerprints: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (raises ``ValueError`` when malformed)."""
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline format in {path}; regenerate with"
                " --write-baseline"
            )
        findings = raw.get("findings", {})
        if not isinstance(findings, dict):
            raise ValueError(f"baseline {path} has a malformed findings map")
        return cls(fingerprints=dict(findings))

    def save(self, path: str | Path) -> None:
        """Write the baseline (sorted keys, stable bytes)."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.fingerprints.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(cls, report: "LintReport") -> "Baseline":
        """A baseline that grandfathers every finding in *report*."""
        baseline = cls()
        for finding, print_ in report.fingerprinted():
            baseline.fingerprints[print_] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        return baseline


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: int = 0
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)
    #: ``(finding, fingerprint)`` pairs, parallel to :attr:`findings`.
    _fingerprints: list[str] = field(default_factory=list)
    #: Phase-1 cache telemetry: files served from the summary cache vs
    #: parsed fresh this run.
    cache_hits: int = 0
    parsed: int = 0
    #: Modules phase 2 re-verified because of this run's edits: the
    #: changed modules plus their transitive reverse importers.
    invalidated_modules: list[str] = field(default_factory=list)

    def fingerprinted(self) -> list[tuple[Finding, str]]:
        """Findings with their baseline fingerprints."""
        return list(zip(self.findings, self._fingerprints))

    @property
    def all_findings(self) -> list[Finding]:
        """Rule findings plus parse errors, in location order."""
        return sorted(self.findings + self.parse_errors)

    def counts_by_rule(self) -> dict[str, int]:
        """``{rule: finding count}`` including parse errors."""
        counts: dict[str, int] = {}
        for finding in self.all_findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict[str, object]:
        """The ``--format json`` document."""
        return {
            "findings": [f.to_json() for f in self.all_findings],
            "counts": self.counts_by_rule(),
            "files_checked": self.files_checked,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "cache": {
                "hits": self.cache_hits,
                "parsed": self.parsed,
                "invalidated_modules": list(self.invalidated_modules),
            },
        }


class LintEngine:
    """One configured lint run: selected rules, root, baseline, cache."""

    def __init__(
        self,
        root: str | Path = ".",
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
        checkers: Sequence[type[Checker]] | None = None,
        project_checkers: Sequence[type[ProjectChecker]] | None = None,
        cache_path: str | Path | None = None,
    ) -> None:
        self.root = Path(root).resolve()
        available = list(checkers) if checkers is not None else list(ALL_CHECKERS)
        available_project = (
            list(project_checkers)
            if project_checkers is not None
            else list(PROJECT_CHECKERS)
        )
        chosen = {c.rule for c in available} | {
            c.rule for c in available_project
        }
        if select:
            chosen &= _validate_rules(select)
        if ignore:
            chosen -= _validate_rules(ignore)
        self.checkers: tuple[type[Checker], ...] = tuple(
            c for c in available if c.rule in chosen
        )
        self.project_checkers: tuple[type[ProjectChecker], ...] = tuple(
            c for c in available_project if c.rule in chosen
        )
        #: The cache is keyed to the *full* rule configuration: a
        #: different selection invalidates it wholesale.
        self._fingerprint = engine_fingerprint(sorted(chosen))
        self.cache_path = Path(cache_path) if cache_path is not None else None

    # -- discovery ------------------------------------------------------
    def discover(self, paths: Iterable[str | Path]) -> list[Path]:
        """All ``*.py`` files under *paths*, sorted, de-duplicated.

        Walking a directory skips nested ``lint_fixtures`` trees (they
        hold intentional findings); passing a fixture file or the
        fixtures directory itself as an explicit path still lints it.
        """
        seen: dict[Path, None] = {}
        for raw in paths:
            path = (
                (self.root / raw).resolve()
                if not Path(raw).is_absolute()
                else Path(raw)
            )
            if path.is_dir():
                inside_fixtures = FIXTURE_DIR_NAME in path.parts
                for candidate in sorted(path.rglob("*.py")):
                    if not inside_fixtures and FIXTURE_DIR_NAME in (
                        candidate.relative_to(path).parts
                    ):
                        continue
                    seen.setdefault(candidate, None)
            elif path.suffix == ".py":
                seen.setdefault(path, None)
            else:
                raise FileNotFoundError(f"no such file or directory: {raw}")
        return sorted(seen)

    def _relpath(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def module_name(path: Path) -> str:
        """Dotted module of *path*, anchored at the ``repro`` package."""
        parts = list(path.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts.pop()
        if "repro" not in parts:
            return ""
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])

    # -- phase 1: one file ---------------------------------------------
    def lint_file(self, path: Path) -> tuple[list[Finding], FileContext | None]:
        """Raw findings of one file (suppressions not yet applied)."""
        rel = self._relpath(path)
        try:
            ctx = FileContext.parse(path, rel, self.module_name(path))
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1),
                        rule="SYN000",
                        message=f"file does not parse: {exc.msg}",
                    )
                ],
                None,
            )
        findings: list[Finding] = []
        for checker_cls in self.checkers:
            if checker_cls.interested(ctx):
                findings.extend(checker_cls(ctx).run())
        return findings, ctx

    def _apply_suppressions(
        self,
        raw: list[Finding],
        line_texts: dict[int, str],
    ) -> tuple[list[tuple[Finding, str]], int]:
        """Filter inline suppressions and fingerprint the survivors."""
        kept: list[tuple[Finding, str]] = []
        suppressed = 0
        occurrences: dict[str, int] = {}
        for finding in sorted(raw):
            line_text = line_texts.get(finding.line, "")
            directive = suppressed_rules(line_text)
            if directive is not None and (
                not directive or finding.rule in directive
            ):
                suppressed += 1
                continue
            key = f"{finding.rule}|{finding.path}|{line_text.strip()}"
            occurrences[key] = occurrences.get(key, 0) + 1
            kept.append(
                (finding, fingerprint(finding, line_text, occurrences[key]))
            )
        return kept, suppressed

    # -- the two-phase run ---------------------------------------------
    def run(
        self,
        paths: Iterable[str | Path],
        baseline: Baseline | None = None,
    ) -> LintReport:
        """Lint *paths*, apply suppressions and *baseline*, and report."""
        report = LintReport()
        cache: SummaryCache | None = None
        if self.cache_path is not None:
            cache = SummaryCache.load(self.cache_path, self._fingerprint)

        summaries: list[ModuleSummary] = []
        changed_modules: set[str] = set()
        kept_rels: set[str] = set()
        pending: list[tuple[Finding, str]] = []

        for path in self.discover(paths):
            rel = self._relpath(path)
            kept_rels.add(rel)
            report.files_checked += 1
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise FileNotFoundError(f"cannot read {rel}: {exc}") from exc
            sha = sha256_text(source)
            entry = cache.get(rel, sha) if cache is not None else None
            if entry is not None:
                report.cache_hits += 1
                summaries.append(entry.summary)
                report.suppressed += entry.suppressed
                pending.extend(entry.findings)
                continue
            report.parsed += 1
            try:
                ctx = FileContext.from_source(
                    source, path, rel, self.module_name(path)
                )
            except SyntaxError as exc:
                report.parse_errors.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1),
                        rule="SYN000",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            raw: list[Finding] = []
            for checker_cls in self.checkers:
                if checker_cls.interested(ctx):
                    raw.extend(checker_cls(ctx).run())
            line_texts = {
                index + 1: text for index, text in enumerate(ctx.lines)
            }
            kept, suppressed = self._apply_suppressions(raw, line_texts)
            report.suppressed += suppressed
            summary = summarize(ctx)
            summaries.append(summary)
            pending.extend(kept)
            if cache is not None:
                cache.put(
                    rel,
                    CacheEntry(
                        sha256=sha,
                        summary=summary,
                        findings=kept,
                        suppressed=suppressed,
                    ),
                )
        # A module is "changed" when the loaded cache knew a different
        # hash for its file (or nothing at all); with no cache, every
        # module counts (a cold run re-verifies the whole program).
        if cache is None:
            changed_modules = {s.module for s in summaries if s.module}
        else:
            changed_modules = {
                s.module
                for s in summaries
                if s.module and cache.changed_since_load(s.rel, s.sha256)
            }

        # -- phase 2: whole program ------------------------------------
        analysis: ProjectAnalysis | None = None
        if self.project_checkers:
            analysis = analyze(summaries)
            project_raw: list[Finding] = []
            for checker_cls in self.project_checkers:
                project_raw.extend(checker_cls().check(analysis))
            texts_by_rel: dict[str, dict[int, str]] = {}
            for summary in summaries:
                texts_by_rel.setdefault(summary.rel, {}).update(
                    summary.line_texts()
                )
            by_rel: dict[str, list[Finding]] = {}
            for finding in project_raw:
                by_rel.setdefault(finding.path, []).append(finding)
            for rel in sorted(by_rel):
                kept, suppressed = self._apply_suppressions(
                    by_rel[rel], texts_by_rel.get(rel, {})
                )
                report.suppressed += suppressed
                pending.extend(kept)
            report.invalidated_modules = sorted(
                analysis.transitive_importers(changed_modules)
            )
        else:
            report.invalidated_modules = sorted(changed_modules)

        # -- baseline ---------------------------------------------------
        for finding, print_ in sorted(pending):
            if baseline is not None and print_ in baseline.fingerprints:
                report.baselined += 1
                continue
            report.findings.append(finding)
            report._fingerprints.append(print_)

        if cache is not None:
            cache.prune(kept_rels)
            cache.save()
        return report


def _validate_rules(rules: Sequence[str]) -> set[str]:
    normalized = {rule.strip().upper() for rule in rules if rule.strip()}
    unknown = normalized - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))};"
            f" available: {', '.join(sorted(RULES))}"
        )
    return normalized


def run_lint(
    paths: Sequence[str | Path],
    root: str | Path = ".",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline_path: str | Path | None = None,
    cache_path: str | Path | None = None,
) -> LintReport:
    """Convenience wrapper: configure an engine, load a baseline, run."""
    engine = LintEngine(
        root=root, select=select, ignore=ignore, cache_path=cache_path
    )
    baseline = None
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = Baseline.load(baseline_path)
    return engine.run(paths, baseline=baseline)
