"""File discovery, suppression handling, baselines, and the lint driver.

:class:`LintEngine` walks the requested paths, parses each ``*.py`` file
once, runs every selected rule's checker over the shared AST, filters
inline suppressions, and returns deterministically ordered findings.

Suppressions
------------
A finding is suppressed by a comment on its own physical line::

    latency = time.time()  # repro-lint: ignore[DET002]

``ignore[RULE1,RULE2]`` scopes the suppression; a bare
``# repro-lint: ignore`` suppresses every rule on that line.  Policy
(docs/static-analysis.md): suppressions are for the rare *intentional*
exception and must carry a justification in an adjacent comment —
determinism rules (DET001/DET002) are fixed, not suppressed.

Baselines
---------
A baseline file grandfathers pre-existing findings so the checker can be
wired into CI before the backlog reaches zero.  Fingerprints hash the
rule, file, and normalized source line (plus an occurrence counter for
duplicates) — **not** the line number — so unrelated edits do not churn
the baseline.  ``python -m repro.lint --write-baseline`` regenerates it;
the committed ``lint-baseline.json`` is empty because every real finding
was fixed at the source.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.checker import Checker, FileContext, Finding
from repro.lint.rules import ALL_CHECKERS, RULES

#: Baseline schema version, bumped on incompatible change.
BASELINE_VERSION = 1

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "lint-baseline.json"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def suppressed_rules(line: str) -> frozenset[str] | None:
    """Rules suppressed on *line*: a set of ids, ``frozenset()`` for an
    unscoped ``ignore`` (suppress everything), or ``None`` for no
    directive."""
    match = _SUPPRESS_RE.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(
        rule.strip().upper() for rule in rules.split(",") if rule.strip()
    )


def fingerprint(finding: Finding, source_line: str, occurrence: int) -> str:
    """Line-number-independent identity of one finding."""
    payload = "|".join(
        [finding.rule, finding.path, source_line.strip(), str(occurrence)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """Grandfathered findings, addressed by fingerprint."""

    fingerprints: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file (raises ``ValueError`` when malformed)."""
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline format in {path}; regenerate with"
                " --write-baseline"
            )
        findings = raw.get("findings", {})
        if not isinstance(findings, dict):
            raise ValueError(f"baseline {path} has a malformed findings map")
        return cls(fingerprints=dict(findings))

    def save(self, path: str | Path) -> None:
        """Write the baseline (sorted keys, stable bytes)."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.fingerprints.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls, report: "LintReport"
    ) -> "Baseline":
        """A baseline that grandfathers every finding in *report*."""
        baseline = cls()
        for finding, print_ in report.fingerprinted():
            baseline.fingerprints[print_] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
        return baseline


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: int = 0
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: list[Finding] = field(default_factory=list)
    #: ``(finding, fingerprint)`` pairs, parallel to :attr:`findings`.
    _fingerprints: list[str] = field(default_factory=list)

    def fingerprinted(self) -> list[tuple[Finding, str]]:
        """Findings with their baseline fingerprints."""
        return list(zip(self.findings, self._fingerprints))

    @property
    def all_findings(self) -> list[Finding]:
        """Rule findings plus parse errors, in location order."""
        return sorted(self.findings + self.parse_errors)

    def counts_by_rule(self) -> dict[str, int]:
        """``{rule: finding count}`` including parse errors."""
        counts: dict[str, int] = {}
        for finding in self.all_findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict[str, object]:
        """The ``--format json`` document."""
        return {
            "findings": [f.to_json() for f in self.all_findings],
            "counts": self.counts_by_rule(),
            "files_checked": self.files_checked,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
        }


class LintEngine:
    """One configured lint run: selected rules, root, baseline."""

    def __init__(
        self,
        root: str | Path = ".",
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
        checkers: Sequence[type[Checker]] | None = None,
    ) -> None:
        self.root = Path(root).resolve()
        available = list(checkers) if checkers is not None else list(ALL_CHECKERS)
        chosen = {c.rule for c in available}
        if select:
            wanted = _validate_rules(select)
            chosen &= wanted
        if ignore:
            chosen -= _validate_rules(ignore)
        self.checkers: tuple[type[Checker], ...] = tuple(
            c for c in available if c.rule in chosen
        )

    # -- discovery ------------------------------------------------------
    def discover(self, paths: Iterable[str | Path]) -> list[Path]:
        """All ``*.py`` files under *paths*, sorted, de-duplicated."""
        seen: dict[Path, None] = {}
        for raw in paths:
            path = (self.root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
            if path.is_dir():
                for candidate in sorted(path.rglob("*.py")):
                    seen.setdefault(candidate, None)
            elif path.suffix == ".py":
                seen.setdefault(path, None)
            else:
                raise FileNotFoundError(f"no such file or directory: {raw}")
        return sorted(seen)

    def _relpath(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def module_name(path: Path) -> str:
        """Dotted module of *path*, anchored at the ``repro`` package."""
        parts = list(path.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts.pop()
        if "repro" not in parts:
            return ""
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])

    # -- linting --------------------------------------------------------
    def lint_file(self, path: Path) -> tuple[list[Finding], FileContext | None]:
        """Raw findings of one file (suppressions not yet applied)."""
        rel = self._relpath(path)
        try:
            ctx = FileContext.parse(path, rel, self.module_name(path))
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1),
                        rule="SYN000",
                        message=f"file does not parse: {exc.msg}",
                    )
                ],
                None,
            )
        findings: list[Finding] = []
        for checker_cls in self.checkers:
            if checker_cls.interested(ctx):
                findings.extend(checker_cls(ctx).run())
        return findings, ctx

    def run(
        self,
        paths: Iterable[str | Path],
        baseline: Baseline | None = None,
    ) -> LintReport:
        """Lint *paths*, apply suppressions and *baseline*, and report."""
        report = LintReport()
        occurrences: dict[str, int] = {}
        for path in self.discover(paths):
            raw, ctx = self.lint_file(path)
            report.files_checked += 1
            if ctx is None:
                report.parse_errors.extend(raw)
                continue
            for finding in sorted(raw):
                line_text = (
                    ctx.lines[finding.line - 1]
                    if 0 < finding.line <= len(ctx.lines)
                    else ""
                )
                suppressed = suppressed_rules(line_text)
                if suppressed is not None and (
                    not suppressed or finding.rule in suppressed
                ):
                    report.suppressed += 1
                    continue
                key = f"{finding.rule}|{finding.path}|{line_text.strip()}"
                occurrences[key] = occurrences.get(key, 0) + 1
                print_ = fingerprint(finding, line_text, occurrences[key])
                if baseline is not None and print_ in baseline.fingerprints:
                    report.baselined += 1
                    continue
                report.findings.append(finding)
                report._fingerprints.append(print_)
        return report


def _validate_rules(rules: Sequence[str]) -> set[str]:
    normalized = {rule.strip().upper() for rule in rules if rule.strip()}
    unknown = normalized - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))};"
            f" available: {', '.join(sorted(RULES))}"
        )
    return normalized


def run_lint(
    paths: Sequence[str | Path],
    root: str | Path = ".",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    baseline_path: str | Path | None = None,
) -> LintReport:
    """Convenience wrapper: configure an engine, load a baseline, run."""
    engine = LintEngine(root=root, select=select, ignore=ignore)
    baseline = None
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = Baseline.load(baseline_path)
    return engine.run(paths, baseline=baseline)
