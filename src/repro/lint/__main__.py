"""Command-line entry point: ``python -m repro.lint``.

Usage::

    python -m repro.lint                     # lint src/ against the baseline
    python -m repro.lint src tests/foo.py    # explicit targets
    python -m repro.lint --scope all         # src + tests + benchmarks + scripts
    python -m repro.lint --format json       # machine-readable output
    python -m repro.lint --format sarif      # SARIF 2.1.0 for CI annotations
    python -m repro.lint --select DET001,DET101
    python -m repro.lint --ignore EXC001
    python -m repro.lint --no-cache          # force a cold whole-repo analysis
    python -m repro.lint --write-baseline    # grandfather current findings
    python -m repro.lint --list-rules

Exit codes: ``0`` no new findings, ``1`` findings reported, ``2`` usage
error.  A finding already recorded in the baseline file (default
``lint-baseline.json`` when it exists) is counted but not fatal.

Phase-1 module summaries are cached in ``.repro-lint-cache.json``
(git-ignored) keyed by file SHA-256, so warm re-lints only re-analyze
edited files while the interprocedural phase still sees the whole
program.  ``--no-cache`` disables both reading and writing it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.cache import DEFAULT_CACHE
from repro.lint.engine import (
    DEFAULT_BASELINE,
    Baseline,
    LintEngine,
    LintReport,
)
from repro.lint.rules import PROJECT_RULES, RULES
from repro.lint.sarif import render_sarif

#: ``--scope`` presets: named sets of lint targets relative to --root.
SCOPES: dict[str, tuple[str, ...]] = {
    "src": ("src",),
    "tests": ("src", "tests"),
    "benchmarks": ("src", "benchmarks"),
    "scripts": ("src", "scripts"),
    "all": ("src", "tests", "benchmarks", "scripts"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Whole-program determinism and simulation-invariant checker"
            " for the DSAssassin reproduction (see"
            " docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the --scope preset)",
    )
    parser.add_argument(
        "--scope",
        choices=sorted(SCOPES),
        default="src",
        help=(
            "named target preset used when no explicit paths are given;"
            " non-src scopes always include src so interprocedural rules"
            " see the whole program (default: src)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE,
        help=f"module-summary cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the summary cache (cold analysis)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split(raw: str | None) -> list[str] | None:
    return [part for part in raw.split(",")] if raw else None


def _print_text(report: LintReport) -> None:
    for finding in report.all_findings:
        print(finding.format_text())
    counts = report.counts_by_rule()
    total = sum(counts.values())
    tail = (
        ", ".join(f"{rule}: {count}" for rule, count in counts.items())
        if counts
        else "clean"
    )
    print(
        f"repro.lint: {report.files_checked} files"
        f" ({report.cache_hits} cached, {report.parsed} parsed),"
        f" {total} finding(s) ({tail}); {report.baselined} baselined,"
        f" {report.suppressed} suppressed"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (returns the process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, checker in sorted(RULES.items()):
            family = "project" if rule_id in PROJECT_RULES else "file"
            print(f"{rule_id}  [{family:>7}]  {checker.title}")
        return 0

    cache_path = None
    if not args.no_cache:
        cache_path = Path(args.root) / args.cache

    try:
        engine = LintEngine(
            root=args.root,
            select=_split(args.select),
            ignore=_split(args.ignore),
            cache_path=cache_path,
        )
    except ValueError as exc:
        parser.error(str(exc))

    baseline_path = Path(args.root) / args.baseline
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"repro.lint: {exc}", file=sys.stderr)
                return 2

    paths = args.paths or list(SCOPES[args.scope])
    try:
        report = engine.run(paths, baseline=baseline)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.write_baseline:
        Baseline.from_findings(report).save(baseline_path)
        print(
            f"repro.lint: wrote {len(report.findings)} finding(s) to"
            f" {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(render_sarif(report), end="")
    else:
        _print_text(report)
    return 1 if report.all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
