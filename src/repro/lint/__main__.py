"""Command-line entry point: ``python -m repro.lint``.

Usage::

    python -m repro.lint                     # lint src/ against the baseline
    python -m repro.lint src tests/foo.py    # explicit targets
    python -m repro.lint --format json       # machine-readable output
    python -m repro.lint --select DET001,DET002
    python -m repro.lint --ignore EXC001
    python -m repro.lint --write-baseline    # grandfather current findings
    python -m repro.lint --list-rules

Exit codes: ``0`` no new findings, ``1`` findings reported, ``2`` usage
error.  A finding already recorded in the baseline file (default
``lint-baseline.json`` when it exists) is counted but not fatal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import (
    DEFAULT_BASELINE,
    Baseline,
    LintEngine,
    LintReport,
)
from repro.lint.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and simulation-invariant checker for"
            " the DSAssassin reproduction (see docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split(raw: str | None) -> list[str] | None:
    return [part for part in raw.split(",")] if raw else None


def _print_text(report: LintReport) -> None:
    for finding in report.all_findings:
        print(finding.format_text())
    counts = report.counts_by_rule()
    total = sum(counts.values())
    tail = (
        ", ".join(f"{rule}: {count}" for rule, count in counts.items())
        if counts
        else "clean"
    )
    print(
        f"repro.lint: {report.files_checked} files, {total} finding(s)"
        f" ({tail}); {report.baselined} baselined,"
        f" {report.suppressed} suppressed"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (returns the process exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, checker in sorted(RULES.items()):
            print(f"{rule_id}  {checker.title}")
        return 0

    try:
        engine = LintEngine(
            root=args.root,
            select=_split(args.select),
            ignore=_split(args.ignore),
        )
    except ValueError as exc:
        parser.error(str(exc))

    baseline_path = Path(args.root) / args.baseline
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"repro.lint: {exc}", file=sys.stderr)
                return 2

    try:
        report = engine.run(args.paths, baseline=baseline)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.write_baseline:
        Baseline.from_findings(report).save(baseline_path)
        print(
            f"repro.lint: wrote {len(report.findings)} finding(s) to"
            f" {baseline_path}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        _print_text(report)
    return 1 if report.all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
