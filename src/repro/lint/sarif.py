"""SARIF 2.1.0 output for CI annotation surfaces.

``python -m repro.lint --format sarif`` emits one SARIF log with one
run: the tool component lists every registered rule (both families,
with their docstring-derived descriptions), and each finding becomes a
``result`` with a physical location.  The document targets the SARIF
2.1.0 schema (validated in ``tests/tools/test_lint_project.py`` against
the vendored subset schema at ``tests/tools/sarif-2.1.0-subset.json``).

Baselined findings are *omitted* (SARIF has a ``baselineState`` notion,
but consumers treat any result as actionable) — the committed baseline
is empty anyway, so in practice the SARIF log mirrors ``--format json``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lint.engine import LintReport
from repro.lint.rules import RULES

#: The SARIF version this writer targets.
SARIF_VERSION = "2.1.0"

#: Canonical schema URI (informational; validation uses a vendored copy).
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool identity advertised in the run's driver component.
TOOL_NAME = "repro-lint"
TOOL_VERSION = "2.0.0"


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    checker = RULES[rule_id]
    doc = (checker.__doc__ or checker.title or rule_id).strip()
    short = doc.splitlines()[0].strip()
    return {
        "id": rule_id,
        "name": checker.__name__,
        "shortDescription": {"text": checker.title or short},
        "fullDescription": {"text": short},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding_json: dict[str, Any]) -> dict[str, Any]:
    return {
        "ruleId": str(finding_json["rule"]),
        "level": "error",
        "message": {"text": str(finding_json["message"])},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": str(finding_json["path"]),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": int(finding_json["line"]),
                        "startColumn": int(finding_json["col"]),
                    },
                }
            }
        ],
    }


def to_sarif(report: LintReport) -> dict[str, Any]:
    """*report* as a SARIF 2.1.0 log object."""
    rules = [_rule_descriptor(rule_id) for rule_id in sorted(RULES)]
    results = [_result(f.to_json()) for f in report.all_findings]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
                "properties": {
                    "filesChecked": report.files_checked,
                    "cacheHits": report.cache_hits,
                    "parsed": report.parsed,
                    "suppressed": report.suppressed,
                    "baselined": report.baselined,
                },
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """*report* as pretty-printed SARIF JSON text."""
    return json.dumps(to_sarif(report), indent=2, sort_keys=True) + "\n"
