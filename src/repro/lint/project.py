"""Per-module summaries: the unit of whole-program analysis.

The interprocedural rules (DET101/DET102/PAR101/EXC101) cannot run on
one file at a time — an unseeded RNG constructed in a helper module may
only become a bug two calls later, when it crosses into ``repro.dsa``.
But re-walking every AST on every lint run would make the whole-program
pass unaffordable.  The compromise is classic summary-based analysis:

* **Phase 1** (this module) walks each file *once* and distills a
  :class:`ModuleSummary` — the defined functions, their call sites with
  argument *taint atoms*, RNG construction sites, module-global writes,
  and resource acquisitions.  Summaries are plain JSON and are cached
  by source SHA-256 (:mod:`repro.lint.cache`), so a warm re-lint only
  re-extracts the modules that actually changed.
* **Phase 2** (:mod:`repro.lint.taint`) stitches the summaries into a
  project call graph and runs a fixpoint over the taint lattice; it
  never touches an AST.

Atoms
-----
A local expression's dataflow facts are a set of opaque strings:

``L:<label>``
    a concrete lattice label (``clock``, ``seed``, ``env``,
    ``resource``, ``rng-blessed`` — see :mod:`repro.lint.taint`)
    introduced by a source call in the expression;
``P:<param>``
    the value may carry whatever taint the enclosing function's
    *param* receives from its callers;
``R:<dotted>``
    the value may carry whatever the (project) function *dotted*
    returns;
``RNG:<line>:<col>``
    the value is the RNG constructed at that site of the enclosing
    function — whether that RNG is *blessed* (seed-derived) is decided
    by the whole-program pass from the resolved taint of the
    constructor's arguments.

``P:``/``R:``/``RNG:`` atoms are function-scoped symbols: phase 2
resolves them to concrete labels before taint ever crosses a function
boundary, so summaries stay small and composable.

The per-function analysis is flow-insensitive (statements are iterated
twice, reaching a local fixpoint for the common ``x = source();
y = helper(x); return y`` chains), which over-approximates rarely and
keeps extraction to a single cheap walk per function.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.lint.checker import FileContext, ImportResolver

#: Bumped whenever the summary format or extraction logic changes, so a
#: stale cache is discarded instead of silently misread.
SUMMARY_VERSION = 2

#: Callables whose return value *is* a fresh RNG stream.  Which lattice
#: label the stream gets (blessed vs unblessed) depends on the resolved
#: taint of the seed arguments — decided in phase 2.
RNG_CONSTRUCTOR_SUFFIXES: tuple[str, ...] = (
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "random.Random",
)

#: Callables whose return value is seed-derived by construction: the
#: sanctioned derivation helpers.  ``derive_rng`` returns a *blessed*
#: RNG; ``spawn_trial_seed`` returns a blessed seed integer.
SEED_SOURCE_SUFFIXES: tuple[str, ...] = (
    "spawn_trial_seed",
    "derive_rng",
    "derive_case_rng",
    "derive_seed",
)

#: Calls that observe the host clock — directly or via the sanctioned
#: injectable helpers.  The *taint* is the same either way; DET002 and
#: DET102 differ only in which uses they object to.
CLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)
CLOCK_SOURCE_SUFFIXES: tuple[str, ...] = ("wall_clock", "monotonic_clock")

#: Dotted-origin suffixes that acquire a kernel-backed resource (kept in
#: sync with PAR002's acquirer table — EXC101 follows the same resources
#: through helper returns).
RESOURCE_ACQUIRERS: tuple[str, ...] = (
    "multiprocessing.shared_memory.SharedMemory",
    "ShmRing.create",
    "ShmRing.attach",
    "HeartbeatBoard",
    "HeartbeatBoard.attach",
)

#: In-place container mutators (shared shape with PAR001's analysis).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Callee attribute names that tie an acquired value to a release.
_FINALIZER_METHODS = frozenset({"callback", "register", "finalize"})

#: Builtins/helpers whose return value carries the taint of their
#: arguments (identity-ish wrappers).
_TRANSPARENT_CALLS = frozenset(
    {
        "sorted",
        "list",
        "tuple",
        "dict",
        "set",
        "min",
        "max",
        "sum",
        "abs",
        "round",
        "int",
        "float",
        "str",
        "repr",
        "format",
    }
)


def sha256_text(text: str) -> str:
    """Content hash used as the summary-cache key."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _suffix_match(origin: str, suffixes: Iterable[str]) -> bool:
    return any(
        origin == suffix or origin.endswith("." + suffix)
        for suffix in suffixes
    )


def is_rng_constructor(origin: str) -> bool:
    """Whether *origin* constructs a fresh RNG stream."""
    return _suffix_match(origin, RNG_CONSTRUCTOR_SUFFIXES)


def is_seed_source(origin: str) -> bool:
    """Whether *origin* is a sanctioned seed-derivation helper."""
    return _suffix_match(origin, SEED_SOURCE_SUFFIXES)


def is_clock_source(origin: str) -> bool:
    """Whether *origin* reads the host clock (raw or injectable)."""
    return origin in CLOCK_SOURCES or _suffix_match(
        origin, CLOCK_SOURCE_SUFFIXES
    )


def is_resource_acquirer(origin: str) -> bool:
    """Whether *origin* acquires a kernel-backed pool resource."""
    return _suffix_match(origin, RESOURCE_ACQUIRERS)


# ----------------------------------------------------------------------
# Summary records (all JSON-serializable)
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One call expression inside a function body."""

    callee: str  # dotted, module-qualified where resolvable
    line: int
    col: int
    args: list[list[str]] = field(default_factory=list)  # atoms per position
    keywords: dict[str, list[str]] = field(default_factory=dict)
    managed: bool = False  # value tied to a release/ownership path
    awaited: bool = False  # call expression directly under an ``await``
    line_text: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "args": [sorted(a) for a in self.args],
            "keywords": {
                k: sorted(v) for k, v in sorted(self.keywords.items())
            },
            "managed": self.managed,
            "awaited": self.awaited,
            "line_text": self.line_text,
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "CallSite":
        return cls(
            callee=raw["callee"],
            line=raw["line"],
            col=raw["col"],
            args=[list(a) for a in raw["args"]],
            keywords={k: list(v) for k, v in raw["keywords"].items()},
            managed=raw["managed"],
            awaited=raw["awaited"],
            line_text=raw["line_text"],
        )

    def all_atoms(self) -> set[str]:
        """Union of atoms across every argument."""
        atoms: set[str] = set()
        for arg in self.args:
            atoms.update(arg)
        for kw_atoms in self.keywords.values():
            atoms.update(kw_atoms)
        return atoms


@dataclass
class RngSite:
    """One RNG-constructor call; blessedness is decided in phase 2."""

    callee: str
    line: int
    col: int
    arg_atoms: list[str] = field(default_factory=list)  # union of all args
    has_args: bool = False
    line_text: str = ""

    @property
    def atom(self) -> str:
        return f"RNG:{self.line}:{self.col}"

    def to_json(self) -> dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "arg_atoms": sorted(self.arg_atoms),
            "has_args": self.has_args,
            "line_text": self.line_text,
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "RngSite":
        return cls(
            callee=raw["callee"],
            line=raw["line"],
            col=raw["col"],
            arg_atoms=list(raw["arg_atoms"]),
            has_args=raw["has_args"],
            line_text=raw["line_text"],
        )


@dataclass
class GlobalWrite:
    """One write to module-level state from inside a function."""

    name: str
    kind: str  # "global-assign" | "global-augassign" | "method:<m>" | "subscript"
    line: int
    col: int
    line_text: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "line": self.line,
            "col": self.col,
            "line_text": self.line_text,
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "GlobalWrite":
        return cls(**raw)


@dataclass
class FunctionSummary:
    """Everything phase 2 needs to know about one function."""

    qname: str  # module-qualified, e.g. repro.dsa.portal.submit
    line: int
    params: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    rng_sites: list[RngSite] = field(default_factory=list)
    returns: list[str] = field(default_factory=list)  # atoms
    acquires_resource: bool = False
    is_async: bool = False
    global_writes: list[GlobalWrite] = field(default_factory=list)

    def rng_site(self, atom: str) -> RngSite | None:
        """The :class:`RngSite` an ``RNG:line:col`` atom refers to."""
        for site in self.rng_sites:
            if site.atom == atom:
                return site
        return None

    def to_json(self) -> dict[str, Any]:
        return {
            "qname": self.qname,
            "line": self.line,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "rng_sites": [r.to_json() for r in self.rng_sites],
            "returns": sorted(self.returns),
            "acquires_resource": self.acquires_resource,
            "is_async": self.is_async,
            "global_writes": [w.to_json() for w in self.global_writes],
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "FunctionSummary":
        return cls(
            qname=raw["qname"],
            line=raw["line"],
            params=list(raw["params"]),
            calls=[CallSite.from_json(c) for c in raw["calls"]],
            rng_sites=[RngSite.from_json(r) for r in raw["rng_sites"]],
            returns=list(raw["returns"]),
            acquires_resource=raw["acquires_resource"],
            is_async=raw["is_async"],
            global_writes=[
                GlobalWrite.from_json(w) for w in raw["global_writes"]
            ],
        )


@dataclass
class ModuleSummary:
    """Phase-1 distillation of one source file."""

    module: str  # dotted ("" for files outside a repro package)
    rel: str  # posix path relative to the lint root
    sha256: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    module_globals: list[str] = field(default_factory=list)  # mutable ones
    classes: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "rel": self.rel,
            "sha256": self.sha256,
            "imports": dict(sorted(self.imports.items())),
            "functions": {
                q: f.to_json() for q, f in sorted(self.functions.items())
            },
            "module_globals": sorted(self.module_globals),
            "classes": sorted(self.classes),
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=raw["module"],
            rel=raw["rel"],
            sha256=raw["sha256"],
            imports=dict(raw["imports"]),
            functions={
                q: FunctionSummary.from_json(f)
                for q, f in raw["functions"].items()
            },
            module_globals=list(raw["module_globals"]),
            classes=list(raw["classes"]),
        )

    def line_texts(self) -> dict[int, str]:
        """``{line: source text}`` for every summary-recorded site —
        enough to apply inline suppressions to project-rule findings
        without re-reading the file."""
        texts: dict[int, str] = {}
        for fn in self.functions.values():
            for call in fn.calls:
                texts[call.line] = call.line_text
            for site in fn.rng_sites:
                texts[site.line] = site.line_text
            for write in fn.global_writes:
                texts[write.line] = write.line_text
        return texts


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


def _is_mutable_initializer(node: ast.expr, resolver: ImportResolver) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        origin = resolver.resolve(node.func)
        return origin in _MUTABLE_FACTORIES
    return False


def _iter_scope(body: Iterable[ast.stmt]) -> Iterable[ast.AST]:
    """Walk *body* without descending into nested defs/classes (their
    bodies are separate scopes, summarized on their own)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionExtractor:
    """Flow-insensitive atom analysis of one function body."""

    def __init__(
        self,
        summarizer: "ModuleSummarizer",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qname: str,
        class_qname: "str | None" = None,
    ) -> None:
        self.s = summarizer
        self.func = func
        self.class_qname = class_qname
        args = func.args
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg not in ("self", "cls")
        ]
        self.summary = FunctionSummary(
            qname=qname,
            line=func.lineno,
            params=params,
            is_async=isinstance(func, ast.AsyncFunctionDef),
        )
        self.env: dict[str, set[str]] = {p: {f"P:{p}"} for p in params}
        # Python scoping, computed up front: a plain assignment only
        # writes a module global under a ``global`` declaration, while
        # in-place mutation (append/subscript-store) reaches the module
        # object whenever the name is not locally bound.
        self.global_decls: set[str] = set()
        self.local_bound: set[str] = set(self.env)
        for node in _iter_scope(func.body):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self.local_bound.add(node.id)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        self.local_bound.add(target.id)
        self.local_bound -= self.global_decls
        self._managed_ids: set[int] = set()
        self._named_calls: dict[str, list[int]] = {}
        self._safe_names: set[str] = set()
        self._collect_managed(func.body)
        # Call expressions sitting directly under an ``await`` — the
        # ASY101 blocking-call rule needs to tell ``await q.get()``
        # apart from a bare (blocking) ``sock.recv()``.
        self._awaited_ids: set[int] = {
            id(node.value)
            for node in _iter_scope(func.body)
            if isinstance(node, ast.Await)
            and isinstance(node.value, ast.Call)
        }

    # -- managed-call analysis (same escape set as PAR002) -------------
    def _collect_managed(self, body: list[ast.stmt]) -> None:
        """Mark call expressions whose value is tied to an ownership or
        release path: ``with``-context, ``enter_context`` argument,
        attribute assignment, ``return``, ``finally``-close, finalizer
        registration."""
        for node in _iter_scope(body):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        self._managed_ids.add(id(item.context_expr))
            if isinstance(node, ast.Call):
                # Passing a value *itself* as an argument transfers (or
                # at least shares) ownership with the callee — e.g.
                # ``return cls(shm, ...)`` hands the segment to an
                # owning wrapper.  Method calls *on* the value
                # (``ring.push(x)``) do not count.
                for arg in node.args:
                    if isinstance(arg, ast.Call):
                        self._managed_ids.add(id(arg))
                    elif isinstance(arg, ast.Name):
                        self._safe_names.add(arg.id)
                if isinstance(node.func, ast.Attribute):
                    if node.func.attr in _FINALIZER_METHODS:
                        for sub in ast.walk(node):
                            if isinstance(sub, ast.Name):
                                self._safe_names.add(sub.id)
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self._managed_ids.add(id(node.value))
                    elif isinstance(target, ast.Name):
                        self._named_calls.setdefault(target.id, []).append(
                            id(node.value)
                        )
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call):
                    self._managed_ids.add(id(node.value))
                elif isinstance(node.value, ast.Name):
                    self._safe_names.add(node.value.id)
            if isinstance(node, ast.Try) and node.finalbody:
                for cleanup in node.finalbody:
                    for sub in ast.walk(cleanup):
                        if (
                            isinstance(sub, ast.Attribute)
                            and sub.attr
                            in ("close", "shutdown", "unlink", "terminate",
                                "release")
                            and isinstance(sub.value, ast.Name)
                        ):
                            self._safe_names.add(sub.value.id)

    def _call_is_managed(self, call: ast.Call) -> bool:
        if id(call) in self._managed_ids:
            return True
        for name in self._safe_names:
            if any(
                id(call) == entry for entry in self._named_calls.get(name, ())
            ):
                return True
        return False

    # -- driving --------------------------------------------------------
    def run(self) -> FunctionSummary:
        # Two passes reach a local fixpoint for the common forward
        # chains; atoms accumulate monotonically, duplicates dedup below.
        for _ in range(2):
            for stmt in self.func.body:
                self._visit_stmt(stmt)
        self._dedup()
        return self.summary

    def _dedup(self) -> None:
        calls: dict[tuple[str, int, int], CallSite] = {}
        for call in self.summary.calls:
            calls[(call.callee, call.line, call.col)] = call
        self.summary.calls = [calls[k] for k in sorted(calls)]
        rngs: dict[tuple[int, int], RngSite] = {}
        for site in self.summary.rng_sites:
            rngs[(site.line, site.col)] = site
        self.summary.rng_sites = [rngs[k] for k in sorted(rngs)]
        writes: dict[tuple[str, str, int, int], GlobalWrite] = {}
        for write in self.summary.global_writes:
            writes[(write.name, write.kind, write.line, write.col)] = write
        self.summary.global_writes = [writes[k] for k in sorted(writes)]

    # -- statements -----------------------------------------------------
    def _visit_stmt(self, stmt: ast.stmt) -> None:
        for node in _iter_scope([stmt]):
            if isinstance(node, ast.Assign):
                atoms = self._atoms(node.value)
                for target in node.targets:
                    self._bind_target(target, atoms, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(
                    node.target, self._atoms(node.value), node
                )
            elif isinstance(node, ast.AugAssign):
                atoms = self._atoms(node.value)
                if isinstance(node.target, ast.Name):
                    name = node.target.id
                    self.env.setdefault(name, set()).update(atoms)
                    if name in self.global_decls:
                        self._record_global_write(
                            name, "global-augassign", node
                        )
            elif isinstance(node, ast.Return) and node.value is not None:
                self.summary.returns = sorted(
                    set(self.summary.returns) | self._atoms(node.value)
                )
            elif isinstance(node, ast.Call):
                self._atoms(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_target(node.target, self._atoms(node.iter), node)

    def _bind_target(
        self, target: ast.expr, atoms: set[str], stmt: ast.AST
    ) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            self.env.setdefault(name, set()).update(atoms)
            if name in self.global_decls:
                self._record_global_write(name, "global-assign", stmt)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            name = target.value.id
            if self._is_module_global(name):
                self._record_global_write(name, "subscript", stmt)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, atoms, stmt)

    def _is_module_global(self, name: str) -> bool:
        """Whether *name* resolves to module-level mutable state here."""
        if name in self.global_decls:
            return name in self.s.module_level_names
        return (
            name not in self.local_bound
            and name in self.s.mutable_globals
        )

    def _record_global_write(
        self, name: str, kind: str, node: ast.AST
    ) -> None:
        line = getattr(node, "lineno", self.func.lineno)
        self.summary.global_writes.append(
            GlobalWrite(
                name=name,
                kind=kind,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                line_text=self.s.line_text(line),
            )
        )

    # -- expressions → atoms -------------------------------------------
    def _atoms(self, node: ast.expr) -> set[str]:
        atoms: set[str] = set()
        self._expr_atoms(node, atoms)
        return atoms

    def _expr_atoms(self, node: ast.expr, out: set[str]) -> None:
        if isinstance(node, ast.Name):
            out.update(self.env.get(node.id, set()))
            return
        if isinstance(node, ast.Call):
            self._call_atoms(node, out)
            return
        if isinstance(node, ast.Attribute):
            if self.s.resolver.resolve(node) == "os.environ":
                out.add("L:env")
                return
            self._expr_atoms(node.value, out)
            return
        if isinstance(node, ast.Subscript):
            if self.s.resolver.resolve(node.value) == "os.environ":
                out.add("L:env")
                return
            self._expr_atoms(node.value, out)
            return
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._expr_atoms(value.value, out)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr_atoms(child, out)

    def _resolve_self_call(self, node: ast.Call) -> "str | None":
        """Resolve ``self.method(...)`` / ``cls.method(...)`` to the
        enclosing class's qualified method name, so the project call
        graph can follow intra-class edges."""
        if self.class_qname is None:
            return None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            return f"{self.class_qname}.{func.attr}"
        return None

    def _call_atoms(self, node: ast.Call, out: set[str]) -> None:
        origin = self._resolve_self_call(node) or self.s.resolve_callee(node)
        # In-place mutation of a module global through a method call:
        # ``_corpus.append(case)``.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and self._is_module_global(node.func.value.id)
        ):
            self._record_global_write(
                node.func.value.id, f"method:{node.func.attr}", node
            )
        arg_atom_lists = [self._atoms(arg) for arg in node.args]
        kw_atoms = {
            kw.arg: self._atoms(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        union: set[str] = set().union(*arg_atom_lists, *kw_atoms.values())
        if origin is None:
            # Unknown callee (lambda, subscripted, ...): assume taint
            # flows through rather than vanishing.
            out.update(union)
            return
        if origin.startswith("os.environ") or origin == "os.getenv":
            out.add("L:env")
            return
        if is_clock_source(origin):
            out.add("L:clock")
            return
        if is_seed_source(origin):
            out.add("L:seed")
            if "derive_rng" in origin or "derive_case_rng" in origin:
                out.add("L:rng-blessed")
            return
        if is_rng_constructor(origin):
            site = RngSite(
                callee=origin,
                line=node.lineno,
                col=node.col_offset + 1,
                arg_atoms=sorted(union),
                has_args=bool(node.args or node.keywords),
                line_text=self.s.line_text(node.lineno),
            )
            self.summary.rng_sites.append(site)
            out.add(site.atom)
            return
        self.summary.calls.append(
            CallSite(
                callee=origin,
                line=node.lineno,
                col=node.col_offset + 1,
                args=[sorted(a) for a in arg_atom_lists],
                keywords={k: sorted(v) for k, v in kw_atoms.items()},
                managed=self._call_is_managed(node),
                awaited=id(node) in self._awaited_ids,
                line_text=self.s.line_text(node.lineno),
            )
        )
        if is_resource_acquirer(origin):
            self.summary.acquires_resource = True
            out.add("L:resource")
            return
        out.add(f"R:{origin}")
        if origin in _TRANSPARENT_CALLS:
            out.update(union)


class ModuleSummarizer:
    """Extracts the :class:`ModuleSummary` of one parsed file."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.resolver = ctx.resolver
        self.module_level_names: set[str] = set()
        self.mutable_globals: set[str] = set()
        self.local_defs: set[str] = {
            node.name
            for node in ctx.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        self._collect_module_level()

    def line_text(self, line: int) -> str:
        if 0 < line <= len(self.ctx.lines):
            return self.ctx.lines[line - 1]
        return ""

    def _collect_module_level(self) -> None:
        for stmt in self.ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name):
                    self.module_level_names.add(target.id)
                    if value is not None and _is_mutable_initializer(
                        value, self.resolver
                    ):
                        self.mutable_globals.add(target.id)

    def resolve_callee(self, node: ast.Call) -> str | None:
        """Dotted callee, module-qualified for intra-module calls."""
        origin = self.resolver.resolve(node.func)
        if origin is None:
            return None
        head = origin.split(".", 1)[0]
        # A bare local name defined in this module refers to the
        # module's own function/class — qualify it so the project
        # symbol table can find it.
        if (
            self.ctx.module
            and head not in self.resolver.aliases
            and head in self.local_defs
        ):
            return f"{self.ctx.module}.{origin}"
        return origin

    def run(self) -> ModuleSummary:
        summary = ModuleSummary(
            module=self.ctx.module,
            rel=self.ctx.rel,
            sha256=sha256_text(self.ctx.source),
            imports=dict(self.resolver.aliases),
        )
        prefix = self.ctx.module or self.ctx.rel
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{node.name}"
                summary.functions[qname] = _FunctionExtractor(
                    self, node, qname
                ).run()
            elif isinstance(node, ast.ClassDef):
                class_qname = f"{prefix}.{node.name}"
                summary.classes.append(class_qname)
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qname = f"{class_qname}.{item.name}"
                        summary.functions[qname] = _FunctionExtractor(
                            self, item, qname, class_qname=class_qname
                        ).run()
        summary.module_globals = sorted(self.mutable_globals)
        return summary


def summarize(ctx: FileContext) -> ModuleSummary:
    """Phase-1 extraction of *ctx* (one cheap walk per function)."""
    return ModuleSummarizer(ctx).run()
