"""DET101 — RNG reaching model code without trial-seed provenance.

DET001 sees the *construction* of a bad RNG; it cannot see where the
stream ends up.  The reproduction's actual invariant is stronger than
"constructors take a seed": every RNG that model code
(:data:`~repro.lint.checker.MODEL_PACKAGES`) draws from must derive
*transitively* from a trial seed — ``spawn_trial_seed(run_seed, key)``
or ``derive_rng(seed, *lanes)`` — through any number of helper calls.
A ``default_rng(42)`` in an experiment helper is deterministic, yet
every trial that receives it samples the *same* stream, so trial
results stop being a pure function of ``(config, seed, key)`` and
resume/shard equivalence quietly dies.

Flagged, using the whole-program taint analysis:

* a call site passing an *unblessed* RNG (no arguments → OS entropy,
  or constants-only seeds through every known call chain) into a
  function defined in a model package, however many calls separate the
  constructor from the boundary;
* an unblessed RNG constructed *inside* a model package.

Constructors seeded from a parameter of a function with no resolved
project callers are presumed blessed — public entry points are the
caller's contract, not a finding.

**Fix:** derive the stream where it is used: accept a ``seed`` (or an
already-derived ``numpy.random.Generator``) threaded from
``spawn_trial_seed``, and construct via ``default_rng(seed)`` /
``derive_rng(seed, *lanes)``.  Never suppress this rule.
"""

from __future__ import annotations

from repro.lint.checker import MODEL_PACKAGES, Finding, ProjectChecker
from repro.lint.taint import ProjectAnalysis


def _in_model_package(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in MODEL_PACKAGES
    )


class SeedProvenanceChecker(ProjectChecker):
    """Flags RNG flows into model packages without seed provenance."""

    rule = "DET101"
    title = "RNG reaching model code lacks trial-seed provenance"

    def check(self, analysis: ProjectAnalysis) -> list[Finding]:
        for qname, fn in sorted(analysis.functions.items()):
            rel = analysis.function_rel.get(qname, "")
            module = analysis.module_of(qname)
            # Unblessed RNG constructed inside model code.
            if _in_model_package(module):
                for site in fn.rng_sites:
                    if not analysis.rng_blessed.get((qname, site.atom), True):
                        why = (
                            "draws OS entropy"
                            if not site.has_args
                            else "is seeded from constants, not a trial seed"
                        )
                        self.report(
                            rel,
                            site.line,
                            site.col,
                            f"`{site.callee}(...)` in model module"
                            f" `{module}` {why}; model RNG streams must"
                            " derive from spawn_trial_seed/derive_rng",
                        )
            # Unblessed RNG crossing into model code at a call boundary.
            for call in fn.calls:
                target = analysis.resolve_callee(qname, call.callee)
                if target is None:
                    continue
                if not _in_model_package(analysis.module_of(target)):
                    continue
                labels = analysis.resolve_atoms(qname, call.all_atoms())
                if "rng-unblessed" in labels:
                    self.report(
                        rel,
                        call.line,
                        call.col,
                        f"passes an RNG with no trial-seed provenance into"
                        f" model function `{target}`; derive it via"
                        " spawn_trial_seed/derive_rng so every trial is a"
                        " pure function of its seed",
                    )
        return self.findings
