"""EXC101 — kernel-backed resources leaked through helper returns.

PAR002 checks acquire/release pairing *within one function* and
deliberately treats ``return SharedMemory(...)`` as safe: a factory
hands ownership to its caller.  That escape hatch is only sound if the
caller actually takes ownership — and the caller is in a different
function, often a different module, where a per-file rule cannot look.

This rule closes the loop interprocedurally: the taint engine computes
which project functions *return a kernel-backed resource* (directly, or
transitively through another helper), and every call site of such a
function is held to PAR002's ownership discipline — the returned value
must be tied to a release path at the point of the call:

* used as a ``with`` context expression,
* handed to ``ExitStack.enter_context(...)``,
* assigned to an object attribute (ownership moves to its ``close``),
* returned onward (the caller's caller is then checked the same way),
* ``close()``d in a ``finally`` block or registered with a finalizer.

Direct acquirer calls (``SharedMemory(...)``, ``ShmRing.attach(...)``)
stay PAR002's; EXC101 fires only on *indirect* acquisitions through
project helpers, where the leak is invisible to any single file.

**Fix:** the sanctioned idiom is
``stack.enter_context(make_ring(...))`` — helpers that return resources
should be consumed under an ``ExitStack`` or ``with`` block.
"""

from __future__ import annotations

from repro.lint.checker import Finding, ProjectChecker
from repro.lint.project import is_resource_acquirer
from repro.lint.taint import ProjectAnalysis


class LeakPathChecker(ProjectChecker):
    """Flags unmanaged calls to helpers that return pool resources."""

    rule = "EXC101"
    title = "resource-returning helper called with no tied release"

    def check(self, analysis: ProjectAnalysis) -> list[Finding]:
        for qname, fn in sorted(analysis.functions.items()):
            rel = analysis.function_rel.get(qname, "")
            for call in fn.calls:
                if call.managed:
                    continue
                if is_resource_acquirer(call.callee):
                    continue  # direct acquisitions are PAR002's findings
                target = analysis.resolve_callee(qname, call.callee)
                if target is None or not analysis.returns_resource.get(
                    target, False
                ):
                    continue
                self.report(
                    rel,
                    call.line,
                    call.col,
                    f"`{call.callee}(...)` returns a kernel-backed pool"
                    f" resource (via `{target}`) that is never tied to a"
                    " release here; consume it under `with`/"
                    "`ExitStack.enter_context(...)`, store it on an owning"
                    " object, or close it in a `finally` block",
                )
        return self.findings
