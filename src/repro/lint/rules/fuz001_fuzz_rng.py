"""FUZ001 — randomness in ``repro.fuzz`` outside ``derive_*`` helpers.

The fuzzer's reproducibility contract is stronger than seeded-RNG
hygiene (DET001): every case must be a pure function of
``(seed, lane, iteration)`` so that a campaign replays byte-identically
and a persisted finding re-executes years later.  That holds only if
*all* generator construction funnels through the ``derive_*`` helpers
(:func:`repro.fuzz.gen.derive_rng`), which mix the package's stream
label and the campaign seed into one ``SeedSequence``.  A generator
built anywhere else — even with an explicit seed — forks an RNG lineage
the campaign state does not track, and a replay cannot reconstruct.

Inside ``repro.fuzz`` this rule therefore flags:

* **any RNG constructor outside a ``derive_*`` function** —
  ``numpy.random.default_rng``, ``numpy.random.SeedSequence``,
  ``numpy.random.Generator``, ``random.Random`` — seeded or not;
* **any stdlib ``random``/``secrets`` use** — the module-level
  functions draw from hidden global state, and even a locally seeded
  ``random.Random`` bypasses the lane derivation.

The fix is never a suppression: accept a ``numpy.random.Generator``
parameter, or add a ``derive_*`` helper that extends the lane tuple.
"""

from __future__ import annotations

import ast

from repro.lint.checker import Checker, FileContext

#: Constructors that fork an RNG lineage (flagged outside ``derive_*``).
_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
        "random.Random",
        "random.SystemRandom",
    }
)

#: Modules whose every call is banned in ``repro.fuzz`` regardless of
#: scope (constructors above are reported once, as constructors).
_BANNED_MODULES = ("random.", "secrets.")


class FuzzRngChecker(Checker):
    """Flags RNG lineage forks and stdlib entropy inside ``repro.fuzz``."""

    rule = "FUZ001"
    title = "randomness in repro.fuzz outside derive_* helpers"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._derive_depth = 0

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return ctx.in_package("repro.fuzz")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        derive = node.name.startswith("derive_")
        if derive:
            self._derive_depth += 1
        self.generic_visit(node)
        if derive:
            self._derive_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve_call(node)
        if origin is not None:
            self._check_origin(node, origin)
        self.generic_visit(node)

    def _check_origin(self, node: ast.Call, origin: str) -> None:
        if origin in _CONSTRUCTORS:
            if self._derive_depth == 0:
                self.report(
                    node,
                    f"`{origin}(...)` outside a derive_* helper forks an"
                    " RNG lineage replays cannot reconstruct; route"
                    " through repro.fuzz.gen.derive_rng",
                )
        elif origin.startswith(_BANNED_MODULES):
            self.report(
                node,
                f"`{origin}()` bypasses the (seed, lane, iteration)"
                " derivation; fuzz draws must come from a Generator"
                " built by a derive_* helper",
            )
