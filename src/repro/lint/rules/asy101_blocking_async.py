"""ASY101 — host-blocking calls on the device-time event loop.

The always-on service (:mod:`repro.service`) runs every coroutine on
:class:`~repro.service.loop.DeviceTimeLoop`, a *virtual-time*
cooperative scheduler: time only advances when every task is parked on
a loop primitive.  A host-blocking call — ``time.sleep``, synchronous
file I/O, ``threading.Event.wait`` — does not park; it freezes the
entire loop, stalling all 10⁵ multiplexed sessions at once, and (worse)
it re-couples the schedule to the host clock, breaking the service's
pure-function-of-``(config, seed)`` reproducibility bar.

No per-file rule can catch this: the blocking call typically hides in a
sync helper two hops below the ``async def``.  This rule walks the
project call graph from every ``async def`` in ``repro.service`` and
flags, in any reached service function, a call that blocks the host:

* ``time.sleep`` and friends (exact, awaited or not — there is no
  awaitable form);
* builtin ``open``/``input`` (exact);
* a non-awaited ``.wait`` / ``.read_text`` / ``.write_text`` /
  ``.read_bytes`` / ``.write_bytes`` — the awaited forms are the loop's
  own primitives (``await event.wait()``), the bare forms are
  ``threading``/``pathlib`` blockers.

Findings are scoped to ``repro.service`` modules: beneath the device
lane boundary everything is pure simulation compute (charged to virtual
time, never the host clock), and the sync finalize/checkpoint path runs
outside the loop by design.

**Fix:** park on a loop primitive (``sleep_cycles``, ``VirtualEvent``,
``BoundedQueue``) instead, or move the I/O outside ``loop.run()`` (the
service writes its drain checkpoint in ``_finalize``, after the loop
exits).
"""

from __future__ import annotations

from repro.lint.checker import Finding, ProjectChecker
from repro.lint.taint import ProjectAnalysis

#: Module prefix whose ``async def`` functions are the loop's entry
#: points — and the only modules findings are reported in.
SERVICE_PREFIX = "repro.service"

#: Callees that block the host thread, full dotted match.  There is no
#: awaitable form of any of these, so ``awaited`` is irrelevant.
BLOCKING_EXACT: frozenset[str] = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "select.select",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
    }
)

#: Attribute suffixes that block *unless awaited*: the awaited form is
#: an async primitive (``await event.wait()``), the bare form is a
#: ``threading.Event.wait`` / ``pathlib.Path.read_text`` host blocker.
#: ``.join`` is deliberately absent (``str.join`` false positives).
BLOCKING_UNAWAITED_SUFFIXES: tuple[str, ...] = (
    ".wait",
    ".read_text",
    ".write_text",
    ".read_bytes",
    ".write_bytes",
)


def _in_service(module: str) -> bool:
    return module == SERVICE_PREFIX or module.startswith(
        SERVICE_PREFIX + "."
    )


def _blocking_reason(callee: str, awaited: bool) -> str | None:
    """Why this call blocks the host, or ``None`` if it does not."""
    if callee in BLOCKING_EXACT:
        return f"`{callee}` blocks the host thread"
    if not awaited:
        for suffix in BLOCKING_UNAWAITED_SUFFIXES:
            if callee.endswith(suffix):
                return (
                    f"non-awaited `{suffix[1:]}()` is synchronous"
                    " (threading/pathlib), not a loop primitive"
                )
    return None


class BlockingAsyncChecker(ProjectChecker):
    """Flags host-blocking calls reachable from service coroutines."""

    rule = "ASY101"
    title = "host-blocking call on the device-time event loop"

    def check(self, analysis: ProjectAnalysis) -> list[Finding]:
        entries = tuple(
            qname
            for qname, fn in analysis.functions.items()
            if fn.is_async and _in_service(analysis.module_of(qname))
        )
        reached = analysis.reachable_from(entries)
        for qname in sorted(reached):
            fn = analysis.functions.get(qname)
            if fn is None or not _in_service(analysis.module_of(qname)):
                continue
            rel = analysis.function_rel.get(qname, "")
            entry = reached[qname]
            for call in fn.calls:
                reason = _blocking_reason(call.callee, call.awaited)
                if reason is None:
                    continue
                self.report(
                    rel,
                    call.line,
                    call.col,
                    f"{reason}; `{qname}` runs on the device-time loop"
                    f" (reachable from coroutine `{entry}`), so this"
                    " freezes every multiplexed session and re-couples"
                    " the schedule to the host clock — park on a loop"
                    " primitive (sleep_cycles/VirtualEvent/BoundedQueue)"
                    " or move the I/O outside loop.run()",
                )
        return self.findings
