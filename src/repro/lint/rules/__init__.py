"""The rule catalog: one module per rule, stable ids.

Adding a rule means adding a module here, registering its checker in
:data:`ALL_CHECKERS`, documenting it in ``docs/static-analysis.md``, and
shipping positive/negative fixtures under
``tests/tools/lint_fixtures/``.
"""

from __future__ import annotations

from repro.lint.checker import Checker
from repro.lint.rules.api001_trial_keys import TrialKeyChecker
from repro.lint.rules.det001_rng import UnseededRngChecker
from repro.lint.rules.det002_wallclock import WallClockChecker
from repro.lint.rules.det003_ordering import OrderingChecker
from repro.lint.rules.exc001_broad_except import BroadExceptChecker
from repro.lint.rules.fuz001_fuzz_rng import FuzzRngChecker
from repro.lint.rules.par001_worker_closures import WorkerClosureChecker
from repro.lint.rules.par002_pool_resources import PoolResourceChecker
from repro.lint.rules.sim001_fault_sites import FaultSiteChecker
from repro.lint.rules.sim002_guarded_fields import GuardedFieldChecker

#: Every registered checker, in rule-id order.
ALL_CHECKERS: tuple[type[Checker], ...] = (
    TrialKeyChecker,
    UnseededRngChecker,
    WallClockChecker,
    OrderingChecker,
    BroadExceptChecker,
    FuzzRngChecker,
    WorkerClosureChecker,
    PoolResourceChecker,
    FaultSiteChecker,
    GuardedFieldChecker,
)

#: rule id -> checker class.
RULES: dict[str, type[Checker]] = {
    checker.rule: checker for checker in ALL_CHECKERS
}

__all__ = [
    "ALL_CHECKERS",
    "RULES",
    "BroadExceptChecker",
    "FaultSiteChecker",
    "FuzzRngChecker",
    "GuardedFieldChecker",
    "OrderingChecker",
    "PoolResourceChecker",
    "TrialKeyChecker",
    "UnseededRngChecker",
    "WallClockChecker",
    "WorkerClosureChecker",
]
