"""The rule catalog: one module per rule, stable ids.

Two rule families share the catalog:

* **per-file rules** (:class:`~repro.lint.checker.Checker`) — an AST
  visitor over one file; cheap, cacheable, phase 1;
* **project rules** (:class:`~repro.lint.checker.ProjectChecker`) —
  interprocedural rules over the whole-program
  :class:`~repro.lint.taint.ProjectAnalysis`; phase 2.

Adding a rule means adding a module here, registering its checker in
:data:`ALL_CHECKERS` or :data:`PROJECT_CHECKERS`, documenting it in
``docs/static-analysis.md``, and shipping positive/negative fixtures
under ``tests/tools/lint_fixtures/`` (project rules use the multi-file
``proj_*`` fixture directories).
"""

from __future__ import annotations

from repro.lint.checker import Checker, ProjectChecker
from repro.lint.rules.api001_trial_keys import TrialKeyChecker
from repro.lint.rules.asy101_blocking_async import BlockingAsyncChecker
from repro.lint.rules.det001_rng import UnseededRngChecker
from repro.lint.rules.det002_wallclock import WallClockChecker
from repro.lint.rules.det003_ordering import OrderingChecker
from repro.lint.rules.det101_seed_provenance import SeedProvenanceChecker
from repro.lint.rules.det102_clock_taint import ClockTaintChecker
from repro.lint.rules.exc001_broad_except import BroadExceptChecker
from repro.lint.rules.exc101_leak_paths import LeakPathChecker
from repro.lint.rules.fuz001_fuzz_rng import FuzzRngChecker
from repro.lint.rules.par001_worker_closures import WorkerClosureChecker
from repro.lint.rules.par002_pool_resources import PoolResourceChecker
from repro.lint.rules.par101_worker_globals import WorkerGlobalChecker
from repro.lint.rules.sim001_fault_sites import FaultSiteChecker
from repro.lint.rules.sim002_guarded_fields import GuardedFieldChecker

#: Every registered per-file checker, in rule-id order.
ALL_CHECKERS: tuple[type[Checker], ...] = (
    TrialKeyChecker,
    UnseededRngChecker,
    WallClockChecker,
    OrderingChecker,
    BroadExceptChecker,
    FuzzRngChecker,
    WorkerClosureChecker,
    PoolResourceChecker,
    FaultSiteChecker,
    GuardedFieldChecker,
)

#: Every registered whole-program checker, in rule-id order.
PROJECT_CHECKERS: tuple[type[ProjectChecker], ...] = (
    BlockingAsyncChecker,
    SeedProvenanceChecker,
    ClockTaintChecker,
    LeakPathChecker,
    WorkerGlobalChecker,
)

#: rule id -> checker class (both families; ids are globally unique).
RULES: dict[str, type[Checker] | type[ProjectChecker]] = {
    **{checker.rule: checker for checker in ALL_CHECKERS},
    **{checker.rule: checker for checker in PROJECT_CHECKERS},
}

#: The project-rule ids (the interprocedural family).
PROJECT_RULES: frozenset[str] = frozenset(
    checker.rule for checker in PROJECT_CHECKERS
)

__all__ = [
    "ALL_CHECKERS",
    "PROJECT_CHECKERS",
    "PROJECT_RULES",
    "RULES",
    "BlockingAsyncChecker",
    "BroadExceptChecker",
    "ClockTaintChecker",
    "FaultSiteChecker",
    "FuzzRngChecker",
    "GuardedFieldChecker",
    "LeakPathChecker",
    "OrderingChecker",
    "PoolResourceChecker",
    "SeedProvenanceChecker",
    "TrialKeyChecker",
    "UnseededRngChecker",
    "WallClockChecker",
    "WorkerClosureChecker",
    "WorkerGlobalChecker",
]
