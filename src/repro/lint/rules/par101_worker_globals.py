"""PAR101 — module-level state written on pool-worker call paths.

The fork-server pool (:mod:`repro.experiments.pool`) keeps worker
processes alive across shards and runs.  Any module-level mutable state
written by code a worker executes therefore accumulates *per process*:
two workers see two divergent copies, a recycled worker sees leftovers
from the previous run, and the serial≡parallel byte-identity the
differential suite proves is broken in a way no single file reveals —
the global lives in one module, the write in another, and the worker
entry point in a third.

This rule is the static twin of the runtime
:class:`~repro.invariants.pool.PoolStateChecker`: it walks the project
call graph from the worker entry points
(:data:`WORKER_ENTRY_POINTS`) and flags every write to module-level
state — ``global`` assignment, in-place container mutation
(``_cache.append(...)``), subscript stores — in any function a worker
can reach.

**Fix:** thread the state through the plan (build it in
``trial_plan()``/``plan_source()``) or return it through the result
ring; per-process caches that are *provably* rebuilt per
(run, fingerprint) may carry an inline
``# repro-lint: ignore[PAR101]`` with a justifying comment.
"""

from __future__ import annotations

from repro.lint.checker import Finding, ProjectChecker
from repro.lint.taint import ProjectAnalysis

#: Functions that run inside a pool/shard worker process.  Everything
#: reachable from these over the call graph executes in a worker.
WORKER_ENTRY_POINTS: tuple[str, ...] = (
    "repro.experiments.pool._pool_worker_main",
    "repro.experiments.pool._worker_begin_run",
    "repro.experiments.pool._worker_run_shard",
    "repro.experiments.parallel._worker_main",
    "repro.experiments.parallel._run_shard",
)


class WorkerGlobalChecker(ProjectChecker):
    """Flags module-global writes reachable from worker entry points."""

    rule = "PAR101"
    title = "module-level state written on a pool-worker call path"

    def __init__(
        self, entry_points: tuple[str, ...] = WORKER_ENTRY_POINTS
    ) -> None:
        super().__init__()
        self.entry_points = entry_points

    def check(self, analysis: ProjectAnalysis) -> list[Finding]:
        reached = analysis.reachable_from(self.entry_points)
        for qname in sorted(reached):
            fn = analysis.functions.get(qname)
            if fn is None:
                continue
            rel = analysis.function_rel.get(qname, "")
            entry = reached[qname]
            for write in fn.global_writes:
                self.report(
                    rel,
                    write.line,
                    write.col,
                    f"module-level state `{write.name}` written"
                    f" ({write.kind}) by `{qname}`, reachable from pool"
                    f" worker entry `{entry}`; per-process mutation"
                    " diverges across workers and survives worker reuse —"
                    " thread state through the plan or the result ring"
                    " (static twin of PoolStateChecker)",
                )
        return self.findings
