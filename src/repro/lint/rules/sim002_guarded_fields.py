"""SIM002 — monitor-guarded state mutated outside its owning module.

The runtime invariant checkers (:mod:`repro.invariants.checkers`) verify
conservation laws over a handful of model state fields: WQ occupancy
registers, completion records and ticket lifecycle timestamps, DevTLB
slot lists, the TSC counter.  Those laws assume each field mutates in
exactly one module — a stray ``ticket.record = ...`` in an experiment
module would bypass both the slot-release accounting and the
exactly-once completion check while looking locally harmless.

This rule enforces the static half of that contract, mirroring SIM001's
use of :data:`repro.faults.sites.SITE_OWNERS` with the authoritative
ownership map :data:`repro.invariants.fields.FIELD_OWNERS`:

* assignment (plain, augmented, or annotated) to a guarded attribute
  from a module that does not own the field — except the *declaration
  idiom*: ``self.<field> = None`` / ``= {}`` / ``= deque()`` in a class
  declaring an unrelated attribute that merely shares the name (field
  matching is name-based, so an empty fresh value on ``self`` is read
  as a declaration, not a mutation of monitored state);
* a mutating container-method call (``X.slots.append(...)``,
  ``X._entries.clear()`` — the verbs in
  :data:`repro.invariants.fields.MUTATING_METHODS`) on a guarded
  attribute outside its owners;
* assignment to an ``invariant_monitor`` attribute outside
  ``repro.invariants`` — hand-attachment skips the monitor's
  one-monitor-per-device guard (the ``self.invariant_monitor = None``
  declaration idiom is allowed).
"""

from __future__ import annotations

import ast

from repro.invariants.fields import FIELD_OWNERS, MUTATING_METHODS
from repro.lint.checker import Checker, FileContext


def _display_elements(node: ast.expr) -> list[ast.expr]:
    """The element expressions of a dict/list/set/tuple display."""
    if isinstance(node, ast.Dict):
        return [key for key in node.keys if key is not None] + node.values
    if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
        return node.elts
    return []


class GuardedFieldChecker(Checker):
    """Enforces the :data:`~repro.invariants.fields.FIELD_OWNERS` contract."""

    rule = "SIM002"
    title = "monitor-guarded state mutated outside its owning module"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        if ctx.in_package("repro.invariants", "repro.lint"):
            return False
        return ctx.in_repro or ctx.module == ""

    # -- assignments ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, None, augmented=True)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node.value)
        self.generic_visit(node)

    def _check_target(
        self,
        target: ast.expr,
        value: ast.expr | None,
        augmented: bool = False,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, value, augmented)
            return
        if not isinstance(target, ast.Attribute):
            return
        if target.attr == "invariant_monitor":
            if not augmented:
                self._check_monitor_attachment(target, value)
            return
        owners = FIELD_OWNERS.get(target.attr)
        if owners is None:
            return
        if not augmented and self._is_declaration(target, value):
            return
        if self.ctx.module and self.ctx.module not in owners:
            self.report(
                target,
                f"module `{self.ctx.module}` assigns monitor-guarded field"
                f" `{target.attr}`; its owners are {', '.join(owners)}"
                " (see repro.invariants.fields.FIELD_OWNERS) — mutate it"
                " through the owning module's API",
            )

    # -- mutating container-method calls --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
        ):
            owners = FIELD_OWNERS.get(func.value.attr)
            if (
                owners is not None
                and self.ctx.module
                and self.ctx.module not in owners
            ):
                self.report(
                    node,
                    f"module `{self.ctx.module}` calls"
                    f" `.{func.attr}()` on monitor-guarded field"
                    f" `{func.value.attr}`; its owners are"
                    f" {', '.join(owners)} (see"
                    " repro.invariants.fields.FIELD_OWNERS)",
                )
        self.generic_visit(node)

    # -- idioms ---------------------------------------------------------
    @staticmethod
    def _is_declaration(target: ast.Attribute, value: ast.expr | None) -> bool:
        """``self.<field> = <fresh empty value>`` declares, not mutates."""
        if not (isinstance(target.value, ast.Name) and target.value.id == "self"):
            return False
        if isinstance(value, ast.Constant) and value.value is None:
            return True
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple)):
            return not _display_elements(value)
        if isinstance(value, ast.Call):
            return not value.args and not value.keywords
        return False

    # -- invariant_monitor attachment -----------------------------------
    def _check_monitor_attachment(
        self, target: ast.Attribute, value: ast.expr | None
    ) -> None:
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and value.value is None
        ):
            return  # the `self.invariant_monitor = None` declaration idiom
        self.report(
            target,
            "direct `invariant_monitor` attachment bypasses the monitor's"
            " one-monitor-per-device guard; use"
            " InvariantMonitor.attach_device/attach_system",
        )
