"""PAR002 — pool/shared-memory resources acquired without a release path.

The persistent pool (:mod:`repro.experiments.pool`) holds kernel-backed
resources: ``multiprocessing.shared_memory`` segments (the heartbeat
board, the per-worker result rings) survive the Python objects that wrap
them — a leaked segment outlives the process and eats ``/dev/shm`` until
a reboot.  Every acquisition must therefore be tied to a deterministic
release at the point it happens, not in a distant ``close`` someone must
remember to call.

Flagged acquisition calls — ``SharedMemory(...)``, ``ShmRing.create`` /
``ShmRing.attach``, ``HeartbeatBoard(...)`` / ``HeartbeatBoard.attach``
— are reported unless, within the same function (or module top level),
the acquisition is:

* the context expression of a ``with`` statement,
* an argument to an ``ExitStack``-style ``enter_context(...)``,
* assigned to an object attribute (``self._shm = ...`` — ownership moves
  to an object whose ``close`` manages it),
* returned by a factory (``shm = SharedMemory(...)`` … ``return shm``),
* or bound to a name that is ``close()``d in a ``finally`` block or
  registered with a finalizer (``weakref.finalize``, ``atexit.register``,
  ``stack.callback``).

The sanctioned idiom is the first two: ``ShmRing``/``HeartbeatBoard``
are context managers precisely so acquisitions read
``stack.enter_context(ShmRing.attach(...))``.
"""

from __future__ import annotations

import ast

from repro.lint.checker import (
    Checker,
    FileContext,
    iter_child_statements,
)

#: Dotted-origin suffixes that acquire a kernel-backed pool resource.
_ACQUIRERS: tuple[str, ...] = (
    "multiprocessing.shared_memory.SharedMemory",
    "ShmRing.create",
    "ShmRing.attach",
    "HeartbeatBoard",
    "HeartbeatBoard.attach",
)

#: Callee attribute names that register a deterministic release for an
#: argument: ExitStack.enter_context/callback, atexit.register,
#: weakref.finalize.
_ENTER_METHODS = frozenset({"enter_context"})
_FINALIZER_METHODS = frozenset({"callback", "register", "finalize"})


def _matches(origin: str | None) -> bool:
    if origin is None:
        return False
    return any(
        origin == suffix or origin.endswith("." + suffix)
        for suffix in _ACQUIRERS
    )


class PoolResourceChecker(Checker):
    """Flags pool resource acquisitions with no tied release path."""

    rule = "PAR002"
    title = "shared-memory/pool resource acquired without a release path"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return ctx.in_package("repro.experiments") or ctx.module == ""

    # -- scope walking --------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._check_scope(node.body)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_scope(node.body)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- the scope analysis ---------------------------------------------
    def _check_scope(self, body: list[ast.stmt]) -> None:
        """Flag unmanaged acquisitions among *body*'s own statements
        (nested function/class bodies are their own scopes)."""
        acquisitions: list[ast.Call] = []
        safe_calls: set[int] = set()  # id(call) considered managed
        named: dict[str, list[ast.Call]] = {}  # name -> its acquisitions
        safe_names: set[str] = set()

        for node in iter_child_statements(body):
            if isinstance(node, ast.Call) and _matches(self.resolve_call(node)):
                acquisitions.append(node)
            # with SharedMemory(...) as x: / with ShmRing.attach(...):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        safe_calls.add(id(item.context_expr))
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # stack.enter_context(Acquire(...)) manages its argument;
                # stack.callback / atexit.register / weakref.finalize
                # manage the *name* they mention.
                if node.func.attr in _ENTER_METHODS:
                    for arg in node.args:
                        safe_calls.add(id(arg))
                elif node.func.attr in _FINALIZER_METHODS:
                    for arg in ast.walk(node):
                        if isinstance(arg, ast.Name):
                            safe_names.add(arg.id)
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        # self._shm = SharedMemory(...): ownership moves
                        # to an object whose close() manages it.
                        safe_calls.add(id(node.value))
                    elif isinstance(target, ast.Name):
                        named.setdefault(target.id, []).append(node.value)
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call):
                    # return SharedMemory(...): a factory hands the
                    # caller ownership (the caller's scope is checked).
                    safe_calls.add(id(node.value))
                elif isinstance(node.value, ast.Name):
                    safe_names.add(node.value.id)
            if isinstance(node, ast.Try) and node.finalbody:
                for cleanup in node.finalbody:
                    for sub in ast.walk(cleanup):
                        if (
                            isinstance(sub, ast.Attribute)
                            and sub.attr == "close"
                            and isinstance(sub.value, ast.Name)
                        ):
                            safe_names.add(sub.value.id)

        for call in acquisitions:
            if id(call) in safe_calls:
                continue
            holders = [
                name for name, calls in named.items()
                if any(entry is call for entry in calls)
            ]
            if any(name in safe_names for name in holders):
                continue
            what = ast.unparse(call.func)
            self.report(
                call,
                f"`{what}(...)` acquires a kernel-backed pool resource "
                "with no tied release: use it as a context manager, hand "
                "it to `ExitStack.enter_context(...)`, register a "
                "finalizer, or close it in a `finally` block "
                "(shared-memory segments outlive the process when leaked)",
            )
