"""DET003 — hash-ordered iteration feeding ordered computation.

Iterating a ``set`` yields elements in hash order, which for strings
varies with ``PYTHONHASHSEED`` — two runs of the *same seed* can visit
elements differently.  Anywhere such an iteration feeds event
scheduling, queue arbitration, or trial ordering, the artifact stops
being a pure function of the configuration.  ``dict`` iteration is
insertion-ordered and therefore deterministic *per se*, but a
``.values()``/``.keys()`` loop that schedules work inherits whatever
order built the dict — so those are flagged only when the loop body
reaches a scheduling/arbitration sink.

The fix is one word: ``sorted(...)`` (with an explicit ``key=`` for
non-comparable elements).
"""

from __future__ import annotations

import ast

from repro.lint.checker import Checker, FileContext, dotted_parts

#: Callables that order-sensitively consume work inside a loop body.
_SCHEDULING_SINKS = frozenset(
    {
        "schedule_at",
        "schedule_after",
        "schedule_after_us",
        "heappush",
        "submit",
        "submit_wait",
        "try_enqueue",
        "TrialSpec",
    }
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _set_constructor_names(body: list[ast.stmt]) -> set[str]:
    """Names assigned a set expression anywhere in *body* (approximate,
    one scope, no reassignment tracking)."""
    names: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, ()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, ())
            ):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: tuple[str, ...] | set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        if parts in (["set"], ["frozenset"]):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


def _is_mapping_view(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys")
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


def _body_hits_sink(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts and parts[-1] in _SCHEDULING_SINKS:
                return True
    return False


class OrderingChecker(Checker):
    """Flags unsorted set iteration (and order-sinking dict views)."""

    rule = "DET003"
    title = "hash-ordered iteration without sorted()"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._scopes: list[set[str]] = [_set_constructor_names(ctx.tree.body)]

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return ctx.in_repro or ctx.module == ""

    @property
    def _set_names(self) -> set[str]:
        return self._scopes[-1]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(
            self._set_names | _set_constructor_names(node.body)
        )
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, node.body)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter, node.body)
        self.generic_visit(node)

    def _visit_comprehension_like(self, node: ast.expr) -> None:
        for comp in getattr(node, "generators", []):
            # Comprehension bodies cannot schedule, so only bare set
            # iteration is a hazard here.
            if _is_set_expr(comp.iter, self._set_names):
                self._report_set(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_like
    visit_SetComp = _visit_comprehension_like
    visit_DictComp = _visit_comprehension_like
    visit_GeneratorExp = _visit_comprehension_like

    def _check_iterable(self, iterable: ast.expr, body: list[ast.stmt]) -> None:
        if _is_set_expr(iterable, self._set_names):
            self._report_set(iterable)
            return
        view = _is_mapping_view(iterable)
        if view is not None and _body_hits_sink(body):
            self.report(
                iterable,
                f"iteration over `.{view}()` feeds a scheduling/arbitration"
                " sink; wrap the view in sorted(...) so event order is a"
                " function of the spec, not of dict construction",
            )

    def _report_set(self, node: ast.expr) -> None:
        self.report(
            node,
            "iteration over a set is hash-ordered (varies with"
            " PYTHONHASHSEED); wrap it in sorted(...)",
        )
