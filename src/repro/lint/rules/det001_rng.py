"""DET001 — unseeded or global RNG use.

Every figure in the reproduction regenerates bit-for-bit from a seed,
which holds only if *all* randomness flows through per-trial generators
spawned from that seed (:func:`repro.experiments.runner.spawn_trial_seed`
→ ``numpy.random.default_rng``).  Three bug classes break it:

* the stdlib **global** RNG (``random.random()`` and friends) — shared,
  hidden state that any import can perturb;
* **legacy numpy** global functions (``np.random.rand`` etc.) and
  ``RandomState`` — the same problem with a bigger API surface;
* **unseeded constructors** (``random.Random()``,
  ``np.random.default_rng()``, ``np.random.SeedSequence()`` with no
  arguments) — OS entropy, different every run — plus module-level
  ``random.Random(...)`` instances, whose draw order depends on import
  order rather than on the trial that uses them.

The fix is never a suppression: thread a seeded
``numpy.random.Generator`` (or a seed) through the call site.
"""

from __future__ import annotations

import ast

from repro.lint.checker import Checker, FileContext

#: stdlib ``random`` module-level functions (the hidden global RNG).
_STDLIB_GLOBAL = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "getrandbits",
        "seed",
    }
)

#: legacy ``numpy.random`` module-level functions (global RandomState).
_NUMPY_LEGACY = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "seed",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "normal",
        "uniform",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "geometric",
        "get_state",
        "set_state",
    }
)

#: Constructors that must receive an explicit seed argument.
_NEED_SEED = frozenset(
    {"numpy.random.default_rng", "numpy.random.SeedSequence", "random.Random"}
)


class UnseededRngChecker(Checker):
    """Flags global/unseeded RNG use anywhere under ``repro``."""

    rule = "DET001"
    title = "unseeded or global RNG use"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._function_depth = 0

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return ctx.in_repro or ctx.module == ""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve_call(node)
        if origin is not None:
            self._check_origin(node, origin)
        self.generic_visit(node)

    def _check_origin(self, node: ast.Call, origin: str) -> None:
        parts = origin.split(".")
        if origin.startswith("secrets."):
            self.report(
                node, f"`{origin}` draws OS entropy; derive from the trial seed"
            )
        elif parts[0] == "random" and len(parts) == 2:
            if parts[1] in _STDLIB_GLOBAL:
                self.report(
                    node,
                    f"stdlib global RNG `{origin}()`; use a seeded"
                    " numpy Generator threaded from the trial seed",
                )
            elif parts[1] == "Random":
                self._check_constructor(node, origin)
        elif origin.startswith("numpy.random."):
            tail = parts[-1]
            if len(parts) == 3 and tail in _NUMPY_LEGACY:
                self.report(
                    node,
                    f"legacy numpy global RNG `{origin}()`; use"
                    " `numpy.random.default_rng(seed)`",
                )
            elif tail == "RandomState":
                self.report(
                    node,
                    "`numpy.random.RandomState` is the legacy global-state"
                    " API; use `numpy.random.default_rng(seed)`",
                )
            elif origin in _NEED_SEED:
                self._check_constructor(node, origin)

    def _check_constructor(self, node: ast.Call, origin: str) -> None:
        if not node.args and not node.keywords:
            self.report(
                node,
                f"`{origin}()` without a seed draws OS entropy;"
                " pass a seed derived from the trial key",
            )
        elif origin == "random.Random" and self._function_depth == 0:
            self.report(
                node,
                "module-level `random.Random(...)` makes draw order depend"
                " on import order; construct per-trial generators instead",
            )
