"""SIM001 — fault-hookable device state mutated outside its site owner.

The chaos suite (PR 1) is only sound if every way the simulated device
can break routes through a registered
:class:`~repro.faults.plan.FaultSite`: the injector's log is the ground
truth chaos assertions compare against, and
:meth:`~repro.faults.injector.FaultInjector.register_site` guarantees
each site has exactly one runtime owner.  This rule enforces the static
half of that contract, using the same authoritative map
(:data:`repro.faults.sites.SITE_OWNERS`):

* ``injector.fire(FaultSite.X, ...)`` from a module that does not own
  site ``X`` — a second, unregistered hook point whose effects the
  registry (and the log consumers) cannot account for;
* ``fire()`` with an unknown site name — a typo that would raise (or
  silently never fire) at runtime;
* assignment to a ``fault_injector`` attribute outside
  ``repro.faults`` — hooking up by hand bypasses site registration, the
  exact silently-last-wins bug the registry exists to prevent (the
  ``self.fault_injector = None`` declaration idiom is allowed);
* direct calls to fault-effect mutators (e.g. ``invalidate_all``) from
  modules that neither define them nor own the corresponding site.
"""

from __future__ import annotations

import ast

from repro.faults.plan import FaultSite
from repro.faults.sites import SITE_OWNERS, STATE_MUTATOR_OWNERS
from repro.lint.checker import Checker, FileContext, dotted_parts

_SITE_OWNER_MODULES = {
    site.name: owners for site, owners in SITE_OWNERS.items()
}
_KNOWN_SITE_VALUES = {site.value: site.name for site in FaultSite}


class FaultSiteChecker(Checker):
    """Enforces the :data:`~repro.faults.sites.SITE_OWNERS` contract."""

    rule = "SIM001"
    title = "fault-hookable state mutated outside its site owner"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        if ctx.in_package("repro.faults", "repro.lint"):
            return False
        return ctx.in_repro or ctx.module == ""

    # -- fire() ownership ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_fire(node)
        self._check_mutator(node)
        self.generic_visit(node)

    def _check_fire(self, node: ast.Call) -> None:
        parts = dotted_parts(node.func)
        if not parts or parts[-1] != "fire":
            return
        site_name = self._site_argument(node)
        if site_name is None:
            return
        owners = _SITE_OWNER_MODULES.get(site_name)
        if owners is None:
            self.report(
                node,
                f"fire() on unknown fault site `{site_name}`; sites are"
                " declared in repro.faults.plan.FaultSite and owned in"
                " repro.faults.sites.SITE_OWNERS",
            )
        elif self.ctx.module and self.ctx.module not in owners:
            self.report(
                node,
                f"module `{self.ctx.module}` fires FaultSite.{site_name}"
                f" but its registered owner is {', '.join(owners)};"
                " hook the site in its owner or extend SITE_OWNERS",
            )

    def _site_argument(self, node: ast.Call) -> str | None:
        """The ``FaultSite.X`` member name of fire()'s site argument."""
        site_expr: ast.expr | None = None
        if node.args:
            site_expr = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "site":
                    site_expr = keyword.value
        if site_expr is None:
            return None
        parts = dotted_parts(site_expr)
        if len(parts) >= 2 and parts[-2] == "FaultSite":
            return parts[-1]
        if isinstance(site_expr, ast.Constant) and isinstance(
            site_expr.value, str
        ):
            return _KNOWN_SITE_VALUES.get(site_expr.value, site_expr.value)
        return None

    # -- fault-effect mutators -----------------------------------------
    def _check_mutator(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        owners = STATE_MUTATOR_OWNERS.get(node.func.attr)
        if owners is None:
            return
        if self.ctx.module and self.ctx.module not in owners:
            self.report(
                node,
                f"direct call to fault-effect mutator `{node.func.attr}()`"
                f" outside its owners ({', '.join(owners)}); route the"
                " effect through the owning FaultSite hook",
            )

    # -- fault_injector attachment -------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_injector_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_injector_target(node.target, node.value)
        self.generic_visit(node)

    def _check_injector_target(
        self, target: ast.expr, value: ast.expr
    ) -> None:
        if not (
            isinstance(target, ast.Attribute)
            and target.attr == "fault_injector"
        ):
            return
        if isinstance(value, ast.Constant) and value.value is None:
            return  # the `self.fault_injector = None` declaration idiom
        self.report(
            target,
            "direct `fault_injector` attachment bypasses site registration"
            " (silently last-wins); use FaultInjector.attach_device/"
            "attach_timeline/attach_system",
        )
