"""API001 — trial keys derived from execution order, not from the spec.

The resume guarantee (PR 2) hangs on one property of every
``trial_plan()``: a :class:`~repro.experiments.runner.TrialSpec` key
must identify *what the trial is*, never *when it ran*.  The journal is
addressed by key, and :func:`~repro.experiments.runner.spawn_trial_seed`
derives the trial RNG from it — a key built from an execution-order
counter makes a resumed run (or a plan built with a different filter)
journal the same work under a different name, silently re-running or
mis-splicing trials.

Flagged key expressions (keyword ``key=`` or first positional argument
of a ``TrialSpec(...)`` call) are those that reference:

* the index variable of an ``enumerate(...)`` loop,
* a counter mutated with ``+=`` (or any augmented assignment),
* ``next(...)`` on anything (e.g. ``itertools.count``),
* ``len(acc)`` where ``acc`` is the list the plan appends specs to.

Keys spelled from the spec's own values — site names, window sizes,
``range()`` loop variables — are order-independent and pass.
"""

from __future__ import annotations

import ast

from repro.lint.checker import Checker, FileContext, dotted_parts


def _enumerate_index_names(func: ast.AST) -> set[str]:
    """First-element targets of ``for i, ... in enumerate(...)`` loops."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            continue
        iter_expr = node.iter
        if not (
            isinstance(iter_expr, ast.Call)
            and dotted_parts(iter_expr.func) == ["enumerate"]
        ):
            continue
        target = node.target
        if isinstance(target, ast.Tuple) and target.elts:
            target = target.elts[0]
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _aug_assigned_names(func: ast.AST) -> set[str]:
    return {
        node.target.id
        for node in ast.walk(func)
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name)
    }


def _accumulator_names(func: ast.AST) -> set[str]:
    """Names that ``.append(...)``/``.extend(...)`` a ``TrialSpec``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "extend")
            and isinstance(node.func.value, ast.Name)
        ):
            continue
        names.add(node.func.value.id)
    return names


class TrialKeyChecker(Checker):
    """Flags order-dependent ``TrialSpec`` keys in experiment modules."""

    rule = "API001"
    title = "trial key derived from execution order"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return (
            ctx.in_package("repro.experiments")
            or ctx.module == ""
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        # No generic_visit: _check_function already walked nested defs.

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_function(self, func: ast.AST) -> None:
        ordered = _enumerate_index_names(func) | _aug_assigned_names(func)
        accumulators = _accumulator_names(func)
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and dotted_parts(node.func)[-1:] == ["TrialSpec"]
            ):
                continue
            key_expr = self._key_expression(node)
            if key_expr is None:
                continue
            reason = self._order_dependence(key_expr, ordered, accumulators)
            if reason is not None:
                self.report(
                    key_expr,
                    f"TrialSpec key depends on {reason}; derive keys from"
                    " the spec's own values (site name, window, range"
                    " index) so resumed plans address the same trials",
                )

    @staticmethod
    def _key_expression(node: ast.Call) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "key":
                return keyword.value
        if node.args:
            return node.args[0]
        return None

    @staticmethod
    def _order_dependence(
        key_expr: ast.expr, ordered: set[str], accumulators: set[str]
    ) -> str | None:
        for node in ast.walk(key_expr):
            if isinstance(node, ast.Name) and node.id in ordered:
                return f"the execution-order counter `{node.id}`"
            if isinstance(node, ast.Call):
                parts = dotted_parts(node.func)
                if parts == ["next"]:
                    return "a `next(...)` counter"
                if (
                    parts == ["len"]
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in accumulators
                ):
                    return (
                        f"`len({node.args[0].id})` of the spec accumulator"
                    )
        return None
