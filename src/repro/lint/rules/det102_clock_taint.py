"""DET102 — wall-clock-derived values flowing into durable artifacts.

DET002 polices *where* the host clock may be read
(``repro.experiments.runner`` only).  That is necessary but not
sufficient: the injectable ``wall_clock()``/``monotonic_clock()``
helpers are legitimately called all over the orchestration layer, and
nothing per-file stops one of those values from flowing — through any
number of helpers — into an artifact that must be a pure function of
``(config, seed)``: a trial key, a journal payload, a dataset, the fuzz
corpus state.  One such leak and resume-equals-uninterrupted (and the
serial≡parallel byte-identity) silently breaks in production while
tests, which inject frozen clocks, stay green.

Flagged: a call site whose clock-tainted argument reaches one of the
sink families below, resolved through the whole-program taint engine.
Sanctioned clock uses stay out by construction: journal ``elapsed_s``
is an exempt argument (the differential layer strips it), and the
manifest's own timestamping lives in the sink-owning module
(``repro.experiments.checkpoint``), which is exempt for the atomic-write
sinks it implements.

**Fix:** keep host time in telemetry fields that the equivalence layer
already normalizes, or drop it; never fold it into keys, payloads,
datasets, or corpus state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.checker import Finding, ProjectChecker
from repro.lint.taint import ProjectAnalysis


@dataclass(frozen=True)
class SinkSpec:
    """One family of durable-artifact sinks."""

    suffixes: tuple[str, ...]  # dotted-callee suffixes
    what: str  # human label for messages
    #: keyword arguments that legitimately carry host time.
    exempt_kwargs: frozenset[str] = frozenset()
    #: highest positional index checked (exclusive); None = all.
    max_args: int | None = None
    #: calling modules exempt because they own the sink's sanctioned
    #: timestamping.
    exempt_modules: frozenset[str] = frozenset()


#: The sink catalog: trial payloads, checkpoint journals, manifests,
#: datasets, fuzz corpus state, trial keys/seeds.
SINKS: tuple[SinkSpec, ...] = (
    SinkSpec(
        suffixes=("record_success", "record_failure", "record_failure_info"),
        what="the checkpoint journal",
        exempt_kwargs=frozenset({"elapsed_s"}),
        max_args=3,
    ),
    SinkSpec(
        suffixes=("TrialSpec",),
        what="a trial key/payload",
    ),
    SinkSpec(
        suffixes=("spawn_trial_seed",),
        what="a trial seed",
    ),
    SinkSpec(
        suffixes=("TraceDataset", "TraceDataset.save", "TraceDataset.merge",
                  "TraceDataset.merge_many"),
        what="a dataset artifact",
    ),
    SinkSpec(
        suffixes=(
            "atomic_write_json",
            "atomic_write_text",
            "atomic_write_bytes",
            "atomic_write_pickle",
        ),
        what="a durable checkpoint artifact",
        exempt_modules=frozenset({"repro.experiments.checkpoint"}),
    ),
    SinkSpec(
        suffixes=("_save_state", "save_state"),
        what="the fuzz corpus state",
    ),
    SinkSpec(
        suffixes=("config_hash",),
        what="the config hash resume validates",
    ),
)


def _match(callee: str) -> SinkSpec | None:
    for spec in SINKS:
        for suffix in spec.suffixes:
            if callee == suffix or callee.endswith("." + suffix):
                return spec
    return None


class ClockTaintChecker(ProjectChecker):
    """Flags clock-derived values reaching reproducibility sinks."""

    rule = "DET102"
    title = "wall-clock taint flows into a durable artifact"

    def check(self, analysis: ProjectAnalysis) -> list[Finding]:
        for qname, fn in sorted(analysis.functions.items()):
            rel = analysis.function_rel.get(qname, "")
            module = analysis.module_of(qname)
            for call in fn.calls:
                spec = _match(call.callee)
                if spec is None or module in spec.exempt_modules:
                    continue
                tainted: list[str] = []
                checked = (
                    call.args
                    if spec.max_args is None
                    else call.args[: spec.max_args]
                )
                for index, atoms in enumerate(checked):
                    if "clock" in analysis.resolve_atoms(qname, atoms):
                        tainted.append(f"argument {index + 1}")
                for kw_name, atoms in sorted(call.keywords.items()):
                    if kw_name in spec.exempt_kwargs:
                        continue
                    if "clock" in analysis.resolve_atoms(qname, atoms):
                        tainted.append(f"`{kw_name}=`")
                if tainted:
                    self.report(
                        rel,
                        call.line,
                        call.col,
                        f"host-clock-derived value ({', '.join(tainted)})"
                        f" flows into {spec.what} via `{call.callee}`;"
                        " artifacts must be pure functions of"
                        " (config, seed) — keep host time in normalized"
                        " telemetry fields",
                    )
        return self.findings
