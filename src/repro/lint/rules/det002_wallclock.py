"""DET002 — host wall-clock reads outside the sanctioned module.

The model's only notion of time is the simulated TSC
(:class:`repro.hw.clock.TscClock`): DevTLB hit/miss thresholds,
``EFLAGS.ZF`` polling and every latency histogram are functions of
*simulated* cycles.  A single ``time.time()`` in model code couples the
artifact to host scheduling jitter and silently breaks the
resume-equals-uninterrupted guarantee.

The orchestration layer legitimately needs the host clock (watchdog
deadlines, manifest timestamps, CLI timing) — but all of it routes
through :func:`repro.experiments.runner.wall_clock` /
:func:`repro.experiments.runner.monotonic_clock`, which are injectable
in tests.  ``repro.experiments.runner`` is therefore the *only* module
allowed to touch :mod:`time` directly.
"""

from __future__ import annotations

import ast

from repro.lint.checker import WALL_CLOCK_ALLOWLIST, Checker, FileContext

#: Calls that observe the host clock or host entropy.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


class WallClockChecker(Checker):
    """Flags host-clock reads in every ``repro`` module but the runner."""

    rule = "DET002"
    title = "wall-clock read outside repro.experiments.runner"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        if ctx.module in WALL_CLOCK_ALLOWLIST:
            return False
        return ctx.in_repro or ctx.module == ""

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve_call(node)
        if origin in _WALL_CLOCK_CALLS:
            if self.ctx.in_model_package:
                hint = "model code must read the simulated TscClock"
            else:
                hint = (
                    "route through repro.experiments.runner.wall_clock()/"
                    "monotonic_clock() so tests can inject time"
                )
            self.report(node, f"host clock read `{origin}()`; {hint}")
        self.generic_visit(node)
