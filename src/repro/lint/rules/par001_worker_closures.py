"""PAR001 — trial closures capturing cross-trial mutable state.

The sharded executor (:mod:`repro.experiments.parallel`) runs a plan's
trials in separate processes, in shard order rather than plan order.
That is only observation-equivalent to a serial run if every
``TrialSpec.fn`` is self-contained: a closure that reads a loop variable
or a mutated accumulator from the enclosing ``trial_plan`` scope either
sees the *last* loop value (the classic late-binding bug — every trial
runs the final window) or depends on state other trials mutate, which no
longer exists in a worker process.

Flagged ``fn`` expressions (keyword ``fn=`` or second positional
argument of a ``TrialSpec(...)`` call) are lambdas or locally-defined
functions whose free variables include:

* a loop target of the enclosing function (``for window in ...``),
* a name mutated in the enclosing scope — augmented assignment or an
  in-place container method (``append``, ``update``, ...) / subscript
  store, including mutations made by the closure itself.

The sanctioned idiom rebinds per-iteration values as lambda defaults —
``lambda window=window: run(window)`` — which evaluates them eagerly and
ships them with the (rebuilt) plan; reads of immutable plan parameters
(``seed``, ``settings``) are fine and pass.
"""

from __future__ import annotations

import ast

from repro.lint.checker import Checker, FileContext, dotted_parts

#: Container methods treated as in-place mutation of the receiver.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)


def _loop_target_names(func: ast.AST) -> set[str]:
    """Every name bound by a ``for``/comprehension target in *func*."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _mutated_names(func: ast.AST) -> set[str]:
    """Names mutated in place anywhere under *func* (closures included)."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            names.add(node.func.value.id)
        elif isinstance(node, (ast.Assign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else node.targets
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    names.add(target.value.id)
    return names


def _bound_names(func: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the closure binds itself: parameters (including the
    default-rebinding idiom), local assignments, comprehension targets."""
    args = func.args
    bound = {
        arg.arg
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
    return bound


def _free_names(func: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the closure reads from an enclosing scope."""
    bound = _bound_names(func)
    free: set[str] = set()
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in bound
            ):
                free.add(node.id)
    # Default expressions evaluate in the *enclosing* scope at definition
    # time — that is the sanctioned rebinding idiom, not a capture.
    return free


class WorkerClosureChecker(Checker):
    """Flags ``TrialSpec`` closures unsafe to ship to shard workers."""

    rule = "PAR001"
    title = "trial closure captures cross-trial mutable state"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return (
            ctx.in_package("repro.experiments")
            or ctx.module == ""
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        # No generic_visit: _check_function already walked nested defs.

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_function(self, func: ast.AST) -> None:
        suspicious = _loop_target_names(func) | _mutated_names(func)
        if not suspicious:
            return
        local_defs = {
            node.name: node
            for node in ast.walk(func)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func
        }
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and dotted_parts(node.func)[-1:] == ["TrialSpec"]
            ):
                continue
            fn_expr = self._fn_expression(node)
            if fn_expr is None:
                continue
            closure: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef | None
            if isinstance(fn_expr, ast.Lambda):
                closure = fn_expr
            elif isinstance(fn_expr, ast.Name) and fn_expr.id in local_defs:
                closure = local_defs[fn_expr.id]
            else:
                # Module-level callables, functools.partial(...) and
                # bound methods evaluate their data eagerly — safe.
                continue
            captured = sorted(_free_names(closure) & suspicious)
            if captured:
                self.report(
                    fn_expr,
                    "trial closure captures mutable/loop state "
                    f"{', '.join(f'`{name}`' for name in captured)} from "
                    "the enclosing scope; rebind per-trial values as "
                    "lambda defaults (`lambda x=x: ...`) so the trial is "
                    "self-contained and shard-safe",
                )

    @staticmethod
    def _fn_expression(node: ast.Call) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "fn":
                return keyword.value
        if len(node.args) >= 2:
            return node.args[1]
        return None
