"""EXC001 — bare/broad ``except`` that can swallow integrity failures.

The crash-safety layer communicates through exceptions that *must*
propagate: a :class:`~repro.errors.CheckpointError` from a journal that
cannot be written, a :class:`~repro.errors.DatasetCorruptionError` from
an artifact that failed its checksum.  A ``try: ... except Exception:
pass`` between the raise site and the supervisor turns a detected
corruption into a silently wrong figure — the worst failure mode a
reproduction can have.

Flagged:

* bare ``except:`` — always (it also eats ``KeyboardInterrupt``-adjacent
  ``SystemExit``);
* ``except Exception`` / ``except BaseException`` (alone or in a tuple)
  unless the handler re-raises with a bare ``raise``;
* ``contextlib.suppress(Exception)`` / ``suppress(BaseException)``.

Catching :class:`~repro.errors.ReproError` (or a narrower subclass) is
the sanctioned containment boundary and is never flagged.
"""

from __future__ import annotations

import ast

from repro.lint.checker import Checker, FileContext

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(type_expr: ast.expr) -> list[str]:
    """Broad exception class names in an ``except`` type expression."""
    exprs = (
        type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    )
    names: list[str] = []
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD:
            names.append(expr.id)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
    return False


class BroadExceptChecker(Checker):
    """Flags exception handlers wide enough to hide corruption."""

    rule = "EXC001"
    title = "bare/broad except can swallow integrity errors"

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        return ctx.in_repro or ctx.module == ""

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` swallows every failure, including"
                " CheckpointError/DatasetCorruptionError; catch ReproError"
                " (or narrower) instead",
            )
        else:
            broad = _broad_names(node.type)
            if broad and not _reraises(node):
                self.report(
                    node,
                    f"`except {'/'.join(broad)}` without re-raise can"
                    " swallow CheckpointError/DatasetCorruptionError;"
                    " catch ReproError (or narrower), or re-raise",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        origin = self.resolve_call(node)
        if origin in ("contextlib.suppress", "suppress"):
            broad = [
                name
                for arg in node.args
                if isinstance(arg, ast.Name) and (name := arg.id) in _BROAD
            ]
            if broad:
                self.report(
                    node,
                    f"`suppress({'/'.join(broad)})` silently discards"
                    " integrity failures; suppress a narrow error type",
                )
        self.generic_visit(node)
