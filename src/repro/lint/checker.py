"""Checker base class, findings, and shared AST utilities.

A checker is an :class:`ast.NodeVisitor` bound to one parsed file
(:class:`FileContext`) that emits :class:`Finding` records.  Rules live
in :mod:`repro.lint.rules`; this module provides what they share:

* **Finding** — one stable, sortable diagnostic (rule id, path, line,
  column, message).
* **ImportResolver** — maps local names back to the dotted origin they
  were imported from, so ``from time import perf_counter as pc; pc()``
  resolves to ``time.perf_counter`` and ``np.random.rand()`` to
  ``numpy.random.rand`` regardless of aliasing.
* **Scope classification** — which ``repro`` package a file belongs to
  (model packages obey stricter determinism rules than the orchestration
  layer).

Everything here is pure standard-library Python: the linter must run in
a bare environment and must never import the code it analyses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Iterable

#: Sub-packages of ``repro`` whose code models simulated hardware and
#: therefore may only observe the *simulated* clock and seeded RNGs.
MODEL_PACKAGES: tuple[str, ...] = (
    "repro.dsa",
    "repro.ats",
    "repro.hw",
    "repro.virt",
    "repro.core",
    "repro.covert",
    "repro.workloads",
)

#: Orchestration modules allowed to read the host wall clock.  Kept to a
#: single module on purpose: every timestamp in the system routes through
#: :func:`repro.experiments.runner.wall_clock` (injectable in tests).
WALL_CLOCK_ALLOWLIST: tuple[str, ...] = ("repro.experiments.runner",)

#: Directive that lets a fixture file declare the module it pretends to
#: be (fixtures live outside ``src/`` so their path encodes nothing).
FIXTURE_MODULE_DIRECTIVE = "# repro-lint-fixture-module:"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: stable rule id + location + message."""

    path: str  # posix path, relative to the lint root
    line: int  # 1-based
    col: int  # 1-based (display convention)
    rule: str
    message: str

    def format_text(self) -> str:
        """``path:line:col: RULE message`` (clickable in most tooling)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-object form (the ``--format json`` wire format)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """One parsed source file, as seen by every checker."""

    path: Path  # absolute
    rel: str  # posix, relative to the lint root
    module: str  # dotted module ("" when not under a repro package)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _resolver: "ImportResolver | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def resolver(self) -> "ImportResolver":
        """The file's import resolver, built once and shared by every
        checker and by the summary extractor (the per-file slice of the
        project symbol table)."""
        if self._resolver is None:
            self._resolver = ImportResolver(self.tree)
        return self._resolver

    @classmethod
    def parse(cls, path: Path, rel: str, module: str) -> "FileContext":
        """Read and parse *path* (raises ``SyntaxError`` on bad source)."""
        return cls.from_source(
            path.read_text(encoding="utf-8"), path, rel, module
        )

    @classmethod
    def from_source(
        cls, source: str, path: Path, rel: str, module: str
    ) -> "FileContext":
        """Parse already-read *source* (raises ``SyntaxError``)."""
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            rel=rel,
            module=module,
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        override = ctx._fixture_module_override()
        if override is not None:
            ctx.module = override
        return ctx

    def _fixture_module_override(self) -> str | None:
        for line in self.lines[:10]:
            stripped = line.strip()
            if stripped.startswith(FIXTURE_MODULE_DIRECTIVE):
                return stripped[len(FIXTURE_MODULE_DIRECTIVE):].strip()
        return None

    # -- scope helpers -------------------------------------------------
    def in_package(self, *packages: str) -> bool:
        """Whether this file's module lives under any of *packages*."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    @property
    def in_model_package(self) -> bool:
        """Whether this file is simulated-hardware model code."""
        return self.in_package(*MODEL_PACKAGES)

    @property
    def in_repro(self) -> bool:
        """Whether this file belongs to the ``repro`` distribution."""
        return self.module == "repro" or self.module.startswith("repro.")


class ImportResolver(ast.NodeVisitor):
    """Tracks ``import``/``from ... import`` bindings in one module.

    :meth:`resolve` maps a ``Name``/``Attribute`` chain to the dotted
    path it refers to, substituting the local alias for its origin.
    Names never imported resolve to their own dotted spelling, so
    callers can still match explicit chains like ``self.rng.normal``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = origin

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:  # relative imports stay local
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of *node*, or ``None`` for non-name expressions."""
        parts = dotted_parts(node)
        if not parts:
            return None
        head, *rest = parts
        origin = self.aliases.get(head, head)
        return ".".join([origin, *rest]) if rest else origin


def dotted_parts(node: ast.expr) -> list[str]:
    """``a.b.c`` as ``["a", "b", "c"]`` (empty for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def iter_child_statements(body: Iterable[ast.stmt]) -> Iterable[ast.AST]:
    """Walk *body* without descending into nested function/class defs."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class Checker(ast.NodeVisitor):
    """Base class for one lint rule over one file.

    Subclasses set :attr:`rule` (stable id) and :attr:`title`, implement
    ``visit_*`` methods, and call :meth:`report`.  :meth:`interested`
    lets a rule opt out of files outside its scope without walking them.
    """

    rule: ClassVar[str] = ""
    title: ClassVar[str] = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.imports = ctx.resolver
        self.findings: list[Finding] = []

    @classmethod
    def interested(cls, ctx: FileContext) -> bool:
        """Whether this rule applies to *ctx* at all (default: yes)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding anchored at *node*."""
        self.findings.append(
            Finding(
                path=self.ctx.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule,
                message=message,
            )
        )

    def run(self) -> list[Finding]:
        """Walk the file and return this rule's findings."""
        self.visit(self.ctx.tree)
        return self.findings

    def resolve_call(self, node: ast.Call) -> str | None:
        """Dotted origin of a call's callee (aliasing-aware)."""
        return self.imports.resolve(node.func)


class ProjectChecker:
    """Base class for one interprocedural rule over the whole program.

    Where :class:`Checker` sees one file's AST, a project checker sees
    the phase-2 :class:`~repro.lint.taint.ProjectAnalysis` — the symbol
    table, call graph, and resolved taint built from every module
    summary.  Subclasses set :attr:`rule`/:attr:`title` and implement
    :meth:`check`; findings anchor to the summary-recorded site
    locations, so no AST is needed at report time (which is what lets
    cached modules participate without re-parsing).
    """

    rule: ClassVar[str] = ""
    title: ClassVar[str] = ""

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def report(
        self, rel: str, line: int, col: int, message: str
    ) -> None:
        """Record one finding at an explicit location."""
        self.findings.append(
            Finding(path=rel, line=line, col=col, rule=self.rule,
                    message=message)
        )

    def check(self, analysis: Any) -> list[Finding]:
        """Run the rule over *analysis* and return its findings."""
        raise NotImplementedError
