"""``repro.lint`` — determinism & simulation-invariant static analysis.

A self-contained whole-program linter for the reproduction's own
invariants — the properties a generic linter cannot know:

* all randomness flows through seeded per-trial generators (**DET001**)
  and, interprocedurally, every RNG reaching model code derives from a
  trial seed through any number of helper calls (**DET101**);
* model code reads only the simulated clock (**DET002**) and no
  clock-derived value flows into manifests, journals, datasets, or
  trial keys (**DET102**);
* nothing hash-ordered feeds scheduling or trial ordering (**DET003**);
* fault-hookable device state only mutates through registered
  :class:`~repro.faults.plan.FaultSite` hooks (**SIM001**);
* no broad ``except`` can swallow checkpoint/dataset integrity errors
  (**EXC001**) and no kernel-backed resource leaks through a helper's
  return value (**EXC101**);
* trial keys derive from the spec, never from execution order
  (**API001**);
* no function reachable from a pool worker entry point writes
  module-level mutable state (**PAR101** — the static twin of the
  runtime ``PoolStateChecker``).

The engine runs in two phases: per-file AST rules plus module-summary
extraction (cached by file SHA-256), then a whole-program taint fixpoint
over the summaries (:mod:`repro.lint.taint`) that powers the
interprocedural rules.  Run it with ``python -m repro.lint`` (see
:mod:`repro.lint.__main__`), or drive
:class:`~repro.lint.engine.LintEngine` directly from tests.  The rule
catalog, suppression policy, and baseline workflow live in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.lint.checker import Checker, FileContext, Finding, ProjectChecker
from repro.lint.engine import Baseline, LintEngine, LintReport, run_lint
from repro.lint.project import ModuleSummary, summarize
from repro.lint.rules import (
    ALL_CHECKERS,
    PROJECT_CHECKERS,
    PROJECT_RULES,
    RULES,
)
from repro.lint.taint import ProjectAnalysis, analyze

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "Checker",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleSummary",
    "PROJECT_CHECKERS",
    "PROJECT_RULES",
    "ProjectAnalysis",
    "ProjectChecker",
    "RULES",
    "analyze",
    "run_lint",
    "summarize",
]
