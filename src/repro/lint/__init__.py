"""``repro.lint`` — determinism & simulation-invariant static analysis.

A self-contained AST linter for the reproduction's own invariants — the
properties a generic linter cannot know:

* all randomness flows through seeded per-trial generators (**DET001**);
* model code reads only the simulated clock (**DET002**);
* nothing hash-ordered feeds scheduling or trial ordering (**DET003**);
* fault-hookable device state only mutates through registered
  :class:`~repro.faults.plan.FaultSite` hooks (**SIM001**);
* no broad ``except`` can swallow checkpoint/dataset integrity errors
  (**EXC001**);
* trial keys derive from the spec, never from execution order
  (**API001**).

Run it with ``python -m repro.lint`` (see :mod:`repro.lint.__main__`),
or drive :class:`~repro.lint.engine.LintEngine` directly from tests.
The rule catalog, suppression policy, and baseline workflow live in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.lint.checker import Checker, FileContext, Finding
from repro.lint.engine import Baseline, LintEngine, LintReport, run_lint
from repro.lint.rules import ALL_CHECKERS, RULES

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "Checker",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintReport",
    "RULES",
    "run_lint",
]
