"""Phase 2: the project call graph and the forward taint fixpoint.

Input: one :class:`~repro.lint.project.ModuleSummary` per file (fresh or
from the SHA-256 cache).  Output: a :class:`ProjectAnalysis` the
interprocedural rules (DET101/DET102/PAR101/EXC101) query — no ASTs are
touched here, which is what makes warm re-lints cheap.

The lattice
-----------
Taint values are subsets of a small label set; ⊥ is the empty set and
join is union, so the fixpoint is a standard monotone worklist:

``seed``
    derived from a trial seed (``spawn_trial_seed``/``derive_rng``);
``rng-blessed``
    an RNG stream whose constructor received seed-derived input;
``rng-unblessed``
    an RNG stream that provably did *not* — OS entropy (no arguments)
    or constants only, through every known call chain;
``clock``
    derived from the host clock (raw ``time.*`` or the injectable
    ``wall_clock()``/``monotonic_clock()`` helpers);
``env``
    read from ``os.environ``;
``resource``
    a kernel-backed pool resource (shared memory, rings, boards).

Three families of facts reach the fixpoint together:

* ``param_labels[fn][p]`` — labels flowing into parameter *p* from
  every resolved call site in the project;
* ``return_labels[fn]`` — labels the function's return value carries;
* ``returns_resource[fn]`` — whether the function hands its caller a
  kernel-backed resource (directly or through another helper), which is
  what EXC101 follows through call chains.

RNG blessedness is decided *optimistically at API boundaries*: a
constructor seeded from a parameter nobody in the project calls (a
public entry point) is presumed blessed — the linter flags provable
bugs, not unknown callers.  A constructor seeded only by constants, or
with no arguments at all, is unblessed everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.project import FunctionSummary, ModuleSummary, RngSite

#: Concrete lattice labels (the ``L:`` atom namespace plus the two
#: RNG verdicts assigned during the fixpoint).  ``api`` is virtual: it
#: marks values entering through a parameter of a function no project
#: code calls — an API boundary — and propagates like any other label,
#: so boundary optimism is *transitive* through helper chains.
LABELS = frozenset(
    {"seed", "rng-blessed", "rng-unblessed", "clock", "env", "resource",
     "api"}
)

#: Maximum worklist sweeps before the fixpoint is declared diverged
#: (defensive only — the lattice is finite so it always converges).
_MAX_SWEEPS = 50


@dataclass
class ProjectAnalysis:
    """Everything phase 2 derived from the module summaries."""

    #: module dotted name -> its summary (only modules with names).
    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    #: every summary, including path-keyed ones outside repro packages.
    all_summaries: list[ModuleSummary] = field(default_factory=list)
    #: function qname -> summary (the project symbol table).
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: function qname -> owning module dotted name.
    function_module: dict[str, str] = field(default_factory=dict)
    #: function qname -> lint-root-relative path of its file.
    function_rel: dict[str, str] = field(default_factory=dict)
    #: caller qname -> resolved callee qnames (the call graph).
    call_graph: dict[str, set[str]] = field(default_factory=dict)
    #: callee qname -> caller qnames.
    callers: dict[str, set[str]] = field(default_factory=dict)
    #: fn qname -> param name -> labels.
    param_labels: dict[str, dict[str, set[str]]] = field(default_factory=dict)
    #: fn qname -> labels of its return value.
    return_labels: dict[str, set[str]] = field(default_factory=dict)
    #: fn qname -> returns a kernel-backed resource to its caller.
    returns_resource: dict[str, bool] = field(default_factory=dict)
    #: (fn qname, rng atom) -> blessed verdict.
    rng_blessed: dict[tuple[str, str], bool] = field(default_factory=dict)

    # -- queries used by the rules -------------------------------------
    def resolve_callee(self, caller: str, callee: str) -> str | None:
        """Project function a call-site's dotted *callee* refers to, or
        ``None`` for externals.  Class instantiation resolves to the
        class's ``__init__`` when the project defines one."""
        if callee in self.functions:
            return callee
        init = f"{callee}.__init__"
        if init in self.functions:
            return init
        return None

    def resolve_atoms(self, fn: str, atoms: Iterable[str]) -> set[str]:
        """Concrete labels an atom set carries, in the context of *fn*."""
        labels: set[str] = set()
        summary = self.functions.get(fn)
        for atom in atoms:
            kind, _, rest = atom.partition(":")
            if kind == "L":
                labels.add(rest)
            elif kind == "P":
                labels.update(self.param_labels.get(fn, {}).get(rest, set()))
            elif kind == "R":
                target = self.resolve_callee(fn, rest)
                if target is not None:
                    labels.update(self.return_labels.get(target, set()))
            elif kind == "RNG" and summary is not None:
                if self.rng_blessed.get((fn, atom), True):
                    labels.add("rng-blessed")
                else:
                    labels.add("rng-unblessed")
        return labels

    def reachable_from(self, entry_points: Iterable[str]) -> dict[str, str]:
        """``{fn: entry}`` for every function reachable from an entry
        point over the resolved call graph (each function attributed to
        the first entry that reaches it, entries in sorted order)."""
        reached: dict[str, str] = {}
        for entry in sorted(set(entry_points)):
            if entry not in self.functions:
                continue
            stack = [entry]
            while stack:
                fn = stack.pop()
                if fn in reached:
                    continue
                reached[fn] = entry
                stack.extend(sorted(self.call_graph.get(fn, ())))
        return reached

    def module_of(self, fn: str) -> str:
        return self.function_module.get(fn, "")

    # -- import-graph queries (cache invalidation) ---------------------
    def importers_of(self, module: str) -> set[str]:
        """Modules that import *module* (direct reverse dependencies)."""
        out: set[str] = set()
        for name, summary in self.modules.items():
            for origin in summary.imports.values():
                if origin == module or origin.startswith(module + "."):
                    out.add(name)
                    break
        return out

    def transitive_importers(self, modules: Iterable[str]) -> set[str]:
        """*modules* plus every module that transitively imports one."""
        result = set(modules)
        frontier = list(result)
        while frontier:
            target = frontier.pop()
            for importer in self.importers_of(target):
                if importer not in result:
                    result.add(importer)
                    frontier.append(importer)
        return result


def _blessed(site: RngSite, fn: str, analysis: ProjectAnalysis) -> bool:
    """Whether the RNG constructed at *site* is seed-derived.

    No arguments → OS entropy → unblessed.  Otherwise blessed when any
    argument resolves to ``seed``/``rng-blessed``, or to ``api`` — the
    value entered the project through a parameter nobody calls (an API
    boundary), possibly several helper hops away, and the linter flags
    provable bugs, not unknown callers.
    """
    if not site.has_args:
        return False
    # Outside repro packages (tests, benchmarks, scripts) a pinned
    # literal seed is the deterministic idiom, not a provenance bug —
    # the trial-purity contract binds production code only.
    if not analysis.module_of(fn):
        return True
    labels = analysis.resolve_atoms(fn, site.arg_atoms)
    if labels & {"seed", "rng-blessed", "api"}:
        return True
    for atom in site.arg_atoms:
        kind, _, rest = atom.partition(":")
        if kind == "R":
            # A call we cannot resolve inside the project may well
            # return a derived seed — stay optimistic for externals.
            if analysis.resolve_callee(fn, rest) is None:
                return True
    return False


def analyze(summaries: Iterable[ModuleSummary]) -> ProjectAnalysis:
    """Stitch *summaries* together and run the taint fixpoint."""
    analysis = ProjectAnalysis()
    for summary in summaries:
        analysis.all_summaries.append(summary)
        if summary.module:
            analysis.modules[summary.module] = summary
        for qname, fn in summary.functions.items():
            analysis.functions[qname] = fn
            analysis.function_module[qname] = summary.module
            analysis.function_rel[qname] = summary.rel
            analysis.param_labels[qname] = {p: set() for p in fn.params}
            analysis.return_labels[qname] = set()
            analysis.returns_resource[qname] = False

    # -- call graph ----------------------------------------------------
    for qname, fn in analysis.functions.items():
        edges: set[str] = set()
        for call in fn.calls:
            target = analysis.resolve_callee(qname, call.callee)
            if target is not None:
                edges.add(target)
                analysis.callers.setdefault(target, set()).add(qname)
        analysis.call_graph[qname] = edges

    # Parameters of functions no project code calls are API boundaries:
    # their values arrive from outside the analyzed program, so they
    # carry the virtual ``api`` label (propagated transitively by the
    # fixpoint below — a helper called only by boundary functions is
    # itself optimistically treated).
    for qname in analysis.functions:
        if not analysis.callers.get(qname):
            for slot in analysis.param_labels[qname].values():
                slot.add("api")

    # -- fixpoint ------------------------------------------------------
    for _ in range(_MAX_SWEEPS):
        changed = False
        for qname, fn in analysis.functions.items():
            # 1. RNG site verdicts (monotone towards unblessed only
            #    through growing evidence, so recompute every sweep).
            for site in fn.rng_sites:
                verdict = _blessed(site, qname, analysis)
                key = (qname, site.atom)
                if analysis.rng_blessed.get(key) != verdict:
                    analysis.rng_blessed[key] = verdict
                    changed = True
            # 2. Return labels.
            resolved = analysis.resolve_atoms(qname, fn.returns)
            if not resolved <= analysis.return_labels[qname]:
                analysis.return_labels[qname].update(resolved)
                changed = True
            # 3. returns_resource: direct label or transitive helper.
            if not analysis.returns_resource[qname]:
                if "resource" in analysis.return_labels[qname]:
                    analysis.returns_resource[qname] = True
                    changed = True
                else:
                    for atom in fn.returns:
                        kind, _, rest = atom.partition(":")
                        if kind != "R":
                            continue
                        target = analysis.resolve_callee(qname, rest)
                        if target is not None and analysis.returns_resource.get(
                            target, False
                        ):
                            analysis.returns_resource[qname] = True
                            changed = True
                            break
            # 4. Propagate argument labels into callee parameters.
            for call in fn.calls:
                target = analysis.resolve_callee(qname, call.callee)
                if target is None:
                    continue
                callee = analysis.functions[target]
                slots = analysis.param_labels[target]
                for index, atom_list in enumerate(call.args):
                    if index >= len(callee.params):
                        break
                    labels = analysis.resolve_atoms(qname, atom_list)
                    slot = slots[callee.params[index]]
                    if not labels <= slot:
                        slot.update(labels)
                        changed = True
                for kw_name, atom_list in call.keywords.items():
                    if kw_name not in slots:
                        continue
                    labels = analysis.resolve_atoms(qname, atom_list)
                    slot = slots[kw_name]
                    if not labels <= slot:
                        slot.update(labels)
                        changed = True
        if not changed:
            break
    return analysis
