"""Monitor-guarded state fields and their owning modules.

The runtime checkers in :mod:`repro.invariants.checkers` verify
conservation laws over a handful of model state fields (queue occupancy
registers, completion records, DevTLB slot lists, the TSC counter).
Those laws are only as strong as the guarantee that the fields mutate in
exactly one place: a stray ``ticket.record = ...`` in an experiment
module would bypass both the slot-release accounting and the
exactly-once completion check.

:data:`FIELD_OWNERS` is the static half of that guarantee — the same
pattern as :data:`repro.faults.sites.SITE_OWNERS` — and the SIM002 lint
rule (:mod:`repro.lint.rules.sim002_guarded_fields`) enforces it over
the tree.  The runtime half is the
:class:`~repro.invariants.monitor.InvariantMonitor` itself, which audits
the fields' *values* at model step points.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

#: Guarded field name -> modules allowed to mutate it (assignment,
#: augmented assignment, or a mutating container-method call).  Every
#: other module may only read.
FIELD_OWNERS: Mapping[str, tuple[str, ...]] = MappingProxyType(
    {
        # WQ credit conservation: the per-queue occupancy register.
        "_outstanding": ("repro.dsa.wq",),
        # Entry storage: the WQ deque, the DevTLB sub-entry map, and the
        # PASID/IOTLB tables all use this conventional name.
        "_entries": (
            "repro.dsa.wq",
            "repro.ats.devtlb",
            "repro.ats.iotlb",
            "repro.ats.pasid",
        ),
        # Dispatch gate: entries awaiting dispatch across all queues.
        "_pending_work": ("repro.dsa.device",),
        # Exactly-once completion: only the device writes records and
        # ticket lifecycle timestamps.
        "record": ("repro.dsa.device",),
        "pending_record": ("repro.dsa.device",),
        "completion_time": ("repro.dsa.device",),
        "dispatch_time": ("repro.dsa.device",),
        "children_pending": ("repro.dsa.device",),
        # Engine occupancy: the in-flight descriptor list.
        "inflight": ("repro.dsa.engine",),
        # DevTLB slot lists inside each sub-entry.
        "slots": ("repro.ats.devtlb",),
        # Timeline monotonicity: the TSC counter itself.
        "_now": ("repro.hw.clock",),
    }
)

#: Container-method calls that mutate their receiver.  ``X.field.append(...)``
#: counts as a mutation of ``field`` when the method is listed here.
MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "appendleft",
        "clear",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)
