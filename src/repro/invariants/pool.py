"""Pool-state invariant checker for the persistent worker pool.

The supervised executor (:mod:`repro.experiments.pool`) juggles enough
mutable bookkeeping — shard queues, respawns, requeues, a poison ledger —
that a logic bug could silently drop a trial or journal one twice, which
is exactly the class of corruption the rest of this package exists to
rule out.  :class:`PoolStateChecker` is the pool's conscience: the parent
narrates every supervision step to it (worker state transitions, shard
dispatches, trial results, requeues, quarantines) and the checker raises
:class:`~repro.errors.InvariantViolation` (``invariant="pool-state"``,
exit code 6) the moment the story stops adding up:

* worker lifecycle transitions must follow the documented state machine
  (``spawning → healthy ⇄ suspect → respawning → spawning …``, see
  ``docs/parallel.md``);
* a trial index is assigned to at most one worker at a time, and never
  after it completed or was poisoned (no double execution);
* every result must come from the worker the trial is assigned to
  (exactly-once completion, the executor-layer analog of the
  completion-record checker);
* at the end of a run that claims success, every trial must be accounted
  for: completed, failed, breaker-skipped, or quarantined — never
  silently dropped.

The checker deliberately speaks in plain strings and ints so it has no
import edge back into :mod:`repro.experiments`.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import InvariantViolation

#: Worker lifecycle states, mirroring
#: ``repro.experiments.supervisor.WorkerState`` values by construction.
STATE_SPAWNING = "spawning"
STATE_HEALTHY = "healthy"
STATE_SUSPECT = "suspect"
STATE_RESPAWNING = "respawning"
STATE_RETIRED = "retired"

#: Legal worker state transitions.  ``None`` is "never seen this run":
#: a worker always enters a run by (re)arming into ``spawning``.
_VALID_TRANSITIONS: Mapping[str | None, frozenset[str]] = {
    None: frozenset({STATE_SPAWNING}),
    STATE_SPAWNING: frozenset({STATE_HEALTHY, STATE_RESPAWNING, STATE_RETIRED}),
    STATE_HEALTHY: frozenset(
        {STATE_SUSPECT, STATE_RESPAWNING, STATE_RETIRED, STATE_SPAWNING}
    ),
    STATE_SUSPECT: frozenset(
        {STATE_HEALTHY, STATE_RESPAWNING, STATE_RETIRED, STATE_SPAWNING}
    ),
    STATE_RESPAWNING: frozenset({STATE_SPAWNING, STATE_RETIRED}),
    STATE_RETIRED: frozenset(),
}


class PoolStateChecker:
    """Validates one pool run's supervision bookkeeping as it happens."""

    name = "pool-state"

    def __init__(self, total_trials: int) -> None:
        if total_trials < 0:
            raise ValueError(f"total_trials cannot be negative, got {total_trials}")
        self.total_trials = total_trials
        self._worker_states: dict[int, str] = {}
        self._assigned: dict[int, int] = {}  # trial index -> worker id
        self._completed: set[int] = set()
        self._poisoned: set[int] = set()
        self._transitions: list[dict[str, object]] = []

    # -- violation plumbing ---------------------------------------------
    def _trip(self, message: str, **snapshot: object) -> None:
        raise InvariantViolation(
            f"pool-state: {message}",
            invariant=self.name,
            snapshot={
                "assigned": len(self._assigned),
                "completed": len(self._completed),
                "poisoned": len(self._poisoned),
                "total_trials": self.total_trials,
                **snapshot,
            },
            events=tuple(self._transitions[-10:]),
        )

    # -- worker lifecycle -----------------------------------------------
    def note_worker(self, worker_id: int, state: str, reason: str = "") -> None:
        """Record (and validate) one worker state transition."""
        previous = self._worker_states.get(worker_id)
        if state not in _VALID_TRANSITIONS:
            self._trip(
                f"worker {worker_id} entered unknown state {state!r}",
                worker=worker_id,
            )
        if previous == state:
            return  # idempotent re-assertion, not a transition
        if state not in _VALID_TRANSITIONS[previous]:
            self._trip(
                f"worker {worker_id} made illegal transition "
                f"{previous or 'unseen'} → {state} ({reason or 'no reason'})",
                worker=worker_id,
            )
        self._worker_states[worker_id] = state
        self._transitions.append(
            {
                "worker": worker_id,
                "from": previous or "unseen",
                "to": state,
                "reason": reason,
            }
        )

    def worker_state(self, worker_id: int) -> str | None:
        """The last recorded state of *worker_id* (``None`` if unseen)."""
        return self._worker_states.get(worker_id)

    # -- trial custody --------------------------------------------------
    def note_dispatch(self, worker_id: int, indices: "list[int] | tuple[int, ...]") -> None:
        """A shard of trial *indices* was handed to *worker_id*."""
        for index in indices:
            if index < 0 or index >= self.total_trials:
                self._trip(
                    f"dispatched out-of-range trial index {index}",
                    worker=worker_id,
                )
            if index in self._completed:
                self._trip(
                    f"trial {index} dispatched to worker {worker_id} after "
                    "already completing",
                    worker=worker_id,
                    trial=index,
                )
            if index in self._poisoned:
                self._trip(
                    f"poisoned trial {index} dispatched to worker {worker_id}",
                    worker=worker_id,
                    trial=index,
                )
            holder = self._assigned.get(index)
            if holder is not None and holder != worker_id:
                self._trip(
                    f"trial {index} double-assigned: worker {holder} still "
                    f"holds it, dispatched to worker {worker_id}",
                    worker=worker_id,
                    trial=index,
                )
            self._assigned[index] = worker_id

    def note_result(self, index: int, worker_id: int) -> None:
        """Worker *worker_id* reported a (journaled) result for *index*."""
        holder = self._assigned.get(index)
        if holder is None:
            self._trip(
                f"worker {worker_id} reported trial {index} which is not "
                "assigned to any worker",
                worker=worker_id,
                trial=index,
            )
        if holder != worker_id:
            self._trip(
                f"worker {worker_id} reported trial {index} assigned to "
                f"worker {holder}",
                worker=worker_id,
                trial=index,
            )
        if index in self._completed:
            self._trip(
                f"trial {index} completed twice (second report from "
                f"worker {worker_id})",
                worker=worker_id,
                trial=index,
            )
        del self._assigned[index]
        self._completed.add(index)

    def note_unassign(self, indices: "list[int] | tuple[int, ...]") -> None:
        """Trials returned to the queue (requeue) or released unrun
        (shard finished with stop-/breaker-skips)."""
        for index in indices:
            self._assigned.pop(index, None)

    def note_poison(self, index: int) -> None:
        """Trial *index* was quarantined to the poison list."""
        if index in self._completed:
            self._trip(
                f"trial {index} poisoned after completing",
                trial=index,
            )
        if index in self._poisoned:
            self._trip(f"trial {index} poisoned twice", trial=index)
        self._assigned.pop(index, None)
        self._poisoned.add(index)

    @property
    def poisoned(self) -> frozenset[int]:
        """Indices quarantined so far."""
        return frozenset(self._poisoned)

    # -- end-of-run audit -----------------------------------------------
    def final_audit(self, accounted: int, skipped: int) -> None:
        """Completeness check for a run claiming a terminal artifact.

        *accounted* is journaled trials (successes + contained failures,
        resumed included); *skipped* is breaker-gated skips.  Together
        with the poison list they must cover the plan exactly — anything
        else means the pool silently dropped or double-counted a trial.
        Only terminal statuses call this; an interrupted/deadline run is
        legitimately partial.
        """
        if self._assigned:
            self._trip(
                f"run ended with {len(self._assigned)} trial(s) still "
                f"assigned to workers: {sorted(self._assigned)[:5]}",
            )
        expected = self.total_trials
        covered = accounted + skipped + len(self._poisoned)
        if covered != expected:
            self._trip(
                f"trial accounting mismatch: {accounted} journaled + "
                f"{skipped} breaker-skipped + {len(self._poisoned)} "
                f"poisoned = {covered}, plan has {expected}",
                accounted=accounted,
                skipped=skipped,
            )
