"""Service-state invariant checker for the always-on session service.

The service (:mod:`repro.service`) juggles even more mutable
bookkeeping than the worker pool: a token bucket, per-tenant budgets, a
bounded admission queue, lane custody, and five-state session
lifecycles — any of which could silently lose or double-count a session
under load.  :class:`ServiceStateChecker` is the service's conscience:
every admission decision, state transition, lane hand-off, and budget
movement is narrated to it, and it raises
:class:`~repro.errors.InvariantViolation` (``invariant="service-state"``,
exit code 6) the moment the story stops adding up:

* session lifecycle transitions must follow the documented machine
  (``offered → admitted → calibrating → active → draining → closed``,
  with ``closed`` reachable from any live state — see
  ``docs/service.md``);
* lane custody is exclusive: a lane is held by at most one session, a
  session holds at most one lane, and releases come from the holder;
* the token bucket and every tenant budget stay non-negative, and no
  tenant exceeds its in-flight cap (the fairness audit);
* queue depth respects its bound (backpressure actually bounds);
* a shed victim carries the lowest priority among sheddable sessions
  at shed time (the controller sheds fairly, never arbitrarily);
* the end-of-run accounting balances exactly:
  ``offered + resumed == rejected + completed + shed + failed +
  quarantined + checkpointed`` with nothing in flight — a session can
  end in exactly one way, and every session ends.

Like :class:`~repro.invariants.pool.PoolStateChecker`, this checker
speaks plain strings/ints/floats only, so it has no import edge back
into the package it audits.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import InvariantViolation

#: Session lifecycle states, mirroring ``repro.service.session`` values
#: by construction.
STATE_OFFERED = "offered"
STATE_ADMITTED = "admitted"
STATE_CALIBRATING = "calibrating"
STATE_ACTIVE = "active"
STATE_DRAINING = "draining"
STATE_CLOSED = "closed"

#: Legal session transitions.  ``None`` is "never seen": every session
#: enters the story by being offered.  ``closed`` is reachable from any
#: live state because shed/kill/quarantine can strike at any moment;
#: ``rejected`` sessions go ``offered → closed`` directly.
_VALID_TRANSITIONS: Mapping[str | None, frozenset[str]] = {
    None: frozenset({STATE_OFFERED}),
    STATE_OFFERED: frozenset({STATE_ADMITTED, STATE_CLOSED}),
    STATE_ADMITTED: frozenset(
        {STATE_CALIBRATING, STATE_DRAINING, STATE_CLOSED}
    ),
    STATE_CALIBRATING: frozenset(
        {STATE_ACTIVE, STATE_DRAINING, STATE_CLOSED}
    ),
    STATE_ACTIVE: frozenset(
        {STATE_CALIBRATING, STATE_DRAINING, STATE_CLOSED}
    ),
    STATE_DRAINING: frozenset({STATE_CLOSED}),
    STATE_CLOSED: frozenset(),
}

#: The closed set of terminal exit paths (the accounting alphabet).
EXIT_PATHS = frozenset(
    {"completed", "rejected", "shed", "failed", "quarantined",
     "checkpointed"}
)


class ServiceStateChecker:
    """Validates one service run's bookkeeping as it happens."""

    name = "service-state"

    def __init__(self) -> None:
        self._session_states: dict[str, str] = {}
        self._exits: dict[str, str] = {}
        self._lane_holder: dict[int, str] = {}  # lane id -> session id
        self._session_lane: dict[str, int] = {}  # session id -> lane id
        self._transitions: list[dict[str, object]] = []
        self.lane_handoffs = 0

    # -- violation plumbing ---------------------------------------------
    def _trip(self, message: str, **snapshot: object) -> None:
        raise InvariantViolation(
            f"service-state: {message}",
            invariant=self.name,
            snapshot={
                "sessions_seen": len(self._session_states),
                "exits": len(self._exits),
                "lanes_held": len(self._lane_holder),
                **snapshot,
            },
            events=tuple(self._transitions[-10:]),
        )

    def _record(self, **event: object) -> None:
        self._transitions.append(event)

    # -- session lifecycle ----------------------------------------------
    def note_state(self, session_id: str, state: str) -> None:
        """Record (and validate) one session state transition."""
        previous = self._session_states.get(session_id)
        if state not in _VALID_TRANSITIONS:
            self._trip(
                f"session {session_id} entered unknown state {state!r}",
                session=session_id,
            )
        if previous == state:
            return  # idempotent re-assertion, not a transition
        if state not in _VALID_TRANSITIONS[previous]:
            self._trip(
                f"session {session_id} made illegal transition "
                f"{previous or 'unseen'} → {state}",
                session=session_id,
            )
        self._session_states[session_id] = state
        self._record(session=session_id, to=state)

    def session_state(self, session_id: str) -> str | None:
        """Last recorded state of *session_id* (``None`` if unseen)."""
        return self._session_states.get(session_id)

    def note_exit(self, session_id: str, exit_path: str) -> None:
        """Record *session_id*'s terminal exit (exactly one per session)."""
        if exit_path not in EXIT_PATHS:
            self._trip(
                f"session {session_id} exited via unknown path"
                f" {exit_path!r}",
                session=session_id,
            )
        if session_id in self._exits:
            self._trip(
                f"session {session_id} exited twice"
                f" ({self._exits[session_id]}, then {exit_path})"
                " — double-counted",
                session=session_id,
            )
        if self._session_states.get(session_id) != STATE_CLOSED:
            self._trip(
                f"session {session_id} exited via {exit_path} while still"
                f" {self._session_states.get(session_id) or 'unseen'}",
                session=session_id,
            )
        if session_id in self._session_lane:
            self._trip(
                f"session {session_id} exited holding lane"
                f" {self._session_lane[session_id]}",
                session=session_id,
            )
        self._exits[session_id] = exit_path
        self._record(session=session_id, exit=exit_path)

    # -- lane custody ---------------------------------------------------
    def note_lane_acquired(self, session_id: str, lane_id: int) -> None:
        holder = self._lane_holder.get(lane_id)
        if holder is not None:
            self._trip(
                f"lane {lane_id} handed to session {session_id} while"
                f" session {holder} still holds it",
                lane=lane_id,
                session=session_id,
            )
        held = self._session_lane.get(session_id)
        if held is not None:
            self._trip(
                f"session {session_id} acquired lane {lane_id} while"
                f" already holding lane {held}",
                lane=lane_id,
                session=session_id,
            )
        self._lane_holder[lane_id] = session_id
        self._session_lane[session_id] = lane_id
        self.lane_handoffs += 1
        self._record(session=session_id, lane=lane_id, custody="acquired")

    def note_lane_released(self, session_id: str, lane_id: int) -> None:
        holder = self._lane_holder.get(lane_id)
        if holder != session_id:
            self._trip(
                f"session {session_id} released lane {lane_id} held by"
                f" {holder or 'nobody'}",
                lane=lane_id,
                session=session_id,
            )
        del self._lane_holder[lane_id]
        del self._session_lane[session_id]
        self._record(session=session_id, lane=lane_id, custody="released")

    def note_lane_rebuilt(self, old_lane_id: int, new_lane_id: int) -> None:
        """A revoked lane was quarantined and replaced."""
        if old_lane_id in self._lane_holder:
            # Revocation with a holder is legal — the holder's next
            # round raises — but custody must already be torn down by
            # the time the replacement serves anyone; just narrate.
            self._record(
                lane=old_lane_id, custody="revoked-held",
                holder=self._lane_holder[old_lane_id],
            )
        self._record(lane=old_lane_id, rebuilt_as=new_lane_id)

    # -- budgets, queue, fairness ---------------------------------------
    def note_tokens(self, tokens: float) -> None:
        if tokens < 0:
            self._trip(f"token bucket went negative: {tokens}")

    def note_tenant(
        self,
        tenant: str,
        remaining_cycles: int,
        in_flight: int,
        max_in_flight: int,
    ) -> None:
        if remaining_cycles < 0:
            self._trip(
                f"tenant {tenant} device-cycle budget went negative:"
                f" {remaining_cycles}",
                tenant=tenant,
            )
        if in_flight < 0:
            self._trip(
                f"tenant {tenant} in-flight count went negative:"
                f" {in_flight}",
                tenant=tenant,
            )
        if in_flight > max_in_flight:
            self._trip(
                f"tenant {tenant} exceeded its in-flight cap:"
                f" {in_flight} > {max_in_flight} (isolation breached)",
                tenant=tenant,
            )

    def note_queue(self, depth: int, capacity: int) -> None:
        if depth < 0 or depth > capacity:
            self._trip(
                f"admission queue depth {depth} outside [0, {capacity}]"
            )

    def note_shed(
        self, session_id: str, priority: int, floor_priority: int
    ) -> None:
        """A shed decision: the victim must carry the floor priority."""
        if priority > floor_priority:
            self._trip(
                f"shed session {session_id} (priority {priority}) while a"
                f" lower-priority session (priority {floor_priority}) was"
                " sheddable — unfair shed",
                session=session_id,
            )
        self._record(session=session_id, shed_at_priority=priority)

    # -- end-of-run audit -----------------------------------------------
    def final_audit(
        self,
        offered: int,
        resumed: int,
        rejected: int,
        completed: int,
        shed: int,
        failed: int,
        quarantined: int,
        checkpointed: int,
        in_flight: int,
    ) -> None:
        """The conservation law for a run claiming a terminal report."""
        if in_flight != 0:
            self._trip(
                f"run ended with {in_flight} session(s) still in flight"
            )
        if self._lane_holder:
            held = dict(sorted(self._lane_holder.items())[:5])
            self._trip(f"run ended with lanes still held: {held}")
        live = [
            sid
            for sid, state in sorted(self._session_states.items())
            if state != STATE_CLOSED
        ]
        if live:
            self._trip(
                f"run ended with {len(live)} session(s) not closed:"
                f" {live[:5]}"
            )
        terminal = (
            rejected + completed + shed + failed + quarantined + checkpointed
        )
        if offered + resumed != terminal:
            self._trip(
                "session accounting mismatch:"
                f" offered {offered} + resumed {resumed} !="
                f" rejected {rejected} + completed {completed} +"
                f" shed {shed} + failed {failed} +"
                f" quarantined {quarantined} +"
                f" checkpointed {checkpointed} (= {terminal})",
                offered=offered,
                resumed=resumed,
            )
        exits = len(self._exits)
        if exits != terminal:
            self._trip(
                f"terminal exits narrated ({exits}) disagree with the"
                f" accounting total ({terminal}) — a session was lost or"
                " double-counted",
            )
