"""Runtime invariant monitoring for the DSA model.

The model is only evidence if it cannot *silently* corrupt itself: a
leaked work-queue credit or a double-written completion record would
skew every latency distribution downstream without failing a single
assertion.  This package turns the architectural conservation laws into
machine-checked runtime invariants:

* :class:`InvariantMonitor` — pluggable checkers at model step points,
  ``strict`` or ``sampling`` audit cadence
  (:mod:`repro.invariants.monitor`);
* the checker catalog — WQ credits, exactly-once completion, DevTLB
  consistency, arbiter fairness, timeline monotonicity
  (:mod:`repro.invariants.checkers`);
* the guarded-field ownership map backing the SIM002 lint rule
  (:mod:`repro.invariants.fields`);
* the seeded randomized soak driver with workload shrinking
  (:mod:`repro.invariants.soak`, ``python -m repro.invariants.soak``).

See ``docs/invariants.md`` for the catalog and the replay workflow.
"""

from repro.errors import InvariantViolation
from repro.invariants.checkers import (
    ArbiterFairnessChecker,
    CompletionChecker,
    DevTlbChecker,
    TimelineChecker,
    WqCreditChecker,
    default_checkers,
)
from repro.invariants.fields import FIELD_OWNERS, MUTATING_METHODS
from repro.invariants.monitor import (
    InvariantChecker,
    InvariantMonitor,
    MonitorMode,
    coerce_mode,
)
from repro.invariants.pool import PoolStateChecker
from repro.invariants.service import ServiceStateChecker

__all__ = [
    "ArbiterFairnessChecker",
    "CompletionChecker",
    "DevTlbChecker",
    "FIELD_OWNERS",
    "InvariantChecker",
    "InvariantMonitor",
    "InvariantViolation",
    "MonitorMode",
    "MUTATING_METHODS",
    "PoolStateChecker",
    "ServiceStateChecker",
    "TimelineChecker",
    "WqCreditChecker",
    "coerce_mode",
    "default_checkers",
]
