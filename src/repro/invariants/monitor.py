"""The runtime invariant monitor.

:class:`InvariantMonitor` hangs off the model the same way
:class:`~repro.faults.injector.FaultInjector` does — duck-typed
attachment, no imports of the model packages — and receives a
:meth:`~InvariantMonitor.note` call at each model step point (submit,
dispatch, complete, drain, DevTLB traffic, translation).  Registered
checkers observe every event with O(1) bookkeeping; the more expensive
full-state audits run at every event in ``strict`` mode and every
``sample_every``-th event in ``sampling`` mode.

A failed check raises :class:`~repro.errors.InvariantViolation` carrying
the run seed, a bounded state snapshot, and the recent event window —
enough to replay the trip as a one-command repro (see
``docs/invariants.md``).  The monitor is strictly read-only: it never
advances the clock, consumes RNG draws, or mutates model state, so an
attached monitor cannot perturb the simulation it is checking.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Iterable

from repro.errors import ConfigurationError, InvariantViolation


class MonitorMode(enum.Enum):
    """How often the full-state audits run."""

    #: Audit at every step point (soak and chaos runs).
    STRICT = "strict"
    #: Audit every ``sample_every``-th event (cheap enough to leave on).
    SAMPLING = "sampling"


def coerce_mode(mode: "MonitorMode | str") -> MonitorMode:
    """Accept a :class:`MonitorMode`, its value, or the ``sample`` alias."""
    if isinstance(mode, MonitorMode):
        return mode
    name = str(mode).strip().lower()
    if name == "sample":
        name = MonitorMode.SAMPLING.value
    try:
        return MonitorMode(name)
    except ValueError:
        raise ConfigurationError(
            f"unknown invariant-monitor mode {mode!r}; expected one of"
            f" {[m.value for m in MonitorMode]} (or 'sample')"
        ) from None


class InvariantChecker:
    """Base class for pluggable invariant checkers.

    ``kinds`` scopes :meth:`observe` to matching events (``None`` means
    every event).  :meth:`observe` must stay O(1) — it runs on every
    matching step point in both modes; :meth:`audit` may scan model
    state and runs at the monitor's audit cadence.  Both report problems
    via :meth:`InvariantMonitor.fail`, which raises.
    """

    #: Stable checker name, used as ``InvariantViolation.invariant``.
    name: str = ""
    #: Event kinds this checker observes (``None`` = all).
    kinds: "frozenset[str] | None" = None

    def observe(
        self,
        monitor: "InvariantMonitor",
        kind: str,
        timestamp: int,
        context: "dict[str, Any]",
        payload: Any,
    ) -> None:
        """O(1) per-event bookkeeping; runs on every matching event."""

    def audit(self, monitor: "InvariantMonitor") -> None:
        """Full-state scan; runs at the monitor's audit cadence."""


class InvariantMonitor:
    """Checks architectural conservation laws at model step points.

    Parameters
    ----------
    mode:
        ``strict`` (audit every event) or ``sampling``.
    sample_every:
        Audit cadence in ``sampling`` mode.
    event_window:
        Recent events retained for violation reports.
    seed:
        The run seed carried into violations (filled in by
        :meth:`attach_system` when the system exposes one).
    repro_hint:
        One-command reproduction string carried into violations (set by
        the soak driver).
    checkers:
        Checker instances; defaults to the full catalog from
        :func:`repro.invariants.checkers.default_checkers`.
    starvation_limit:
        Consecutive arbiter pass-overs tolerated before the fairness
        checker trips (only used when *checkers* is defaulted).
    """

    def __init__(
        self,
        mode: "MonitorMode | str" = MonitorMode.STRICT,
        sample_every: int = 64,
        event_window: int = 64,
        seed: "int | None" = None,
        repro_hint: str = "",
        checkers: "Iterable[InvariantChecker] | None" = None,
        starvation_limit: int = 50_000,
    ) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if event_window < 1:
            raise ConfigurationError(
                f"event_window must be >= 1, got {event_window}"
            )
        self.mode = coerce_mode(mode)
        self.sample_every = sample_every
        self.seed = seed
        self.repro_hint = repro_hint
        if checkers is None:
            # Local import: checkers read model constants (the DevTLB
            # sub-entry count), and keeping the import here lets the
            # monitor core stay free of model dependencies for callers
            # that supply their own checkers.
            from repro.invariants.checkers import default_checkers

            checkers = default_checkers(starvation_limit=starvation_limit)
        self.checkers: tuple[InvariantChecker, ...] = tuple(checkers)
        self._events: "deque[tuple[int, str, int, tuple[tuple[str, Any], ...]]]"
        self._events = deque(maxlen=event_window)
        self._by_kind: dict[str, tuple[InvariantChecker, ...]] = {}
        self._always: tuple[InvariantChecker, ...] = tuple(
            checker for checker in self.checkers if checker.kinds is None
        )
        self._device: Any = None
        self._clock: Any = None
        self._clock_floor = 0
        self._last_timestamp = 0
        self.events_seen = 0
        self.audits_run = 0
        self.violations = 0

    # ------------------------------------------------------------------
    # Attachment (duck-typed: no imports of the model packages)
    # ------------------------------------------------------------------
    def attach_device(self, device: Any) -> None:
        """Hook a :class:`~repro.dsa.device.DsaDevice` and its satellites.

        Sets the ``invariant_monitor`` attribute on the device, its
        DevTLB, its translation agent, and the shared clock.  One
        monitor per device: the checkers' ledgers assume a single event
        stream.
        """
        if self._device is not None and self._device is not device:
            raise ConfigurationError(
                "this InvariantMonitor is already attached to a device;"
                " build a fresh monitor per system"
            )
        device.invariant_monitor = self
        device.devtlb.invariant_monitor = self
        device.agent.invariant_monitor = self
        device.clock.invariant_monitor = self
        self._device = device
        self._clock = device.clock
        self._clock_floor = device.clock.now

    def attach_system(self, system: Any) -> None:
        """Hook an entire :class:`~repro.virt.system.CloudSystem`."""
        self.attach_device(system.device)
        if self.seed is None:
            self.seed = getattr(system, "seed", None)
        system.invariant_monitor = self

    @property
    def device(self) -> Any:
        """The attached device (``None`` before attachment)."""
        return self._device

    @property
    def clock(self) -> Any:
        """The attached shared clock (``None`` before attachment)."""
        return self._clock

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def note(
        self,
        kind: str,
        timestamp: "int | None" = None,
        payload: Any = None,
        **context: Any,
    ) -> None:
        """Record one model step event and run the registered checkers.

        *timestamp* is simulated cycles; ``None`` reuses the latest seen
        (components like the DevTLB have no clock reference).  *payload*
        carries a transient object for checkers (the completion ticket,
        the arbiter's ready snapshot) and is **not** retained in the
        event window — only scalar *context* is.
        """
        self.events_seen += 1
        if timestamp is None:
            ts = self._last_timestamp
        else:
            ts = int(timestamp)
            if ts > self._last_timestamp:
                self._last_timestamp = ts
        context = {
            name: value for name, value in context.items() if value is not None
        }
        self._events.append(
            (self.events_seen, kind, ts, tuple(sorted(context.items())))
        )
        for checker in self._interested(kind):
            checker.observe(self, kind, ts, context, payload)
        if (
            self.mode is MonitorMode.STRICT
            or self.events_seen % self.sample_every == 0
        ):
            self._audit()

    def observe_clock(self, now: int) -> None:
        """Clock hook: assert the shared TSC never moves backwards."""
        if now < self._clock_floor:
            self.fail(
                "timeline",
                f"shared TSC moved backwards: {now} < {self._clock_floor}",
            )
        self._clock_floor = now

    def _interested(self, kind: str) -> tuple[InvariantChecker, ...]:
        cached = self._by_kind.get(kind)
        if cached is None:
            cached = tuple(
                checker
                for checker in self.checkers
                if checker.kinds is None or kind in checker.kinds
            )
            self._by_kind[kind] = cached
        return cached

    def _audit(self) -> None:
        self.audits_run += 1
        for checker in self.checkers:
            checker.audit(self)

    def check_all(self) -> None:
        """Run every checker's full audit (the end-of-run sweep)."""
        self._audit()

    # ------------------------------------------------------------------
    # Violation reporting
    # ------------------------------------------------------------------
    def fail(self, invariant: str, message: str) -> None:
        """Raise an :class:`~repro.errors.InvariantViolation` for *invariant*."""
        raise self.violation(invariant, message)

    def violation(self, invariant: str, message: str) -> InvariantViolation:
        """Build (without raising) the structured violation for *invariant*."""
        self.violations += 1
        return InvariantViolation(
            message=f"{invariant}: {message}",
            invariant=invariant,
            timestamp=self._last_timestamp,
            seed=self.seed,
            snapshot=self.snapshot(),
            events=self.event_window(),
            repro=self.repro_hint,
        )

    def event_window(self) -> "tuple[dict[str, Any], ...]":
        """The retained events as dicts, oldest first."""
        return tuple(
            {"seq": seq, "kind": kind, "t": ts, **dict(ctx)}
            for seq, kind, ts, ctx in self._events
        )

    def snapshot(self) -> "dict[str, Any]":
        """A bounded picture of the attached model's state."""
        snap: dict[str, Any] = {
            "monitor.events_seen": self.events_seen,
            "monitor.audits_run": self.audits_run,
            "monitor.mode": self.mode.value,
        }
        device = self._device
        if device is None:
            return snap
        if self._clock is not None:
            snap["clock.now"] = self._clock.now
        snap["device.time"] = device.time
        stats = getattr(device, "stats", None)
        if stats is not None:
            snap["device.submissions_accepted"] = stats.submissions_accepted
            snap["device.descriptors_completed"] = stats.descriptors_completed
        for wq in device.queue_space.queues()[:8]:
            snap[f"wq{wq.wq_id}.occupancy"] = wq.occupancy
            snap[f"wq{wq.wq_id}.queued"] = wq.queued
            snap[f"wq{wq.wq_id}.size"] = wq.config.size
        snap["devtlb.occupancy"] = device.devtlb.occupancy
        for engine_id in sorted(device.engines)[:8]:
            snap[f"engine{engine_id}.inflight"] = len(
                device.engines[engine_id].inflight
            )
        return snap
