"""The invariant checker catalog.

Each checker encodes one architectural conservation law the DSA model
must uphold (the laws come from the paper's reverse engineering plus
Kuper et al.'s quantitative DSA analysis):

==================  ====================================================
``wq-credits``      WQ slot credits are conserved: occupancy moves only
                    by accepted submissions, completions, and drain
                    aborts, and stays within configured bounds.
``completion``      Completion records are written exactly once per
                    ticket and the ticket lifecycle is ordered
                    (enqueue <= dispatch <= completion).
``devtlb``          Each engine owns at most five sub-entries, no
                    sub-entry exceeds its associativity, partitioned
                    slots carry their partition's PASID, and
                    translations are only requested for PASIDs the
                    PASID table currently binds.
``arbiter``         Under ``WQ_PRIORITY``, no batch descriptor beats a
                    ready work-queue descriptor and no lower-priority
                    queue beats a ready higher-priority one; a bounded
                    pass-over count catches starvation under any policy.
``timeline``        The shared TSC never moves backwards, device replay
                    time never exceeds it, and no event is stamped in
                    the clock's future.
==================  ====================================================

See ``docs/invariants.md`` for the catalog with failure examples.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.ats.devtlb import SUB_ENTRIES_PER_ENGINE
from repro.errors import QueueConfigurationError
from repro.invariants.monitor import InvariantChecker, InvariantMonitor


class WqCreditChecker(InvariantChecker):
    """WQ credit conservation and occupancy bounds.

    Maintains a monitor-side ledger of expected occupancy per queue from
    the event stream (accepted submit ``+1``, completion ``-1``, drain
    ``-aborted``) and compares it against the actual occupancy register
    at audit time — a leaked credit (completion without a slot release)
    or a double release shows up as a ledger divergence even though each
    individual mutation looked locally sane.
    """

    name = "wq-credits"
    kinds = frozenset({"submit", "complete", "drain"})

    def __init__(self) -> None:
        self._ledger: dict[int, int] = {}

    def _queue(self, monitor: InvariantMonitor, wq_id: int) -> Any:
        device = monitor.device
        if device is None:
            return None
        try:
            return device.queue_space.get(wq_id)
        except QueueConfigurationError:
            # An event for a queue this device does not configure is not
            # the monitor's crash to have; the audit simply has no
            # register to compare against.
            return None

    def observe(
        self,
        monitor: InvariantMonitor,
        kind: str,
        timestamp: int,
        context: dict[str, Any],
        payload: Any,
    ) -> None:
        wq_id = context.get("wq_id")
        if wq_id is None:
            return
        expected = self._ledger.get(wq_id)
        if expected is None:
            # First sighting: adopt the post-event occupancy so a monitor
            # attached mid-run still converges to a usable ledger.
            queue = self._queue(monitor, wq_id)
            if queue is not None:
                self._ledger[wq_id] = queue.occupancy
            return
        if kind == "submit":
            if context.get("accepted"):
                expected += 1
        elif kind == "complete":
            expected -= 1
        elif kind == "drain":
            expected -= int(context.get("aborted", 0))
        if expected < 0:
            monitor.fail(
                self.name,
                f"WQ {wq_id}: more slot releases than accepted submissions"
                f" (ledger went to {expected})",
            )
        self._ledger[wq_id] = expected

    def audit(self, monitor: InvariantMonitor) -> None:
        device = monitor.device
        if device is None:
            return
        space = device.queue_space
        if space.entries_configured > space.total_entries:
            monitor.fail(
                self.name,
                f"configured WQ sizes ({space.entries_configured}) exceed"
                f" hardware entry storage ({space.total_entries})",
            )
        for queue in space.queues():
            occupancy = queue.occupancy
            if not 0 <= occupancy <= queue.config.size:
                monitor.fail(
                    self.name,
                    f"WQ {queue.wq_id}: occupancy {occupancy} outside"
                    f" [0, {queue.config.size}]",
                )
            if queue.queued > occupancy:
                monitor.fail(
                    self.name,
                    f"WQ {queue.wq_id}: {queue.queued} queued entries but"
                    f" only {occupancy} slots held",
                )
            expected = self._ledger.get(queue.wq_id)
            if expected is not None and expected != occupancy:
                leaked = occupancy - expected
                monitor.fail(
                    self.name,
                    f"WQ {queue.wq_id}: credit leak — occupancy register"
                    f" reads {occupancy} but the event ledger expects"
                    f" {expected} ({leaked:+d} credit)",
                )


class CompletionChecker(InvariantChecker):
    """Exactly-once completion-record writes and ticket lifecycle order."""

    name = "completion"
    kinds = frozenset({"complete"})

    def __init__(self, history: int = 8192) -> None:
        self._recent: deque[int] = deque(maxlen=history)
        self._recent_set: set[int] = set()

    def observe(
        self,
        monitor: InvariantMonitor,
        kind: str,
        timestamp: int,
        context: dict[str, Any],
        payload: Any,
    ) -> None:
        ticket = payload
        if ticket is None:
            return
        ticket_id = getattr(ticket, "ticket_id", -1)
        if ticket_id >= 0:
            if ticket_id in self._recent_set:
                monitor.fail(
                    self.name,
                    f"completion record written twice for ticket"
                    f" {ticket_id} (WQ {ticket.wq_id})",
                )
            if (
                self._recent.maxlen is not None
                and len(self._recent) == self._recent.maxlen
            ):
                self._recent_set.discard(self._recent.popleft())
            self._recent.append(ticket_id)
            self._recent_set.add(ticket_id)
        if ticket.record is None:
            monitor.fail(
                self.name,
                f"ticket {ticket_id} reported complete without a"
                " completion record",
            )
        dispatch = ticket.dispatch_time
        completion = ticket.completion_time
        if dispatch is not None and dispatch < ticket.enqueue_time:
            monitor.fail(
                self.name,
                f"ticket {ticket_id}: dispatched at {dispatch} before its"
                f" enqueue at {ticket.enqueue_time}",
            )
        if (
            completion is not None
            and dispatch is not None
            and completion < dispatch
        ):
            monitor.fail(
                self.name,
                f"ticket {ticket_id}: completed at {completion} before its"
                f" dispatch at {dispatch}",
            )

    def audit(self, monitor: InvariantMonitor) -> None:
        device = monitor.device
        if device is None:
            return
        for engine_id in sorted(device.engines):
            for item in device.engines[engine_id].inflight:
                token = item.token
                if token is not None and getattr(token, "record", None) is not None:
                    monitor.fail(
                        self.name,
                        f"engine {engine_id}: in-flight descriptor already"
                        " carries a completion record (written before"
                        " retirement)",
                    )


class DevTlbChecker(InvariantChecker):
    """DevTLB occupancy/eviction consistency and PASID-table agreement.

    The PASID check runs at *translation time* only: a stale entry for a
    destroyed process is architecturally expected (the device offers no
    PASID-selective DevTLB invalidation — see
    :meth:`repro.virt.system.CloudSystem.destroy_process`), but a fill
    or translation request for a PASID the table does not bind means the
    model fabricated traffic for a dead process.
    """

    name = "devtlb"
    kinds = frozenset({"devtlb", "translate"})

    def observe(
        self,
        monitor: InvariantMonitor,
        kind: str,
        timestamp: int,
        context: dict[str, Any],
        payload: Any,
    ) -> None:
        pasid = context.get("pasid")
        device = monitor.device
        if pasid is None or device is None:
            return
        if not device.pasid_table.is_bound(pasid):
            monitor.fail(
                self.name,
                f"translation traffic for PASID {pasid}, which the PASID"
                " table does not bind (PASID-table disagreement)",
            )

    def audit(self, monitor: InvariantMonitor) -> None:
        device = monitor.device
        if device is None:
            return
        devtlb = device.devtlb
        limit = devtlb.config.slots_per_subentry
        fields_per_engine: dict[int, set[str]] = {}
        for engine_id, field_name, key_pasid, slot_pasids in devtlb.census():
            if len(slot_pasids) > limit:
                monitor.fail(
                    self.name,
                    f"engine {engine_id} sub-entry {field_name!r} holds"
                    f" {len(slot_pasids)} slots (associativity {limit}):"
                    " eviction failed to run",
                )
            fields_per_engine.setdefault(engine_id, set()).add(field_name)
            if devtlb.config.pasid_partitioned and key_pasid is not None:
                for slot_pasid in slot_pasids:
                    if slot_pasid != key_pasid:
                        monitor.fail(
                            self.name,
                            f"partitioned sub-entry ({engine_id},"
                            f" {field_name!r}, PASID {key_pasid}) caches a"
                            f" slot tagged PASID {slot_pasid}",
                        )
        for engine_id, fields in fields_per_engine.items():
            if len(fields) > SUB_ENTRIES_PER_ENGINE:
                monitor.fail(
                    self.name,
                    f"engine {engine_id} owns {len(fields)} sub-entry field"
                    f" types; the device has {SUB_ENTRIES_PER_ENGINE}",
                )
        stats = devtlb.stats
        if stats.hits > stats.alloc_requests or stats.no_alloc > stats.alloc_requests:
            monitor.fail(
                self.name,
                "DevTLB Perfmon counters inconsistent: hits"
                f" {stats.hits} / no_alloc {stats.no_alloc} exceed"
                f" alloc_requests {stats.alloc_requests}",
            )


class ArbiterFairnessChecker(InvariantChecker):
    """Arbiter fairness: priority order and a bounded starvation window.

    Dispatch events carry a snapshot of every ready queue head at choice
    time.  Under the real ``WQ_PRIORITY`` policy a dispatched batch
    descriptor (or a lower-priority queue) while a ready work-queue head
    waited is an immediate priority inversion; under any policy, a queue
    head passed over more than *starvation_limit* consecutive dispatches
    trips the starvation bound.
    """

    name = "arbiter"
    kinds = frozenset({"dispatch"})

    def __init__(self, starvation_limit: int = 50_000) -> None:
        self.starvation_limit = starvation_limit
        self._passed_over: dict[int, int] = {}

    def observe(
        self,
        monitor: InvariantMonitor,
        kind: str,
        timestamp: int,
        context: dict[str, Any],
        payload: Any,
    ) -> None:
        snapshot = payload or ()
        chosen_wq = context.get("wq_id")
        if context.get("policy") == "wq-priority":
            if chosen_wq is None and snapshot:
                ready = ", ".join(str(wq_id) for wq_id, _, _ in snapshot)
                monitor.fail(
                    self.name,
                    "batch-buffer descriptor dispatched while work-queue"
                    f" heads were ready (WQs {ready}); the arbiter must"
                    " prefer work queues",
                )
            chosen_priority = int(context.get("priority", 0))
            for wq_id, priority, _ready_time in snapshot:
                if wq_id == chosen_wq:
                    continue
                if priority > chosen_priority:
                    monitor.fail(
                        self.name,
                        f"priority inversion: WQ {wq_id} (priority"
                        f" {priority}) was ready but WQ {chosen_wq}"
                        f" (priority {chosen_priority}) dispatched",
                    )
        for wq_id, _priority, _ready_time in snapshot:
            if wq_id == chosen_wq:
                continue
            passed = self._passed_over.get(wq_id, 0) + 1
            if passed > self.starvation_limit:
                monitor.fail(
                    self.name,
                    f"WQ {wq_id} starved: passed over {passed} consecutive"
                    f" dispatches (limit {self.starvation_limit})",
                )
            self._passed_over[wq_id] = passed
        if chosen_wq is not None:
            self._passed_over[chosen_wq] = 0


class TimelineChecker(InvariantChecker):
    """Timeline monotonicity across the clock, device, and event stream."""

    name = "timeline"
    kinds = None  # observes every event

    def __init__(self) -> None:
        self._device_time_floor = 0

    def observe(
        self,
        monitor: InvariantMonitor,
        kind: str,
        timestamp: int,
        context: dict[str, Any],
        payload: Any,
    ) -> None:
        clock = monitor.clock
        if clock is not None and timestamp > clock.now:
            monitor.fail(
                self.name,
                f"{kind} event stamped at {timestamp}, beyond the shared"
                f" TSC at {clock.now}",
            )

    def audit(self, monitor: InvariantMonitor) -> None:
        device = monitor.device
        if device is None:
            return
        now = device.time
        if now < self._device_time_floor:
            monitor.fail(
                self.name,
                f"device replay time moved backwards: {now} <"
                f" {self._device_time_floor}",
            )
        self._device_time_floor = now
        clock = monitor.clock
        if clock is not None and now > clock.now:
            monitor.fail(
                self.name,
                f"device replay time {now} ran ahead of the shared TSC"
                f" at {clock.now}",
            )


def default_checkers(
    starvation_limit: int = 50_000,
) -> tuple[InvariantChecker, ...]:
    """The full catalog, one fresh instance each (checkers are stateful)."""
    return (
        WqCreditChecker(),
        CompletionChecker(),
        DevTlbChecker(),
        ArbiterFairnessChecker(starvation_limit=starvation_limit),
        TimelineChecker(),
    )
