"""Seeded randomized soak harness for the self-verifying model.

Generates a random-but-deterministic descriptor/submission workload
across SWQ/DWQ/batch/multi-engine configurations, runs it under an
:class:`~repro.invariants.monitor.InvariantMonitor` in strict mode, and
— when a checker trips — shrinks the failing operation list to a
minimal reproducer (ddmin-style chunk removal).  Everything is a pure
function of the seed, so any violation is replayable as::

    PYTHONPATH=src python -m repro.invariants.soak --seed <N> --operations <M>

Budgets are expressed in *operation counts*, never wall-clock time: the
soak must stay deterministic (docs/static-analysis.md, DET002).

Run via ``scripts/run_soak.sh`` or ``python -m repro.invariants.soak``.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.dsa.batch import write_batch_list
from repro.dsa.descriptor import BatchDescriptor, Descriptor, make_memcpy, make_noop
from repro.dsa.opcodes import Opcode
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import InvariantViolation, ReproError
from repro.experiments.runner import EXIT_INVARIANT
from repro.hw.units import PAGE_SIZE
from repro.invariants.monitor import InvariantMonitor
from repro.invariants.shrink import ddmin
from repro.virt.system import CloudSystem

#: Poll bound for every wait: generous at simulated 2 GHz, but finite so
#: a lost completion surfaces as a handled CompletionTimeoutError.
WAIT_TIMEOUT_CYCLES = 5_000_000

#: Stream label mixed into the seed so soak draws never collide with the
#: model's own seeded generators.
_SOAK_STREAM = 0x50A5

_OP_KINDS = ("submit_wait", "submit", "wait", "batch", "advance", "drain")
_OP_WEIGHTS = (0.30, 0.22, 0.16, 0.08, 0.18, 0.06)
_SIZES = (0, 64, 1024, 4096, 16384)
_BUFFER_BYTES = 64 * 1024


@dataclass(frozen=True)
class SoakConfig:
    """One soak run, fully determined by its fields."""

    seed: int = 0
    operations: int = 300
    processes: int = 3
    mode: str = "strict"
    sample_every: int = 16
    #: Maximum re-executions the shrinker may spend on one failure.
    shrink_budget: int = 120


@dataclass(frozen=True)
class SoakOutcome:
    """What one execution of an operation list observed."""

    ok: bool
    violation: InvariantViolation | None
    ops_executed: int
    submissions: int
    waits: int
    handled_errors: int
    events_seen: int
    audits_run: int


@dataclass(frozen=True)
class SoakResult:
    """A full soak run: outcome plus (on failure) the minimal reproducer."""

    config: SoakConfig
    outcome: SoakOutcome
    repro: str
    minimal_ops: "tuple[dict[str, Any], ...] | None" = None
    shrink_runs: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome.ok


def _derive_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence((_SOAK_STREAM, seed)))


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
def generate_topology(rng: np.random.Generator) -> "dict[str, Any]":
    """Random engine/group/queue topology (SWQ, DWQ, multi-engine)."""
    engines = int(rng.integers(1, 5))
    if engines >= 2 and rng.random() < 0.5:
        split = engines // 2
        groups = [tuple(range(split)), tuple(range(split, engines))]
    else:
        groups = [tuple(range(engines))]
    wqs = []
    for wq_id in range(int(rng.integers(1, 4))):
        wqs.append(
            {
                "wq_id": wq_id,
                "size": int(rng.integers(4, 25)),
                "mode": "dedicated" if rng.random() < 0.25 else "shared",
                "priority": int(rng.integers(0, 4)),
                "group": int(rng.integers(0, len(groups))),
            }
        )
    return {"engines": engines, "groups": groups, "wqs": wqs}


def _wq_owner(wq: "dict[str, Any]", processes: int) -> int:
    """The process index that opens a dedicated queue."""
    return int(wq["wq_id"]) % processes


def generate_ops(
    rng: np.random.Generator,
    topology: "dict[str, Any]",
    count: int,
    processes: int,
) -> "list[dict[str, Any]]":
    """*count* random operations against *topology*."""
    wqs = topology["wqs"]
    ops: list[dict[str, Any]] = []
    for _ in range(count):
        kind = _OP_KINDS[int(rng.choice(len(_OP_KINDS), p=_OP_WEIGHTS))]
        wq = wqs[int(rng.integers(0, len(wqs)))]
        if wq["mode"] == "dedicated":
            proc = _wq_owner(wq, processes)
        else:
            proc = int(rng.integers(0, processes))
        op: dict[str, Any] = {"kind": kind, "proc": proc, "wq": int(wq["wq_id"])}
        if kind in ("submit_wait", "submit"):
            op["opcode"] = str(rng.choice(("noop", "memmove", "fill")))
            op["size"] = int(_SIZES[int(rng.integers(0, len(_SIZES)))])
        elif kind == "batch":
            op["children"] = int(rng.integers(2, 7))
        elif kind == "advance":
            op["cycles"] = int(rng.integers(1_000, 200_000))
        ops.append(op)
    return ops


def generate_workload(
    config: SoakConfig,
) -> "tuple[dict[str, Any], list[dict[str, Any]]]":
    """The (topology, ops) pair for *config* — a pure function of the seed."""
    rng = _derive_rng(config.seed)
    topology = generate_topology(rng)
    ops = generate_ops(rng, topology, config.operations, config.processes)
    return topology, ops


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class _Workbench:
    """Per-process buffers and submission bookkeeping for one execution."""

    def __init__(self, system: CloudSystem, topology: "dict[str, Any]", processes: int) -> None:
        self.system = system
        self.procs = []
        self.comp_slot = 0
        wqs = topology["wqs"]
        for index in range(processes):
            vm = system.create_vm(f"soak-vm-{index}")
            proc = vm.spawn_process(f"soak-{index}")
            for wq in wqs:
                if wq["mode"] == "shared" or _wq_owner(wq, processes) == index:
                    system.open_portal(proc, int(wq["wq_id"]))
            self.procs.append(proc)
        self.src = [proc.buffer(_BUFFER_BYTES) for proc in self.procs]
        self.dst = [proc.buffer(_BUFFER_BYTES) for proc in self.procs]
        self.comp = [proc.buffer(PAGE_SIZE) for proc in self.procs]
        self.lists = [proc.buffer(PAGE_SIZE) for proc in self.procs]
        self.pending: list[tuple[int, int, Any]] = []

    def comp_addr(self, proc: int) -> int:
        self.comp_slot = (self.comp_slot + 1) % (PAGE_SIZE // 32)
        return self.comp[proc] + 32 * self.comp_slot

    def descriptor(self, op: "dict[str, Any]") -> Descriptor:
        proc = self.procs[op["proc"]]
        index = op["proc"]
        size = min(int(op.get("size", 0)), _BUFFER_BYTES)
        opcode = op.get("opcode", "noop")
        if opcode == "memmove" and size:
            return make_memcpy(
                proc.pasid, self.src[index], self.dst[index], size, self.comp_addr(index)
            )
        if opcode == "fill" and size:
            return Descriptor(
                opcode=Opcode.FILL,
                pasid=proc.pasid,
                src=0xA5,
                dst=self.dst[index],
                size=size,
                completion_addr=self.comp_addr(index),
            )
        return make_noop(proc.pasid, self.comp_addr(index))

    def batch(self, op: "dict[str, Any]") -> BatchDescriptor:
        index = op["proc"]
        proc = self.procs[index]
        children = [
            make_noop(proc.pasid, self.comp_addr(index))
            for _ in range(int(op["children"]))
        ]
        write_batch_list(proc.space, self.lists[index], children)
        return BatchDescriptor(
            pasid=proc.pasid,
            desc_list_addr=self.lists[index],
            count=len(children),
            completion_addr=self.comp_addr(index),
        )


def execute(
    config: SoakConfig,
    ops: "Sequence[dict[str, Any]]",
    repro_hint: str = "",
) -> SoakOutcome:
    """Run *ops* on a fresh system under a monitor; never raises for
    handled pipeline errors — only programming errors propagate."""
    rng = _derive_rng(config.seed)
    topology = generate_topology(rng)
    system = CloudSystem(seed=config.seed, invariants="off")
    monitor = InvariantMonitor(
        mode=config.mode,
        sample_every=config.sample_every,
        seed=config.seed,
        repro_hint=repro_hint,
    )
    monitor.attach_system(system)
    device = system.device
    for group_id, engine_ids in enumerate(topology["groups"]):
        device.configure_group(group_id, engine_ids)
    for wq in topology["wqs"]:
        device.configure_wq(
            WorkQueueConfig(
                wq_id=int(wq["wq_id"]),
                size=int(wq["size"]),
                mode=WqMode(wq["mode"]),
                priority=int(wq["priority"]),
                group_id=int(wq["group"]),
            )
        )
    bench = _Workbench(system, topology, config.processes)

    executed = 0
    submissions = 0
    waits = 0
    handled = 0
    violation: InvariantViolation | None = None

    def apply(op: "dict[str, Any]") -> None:
        nonlocal submissions, waits
        kind = op["kind"]
        if kind == "advance":
            system.clock.advance(int(op["cycles"]))
            device.advance_to(system.clock.now)
        elif kind == "drain":
            device.disable_wq(int(op["wq"]))
        elif kind == "wait":
            if bench.pending:
                proc, wq_id, ticket = bench.pending.pop(0)
                waits += 1
                bench.procs[proc].portal(wq_id).wait(
                    ticket, timeout_cycles=WAIT_TIMEOUT_CYCLES
                )
        elif kind == "submit":
            portal = bench.procs[op["proc"]].portal(int(op["wq"]))
            ticket = portal.submit(bench.descriptor(op))
            submissions += 1
            bench.pending.append((op["proc"], int(op["wq"]), ticket))
        elif kind == "batch":
            portal = bench.procs[op["proc"]].portal(int(op["wq"]))
            submissions += 1
            waits += 1
            portal.submit_wait(
                bench.batch(op), timeout_cycles=WAIT_TIMEOUT_CYCLES
            )
        else:  # submit_wait
            portal = bench.procs[op["proc"]].portal(int(op["wq"]))
            submissions += 1
            waits += 1
            portal.submit_wait(
                bench.descriptor(op), timeout_cycles=WAIT_TIMEOUT_CYCLES
            )

    def contained(step: "Callable[[], None]") -> bool:
        """Run one step; count handled pipeline errors, let trips out."""
        nonlocal handled
        try:
            step()
        except InvariantViolation:
            raise
        except ReproError:
            # Handled pipeline outcome (queue full, poll timeout,
            # translation fault): the soak contract is "handled or
            # detected", so a typed error is a pass for that operation
            # and the workload continues.
            handled += 1
            return False
        return True

    try:
        for op in ops:
            contained(lambda: apply(op))
            executed += 1
        # Settle: drain outstanding asynchronous tickets, then run the
        # final full audit so end-of-run state is covered too.
        while bench.pending:
            proc, wq_id, ticket = bench.pending.pop(0)
            waits += 1
            contained(
                lambda: bench.procs[proc].portal(wq_id).wait(
                    ticket, timeout_cycles=WAIT_TIMEOUT_CYCLES
                )
            )
        monitor.check_all()
    except InvariantViolation as exc:
        violation = exc

    return SoakOutcome(
        ok=violation is None,
        violation=violation,
        ops_executed=executed,
        submissions=submissions,
        waits=waits,
        handled_errors=handled,
        events_seen=monitor.events_seen,
        audits_run=monitor.audits_run,
    )


# ----------------------------------------------------------------------
# Shrinking and the driver
# ----------------------------------------------------------------------
def shrink(
    config: SoakConfig,
    ops: "Sequence[dict[str, Any]]",
    invariant: str,
    budget: "int | None" = None,
) -> "tuple[list[dict[str, Any]], int]":
    """Drop chunks of *ops* while the same *invariant* still trips,
    within a re-execution *budget* (see :func:`repro.invariants.shrink.ddmin`).
    Returns (minimal ops, runs)."""
    if budget is None:
        budget = config.shrink_budget

    def still_fails(candidate: "list[dict[str, Any]]") -> bool:
        outcome = execute(config, candidate)
        return (
            outcome.violation is not None
            and outcome.violation.invariant == invariant
        )

    return ddmin(ops, still_fails, budget=budget)


def repro_command(config: SoakConfig) -> str:
    """The one-command reproduction line carried into violations."""
    return (
        "PYTHONPATH=src python -m repro.invariants.soak"
        f" --seed {config.seed}"
        f" --operations {config.operations}"
        f" --processes {config.processes}"
        f" --mode {config.mode}"
    )


def run_soak(config: SoakConfig, shrink_failures: bool = True) -> SoakResult:
    """One full soak run: generate, execute, and on failure shrink."""
    _, ops = generate_workload(config)
    repro = repro_command(config)
    outcome = execute(config, ops, repro_hint=repro)
    minimal: "tuple[dict[str, Any], ...] | None" = None
    shrink_runs = 0
    if outcome.violation is not None and shrink_failures:
        reduced, shrink_runs = shrink(
            config, ops, outcome.violation.invariant
        )
        minimal = tuple(reduced)
    return SoakResult(
        config=config,
        outcome=outcome,
        repro=repro,
        minimal_ops=minimal,
        shrink_runs=shrink_runs,
    )


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.invariants.soak",
        description=__doc__.split("\n\n")[0],
    )
    parser.add_argument("--seed", type=int, default=0, help="base run seed")
    parser.add_argument(
        "--runs", type=int, default=1, help="consecutive seeds to soak"
    )
    parser.add_argument(
        "--operations", type=int, default=300, help="operations per run"
    )
    parser.add_argument(
        "--processes", type=int, default=3, help="guest processes per run"
    )
    parser.add_argument(
        "--mode",
        default="strict",
        choices=("strict", "sampling", "sample"),
        help="audit cadence for the monitor",
    )
    parser.add_argument(
        "--sample-every",
        type=int,
        default=16,
        help="audit period in sampling mode",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip workload shrinking on failure",
    )
    args = parser.parse_args(argv)

    failures = 0
    for offset in range(args.runs):
        config = SoakConfig(
            seed=args.seed + offset,
            operations=args.operations,
            processes=args.processes,
            mode=args.mode,
            sample_every=args.sample_every,
        )
        result = run_soak(config, shrink_failures=not args.no_shrink)
        outcome = result.outcome
        if result.ok:
            print(
                f"soak seed={config.seed}: clean"
                f" ({outcome.ops_executed} ops, {outcome.submissions} submissions,"
                f" {outcome.handled_errors} handled errors,"
                f" {outcome.events_seen} events, {outcome.audits_run} audits)"
            )
            continue
        failures += 1
        assert outcome.violation is not None
        print(f"soak seed={config.seed}: INVARIANT VIOLATION")
        print(outcome.violation.describe())
        if result.minimal_ops is not None:
            print(
                f"minimal reproducer ({len(result.minimal_ops)} ops,"
                f" {result.shrink_runs} shrink runs):"
            )
            print(json.dumps(list(result.minimal_ops), indent=2, sort_keys=True))
    return EXIT_INVARIANT if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
