"""Delta-debugging reduction shared by the soak harness and the fuzzer.

One ddmin-lite implementation: drop progressively smaller chunks of a
failing item sequence while a caller-supplied predicate still observes
the *same* failure, within a bounded re-execution budget.  The algorithm
is deliberately simple — chunked removal with coarsening/refinement, no
caching — because every predicate call re-executes a full deterministic
workload and the budget, not cleverness, is the cost ceiling.

Both drivers wrap it the same way: the predicate rebuilds a fresh system
from the original seed, replays the candidate operation list, and
answers "does the identical finding signature still appear?".  Because
the executions are pure functions of (seed, ops), the reduced sequence
the budget converges on is itself a deterministic artifact.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

#: Default bound on predicate re-executions for one reduction.
DEFAULT_BUDGET = 120


def ddmin(
    items: Sequence[T],
    still_fails: Callable[[list[T]], bool],
    budget: int = DEFAULT_BUDGET,
) -> "tuple[list[T], int]":
    """Reduce *items* while ``still_fails(candidate)`` holds.

    Starts by removing halves, refines toward single-item chunks when
    removal stops succeeding, and re-coarsens after each successful
    drop.  Every predicate call counts against *budget*; the reduction
    stops at the budget, at a single surviving item, or when no
    single-item removal reproduces the failure.

    Returns ``(minimal items, predicate runs)``.  *items* itself is
    never re-tested — callers only reduce sequences they have already
    observed failing.
    """
    runs = 0

    def check(candidate: "list[T]") -> bool:
        nonlocal runs
        runs += 1
        return still_fails(candidate)

    current = list(items)
    chunks = 2
    while len(current) >= 2 and runs < budget:
        size = max(1, len(current) // chunks)
        reduced = False
        for start in range(0, len(current), size):
            if runs >= budget:
                break
            candidate = current[:start] + current[start + size :]
            if candidate and check(candidate):
                current = candidate
                chunks = max(2, chunks - 1)
                reduced = True
                break
        if not reduced:
            if size <= 1:
                break
            chunks = min(len(current), chunks * 2)
    return current, runs


__all__ = ["DEFAULT_BUDGET", "ddmin"]
