"""Exception hierarchy shared by every subsystem of the reproduction.

Each subpackage defines its own specific errors derived from
:class:`ReproError` so callers can either catch narrowly (e.g.
``TranslationFault``) or broadly (``ReproError``).

Errors that correspond to transient hardware conditions
(:class:`QueueFullError`, :class:`TranslationFault`,
:class:`CompletionTimeoutError`) carry structured context — the queue,
occupancy, PASID, or address involved — so resilient callers and the
chaos suite can assert on *which* resource failed rather than parsing
message strings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class PermissionDeniedError(ReproError):
    """An unprivileged actor attempted a root-only operation.

    The paper's threat model (Section V-A) assumes an *unprivileged*
    adversary: configuring engines/queues and reading Perfmon require root,
    while submitting descriptors and reading ``wq_size`` do not.  This error
    is how the model enforces that boundary.
    """


class TranslationFault(ReproError):
    """An address could not be translated by a page table or the IOMMU."""

    def __init__(self, address: int, message: str = "", pasid: int | None = None) -> None:
        detail = message or f"no translation for address {address:#x}"
        super().__init__(detail)
        self.address = address
        self.pasid = pasid


class OutOfMemoryError(ReproError):
    """The physical frame allocator ran out of frames."""


class InvalidDescriptorError(ReproError):
    """A DSA descriptor failed validation at submission or decode time."""


class QueueConfigurationError(ConfigurationError):
    """Work-queue configuration registers are inconsistent."""


class QueueFullError(ReproError):
    """A submission was refused because the work queue is full.

    For ``enqcmd`` this surfaces as ``EFLAGS.ZF = 1`` rather than an
    exception; the exception form exists for the convenience submit path
    and for ``movdir64b`` to a full dedicated queue (whose behavior real
    hardware leaves undefined).

    ``wq_id``/``occupancy``/``capacity`` carry the refusing queue's state
    at submission time (``None`` when the raiser cannot know it).
    """

    def __init__(
        self,
        message: str = "",
        wq_id: int | None = None,
        occupancy: int | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(message or "work queue full")
        self.wq_id = wq_id
        self.occupancy = occupancy
        self.capacity = capacity


class CompletionTimeoutError(ReproError):
    """A polled descriptor never produced a completion record in time.

    On real hardware this is how software observes a *lost* submission
    (e.g. a dropped portal write): the poll loop gives up after a bounded
    spin.  Raised only when the caller opts into a poll timeout.
    """

    def __init__(
        self,
        message: str = "",
        wq_id: int | None = None,
        waited_cycles: int | None = None,
    ) -> None:
        super().__init__(message or "completion record never arrived")
        self.wq_id = wq_id
        self.waited_cycles = waited_cycles


class CalibrationError(ReproError):
    """Threshold calibration could not produce a healthy hit/miss split.

    ``best`` holds the least-bad :class:`~repro.core.calibration.CalibrationResult`
    observed across the bounded retry attempts (``None`` when no attempt
    completed at all), so diagnostics can report how close it came.
    """

    def __init__(self, message: str = "", best: object | None = None) -> None:
        super().__init__(message or "calibration failed its health check")
        self.best = best


class InsufficientTrialsError(ReproError):
    """A guarded experiment finished with too few successful trials.

    Raised by :mod:`repro.experiments.guard` when per-trial failures (or
    an exhausted wall-clock budget) left fewer successes than the caller's
    floor — the alternative to silently reporting a figure built from
    nothing.
    """


class CheckpointError(ReproError):
    """Crash-safe run state on disk is unusable.

    Raised by :mod:`repro.experiments.checkpoint` when a run directory's
    manifest or trial journal is missing, unparseable, or internally
    inconsistent — e.g. a journal entry referencing a payload file that
    does not exist.
    """


class ResumeMismatchError(CheckpointError):
    """A ``--resume`` target was produced by a different configuration.

    The run manifest records a hash of the experiment plan's
    configuration; resuming with different parameters (or a different
    experiment) would silently splice incompatible trial results into
    one artifact, so the mismatch aborts with this error instead.
    ``expected``/``actual`` carry the two hashes for diagnostics.
    """

    def __init__(
        self,
        message: str = "",
        expected: str | None = None,
        actual: str | None = None,
    ) -> None:
        super().__init__(message or "resume configuration mismatch")
        self.expected = expected
        self.actual = actual


class InvariantViolation(ReproError):
    """The runtime invariant monitor caught silent model corruption.

    Raised by :class:`~repro.invariants.monitor.InvariantMonitor` when a
    registered checker finds the model in a state that violates one of
    the architectural conservation laws (WQ credit conservation,
    exactly-once completion writes, DevTLB occupancy bounds, arbiter
    fairness, timeline monotonicity).  Unlike every other
    :class:`ReproError`, a violation is **never contained** by the trial
    guard: it means downstream latency distributions can no longer be
    trusted, so the run must stop with a distinct exit code.

    The carried context makes any trip replayable:

    ``invariant``
        Stable checker name (e.g. ``wq-credits``).
    ``timestamp``
        Simulated time (cycles) when the check ran.
    ``seed``
        The system seed of the run, when the monitor knows it.
    ``snapshot``
        A bounded ``{str: int | float | str}`` picture of the relevant
        model state at trip time.
    ``events``
        The monitor's recent event window (oldest first), each event a
        ``{str: int | str}`` dict.
    ``repro``
        A one-command reproduction hint (set by the soak driver /
        runner), empty when unknown.
    """

    def __init__(
        self,
        message: str = "",
        invariant: str = "",
        timestamp: int | None = None,
        seed: int | None = None,
        snapshot: "dict[str, object] | None" = None,
        events: "tuple[dict[str, object], ...]" = (),
        repro: str = "",
    ) -> None:
        super().__init__(message or f"invariant {invariant or '?'} violated")
        self.invariant = invariant
        self.timestamp = timestamp
        self.seed = seed
        self.snapshot = dict(snapshot or {})
        self.events = tuple(events)
        self.repro = repro

    def describe(self) -> str:
        """Multi-line report: message, snapshot, event window, repro."""
        lines = [f"InvariantViolation[{self.invariant}]: {self}"]
        if self.seed is not None:
            lines.append(f"  seed: {self.seed}")
        if self.timestamp is not None:
            lines.append(f"  timestamp: {self.timestamp} cycles")
        if self.snapshot:
            lines.append("  state snapshot:")
            for key in sorted(self.snapshot):
                lines.append(f"    {key} = {self.snapshot[key]!r}")
        if self.events:
            lines.append(f"  last {len(self.events)} events (oldest first):")
            for event in self.events:
                lines.append(f"    {event!r}")
        if self.repro:
            lines.append(f"  reproduce with: {self.repro}")
        return "\n".join(lines)


class UnhandledFaultError(ReproError):
    """An injected fault was absorbed without any layer accounting for it.

    The chaos contract is "injected faults are either handled or
    detected — never absorbed silently": every component that applies a
    fault effect calls
    :meth:`~repro.faults.injector.FaultInjector.acknowledge`, and
    :func:`~repro.experiments.guard.run_guarded_trials` audits the
    fired-versus-acknowledged ledger after each trial.  A trial that
    ends green while faults fired unacknowledged fails with this error
    instead — the structured alternative to a silently skewed figure.

    ``unacknowledged`` maps fault-site ids to the number of events that
    fired during the trial with no matching acknowledgement.
    """

    def __init__(
        self,
        message: str = "",
        unacknowledged: "dict[str, int] | None" = None,
    ) -> None:
        detail = unacknowledged or {}
        if not message:
            summary = ", ".join(
                f"{site}×{count}" for site, count in sorted(detail.items())
            )
            message = (
                "injected fault(s) absorbed with no handled outcome and no"
                f" invariant trip: {summary or 'unknown site'}"
            )
        super().__init__(message)
        self.unacknowledged = dict(detail)


class PoolError(ReproError):
    """The persistent worker pool could not execute a run as asked.

    Raised by :mod:`repro.experiments.pool` for supervision-level
    failures that are *not* a trial's own error: a closed pool asked to
    run, a worker that failed run setup, or — as the ``error`` of a
    ``poisoned`` run outcome — trials quarantined after repeatedly
    killing the workers executing them.
    """


class PoolProtocolError(PoolError):
    """The checksummed shared-memory result stream was corrupted.

    Every worker→parent record travels as a framed, CRC32-checksummed
    blob over a shared-memory ring.  A frame whose magic or checksum
    does not verify (torn write, hostile corruption, garbage from a
    dying worker) raises this on the parent side, which treats the
    worker as failed and requeues its unacknowledged trials — corruption
    is healed, never silently parsed.
    """


class DatasetCorruptionError(ReproError, ValueError):
    """An on-disk artifact failed its integrity check on load.

    A mid-write kill can no longer *tear* an artifact (writes go through
    temp-file + ``os.replace``), but a file may still be truncated by the
    filesystem, copied partially, or hand-edited.  Loads validate archive
    structure and embedded checksums and raise this instead of surfacing
    a confusing ``zipfile``/JSON error.  Subclasses :class:`ValueError`
    for compatibility with callers that caught the old validation errors.
    """


class ServiceError(ReproError):
    """The always-on session service failed a supervision-level duty.

    Raised by :mod:`repro.service` for faults of the *service* itself —
    a stalled device-time loop, a session scheduled on a quarantined
    lane, a drain that could not checkpoint — never for an individual
    session's own attack errors (those stay contained inside the
    session's retry budget).
    """


class AdmissionRejected(ServiceError):
    """A session was refused at the front door, with a typed reason.

    Admission control *rejects loudly*: every refusal carries the
    tenant, a stable machine-readable ``reason`` and — when the bucket
    can predict it — how many device cycles until a token will be
    available, so well-behaved load generators can back off instead of
    hammering.  Reasons are drawn from a closed set so the exit-path
    accounting (and the chaos matrix) can assert on *why* load was
    turned away:

    ``rate-limit``
        the service-wide token bucket is empty
    ``tenant-quota``
        the tenant's device-time budget or in-flight cap is exhausted
    ``queue-full``
        the bounded admission queue is at capacity (backpressure)
    ``circuit-open``
        the overload controller has circuit-broken new admissions
    ``admission-flap``
        the ``service_admission_flap`` chaos fault spuriously refused an
        otherwise admissible session
    ``draining``
        the service is in SIGTERM graceful drain
    """

    def __init__(
        self,
        message: str = "",
        tenant: str = "",
        reason: str = "",
        retry_after_cycles: int | None = None,
    ) -> None:
        super().__init__(
            message or f"admission rejected ({reason or 'unspecified'})"
        )
        self.tenant = tenant
        self.reason = reason
        self.retry_after_cycles = retry_after_cycles


class SessionDeadlineExceeded(ServiceError):
    """A session blew its per-session deadline budget (device cycles).

    The deadline is the session's *containment boundary*: a stalled
    round (e.g. the ``service_session_stall`` fault) is detected here
    rather than wedging a device lane forever.  Carries the budget and
    the observed elapsed cycles for the accounting ledger.
    """

    def __init__(
        self,
        message: str = "",
        session_id: str = "",
        deadline_cycles: int | None = None,
        elapsed_cycles: int | None = None,
    ) -> None:
        super().__init__(message or f"session {session_id or '?'} deadline")
        self.session_id = session_id
        self.deadline_cycles = deadline_cycles
        self.elapsed_cycles = elapsed_cycles


class LaneRevokedError(ServiceError):
    """A device lane was revoked while a session held (or awaited) it.

    The ``service_device_revoke`` fault site models a hypervisor
    reclaiming a simulated DSA device mid-attack.  The fleet quarantines
    the lane and rebuilds a replacement; the holding session retries on
    another lane inside its bounded retry budget.
    """

    def __init__(self, message: str = "", lane_id: int | None = None) -> None:
        super().__init__(message or f"device lane {lane_id} revoked")
        self.lane_id = lane_id


class ServiceOverloadError(ServiceError):
    """The run ended in a degraded state that breaches the service floor.

    Raised by the CLI layer (``python -m repro.service``) after final
    accounting when the overload controller had to open the admission
    circuit *and* the completed fraction of offered load fell below the
    configured floor — the condition mapped to
    :data:`repro.experiments.runner.EXIT_OVERLOAD`.
    """
