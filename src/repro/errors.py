"""Exception hierarchy shared by every subsystem of the reproduction.

Each subpackage defines its own specific errors derived from
:class:`ReproError` so callers can either catch narrowly (e.g.
``TranslationFault``) or broadly (``ReproError``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class PermissionDeniedError(ReproError):
    """An unprivileged actor attempted a root-only operation.

    The paper's threat model (Section V-A) assumes an *unprivileged*
    adversary: configuring engines/queues and reading Perfmon require root,
    while submitting descriptors and reading ``wq_size`` do not.  This error
    is how the model enforces that boundary.
    """


class TranslationFault(ReproError):
    """An address could not be translated by a page table or the IOMMU."""

    def __init__(self, address: int, message: str = "") -> None:
        detail = message or f"no translation for address {address:#x}"
        super().__init__(detail)
        self.address = address


class OutOfMemoryError(ReproError):
    """The physical frame allocator ran out of frames."""


class InvalidDescriptorError(ReproError):
    """A DSA descriptor failed validation at submission or decode time."""


class QueueConfigurationError(ConfigurationError):
    """Work-queue configuration registers are inconsistent."""


class QueueFullError(ReproError):
    """A submission was refused because the work queue is full.

    For ``enqcmd`` this surfaces as ``EFLAGS.ZF = 1`` rather than an
    exception; the exception form exists for the convenience submit path
    and for ``movdir64b`` to a full dedicated queue (whose behavior real
    hardware leaves undefined)."""
