"""The load generator: 10⁵-session schedules and chaos lanes.

The generator is *open-loop*: arrivals follow a seeded exponential
inter-arrival process fixed before the run starts, so offered load does
not slow down when the service pushes back — exactly the regime where
backpressure and overload shedding must prove themselves.  The schedule
is a pure function of :class:`LoadConfig` (NumPy ``default_rng``), so a
bench run is replayable bit-for-bit.

Chaos lanes (both deterministic under the load seed):

* **session kill** — a chaos coroutine on the device-time loop cancels
  random active sessions mid-round; the supervisor must account every
  victim as ``failed`` with nothing leaked;
* **tenant stampede** — a configurable fraction of the schedule arrives
  as one tenant inside one tight burst window, exercising the tenant
  in-flight cap and the fairness audit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.service.session import SessionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import AttackService, ServiceReport


@dataclass(frozen=True)
class LoadConfig:
    """A replayable description of offered load."""

    sessions: int = 1_000
    tenants: int = 8
    seed: int = 7
    #: Mean of the exponential inter-arrival gap, in device cycles.
    mean_interarrival_cycles: float = 50_000.0
    priority_levels: int = 3
    probe_rounds: int = 3
    probes_per_round: int = 4
    idle_us: float = 10.0
    deadline_cycles: int = 80_000_000
    #: Tenant stampede: this fraction of sessions belongs to a single
    #: extra tenant ("stampeder") and arrives inside ``stampede_span``
    #: cycles starting at ``stampede_at_cycles``.
    stampede_fraction: float = 0.0
    stampede_at_cycles: int = 1_000_000
    stampede_span_cycles: int = 100_000
    #: Session-kill chaos: every ``kill_interval_cycles`` the killer
    #: wakes and, with ``kill_probability``, cancels one random active
    #: session.
    kill_probability: float = 0.0
    kill_interval_cycles: int = 2_000_000

    def __post_init__(self) -> None:
        if self.sessions < 0 or self.tenants < 1:
            raise ConfigurationError(
                "load needs >= 0 sessions and >= 1 tenant"
            )
        if not 0.0 <= self.stampede_fraction < 1.0:
            raise ConfigurationError("stampede_fraction must be in [0, 1)")
        if not 0.0 <= self.kill_probability <= 1.0:
            raise ConfigurationError("kill_probability must be in [0, 1]")


def build_schedule(config: LoadConfig) -> "list[SessionSpec]":
    """The full arrival schedule for *config*, sorted by arrival time."""
    rng = np.random.default_rng(config.seed)
    stampeders = int(config.sessions * config.stampede_fraction)
    organic = config.sessions - stampeders
    gaps = rng.exponential(config.mean_interarrival_cycles, size=organic)
    arrivals = np.cumsum(gaps).astype(np.int64)
    tenants = rng.integers(0, config.tenants, size=organic)
    priorities = rng.integers(0, config.priority_levels, size=organic)
    specs = [
        SessionSpec(
            session_id=f"s{index:06d}",
            tenant=f"tenant-{int(tenants[index])}",
            priority=int(priorities[index]),
            arrival_cycles=int(arrivals[index]),
            probe_rounds=config.probe_rounds,
            probes_per_round=config.probes_per_round,
            idle_us=config.idle_us,
            deadline_cycles=config.deadline_cycles,
        )
        for index in range(organic)
    ]
    if stampeders:
        burst = rng.integers(
            config.stampede_at_cycles,
            config.stampede_at_cycles + config.stampede_span_cycles,
            size=stampeders,
        )
        specs.extend(
            SessionSpec(
                session_id=f"x{index:06d}",
                tenant="stampeder",
                priority=0,
                arrival_cycles=int(burst[index]),
                probe_rounds=config.probe_rounds,
                probes_per_round=config.probes_per_round,
                idle_us=config.idle_us,
                deadline_cycles=config.deadline_cycles,
            )
            for index in range(stampeders)
        )
    specs.sort(key=lambda s: (s.arrival_cycles, s.session_id))
    return specs


def make_session_killer(config: LoadConfig):
    """A chaos coroutine factory for :meth:`AttackService.run`.

    Returns ``None`` when the kill lane is disabled, else an async
    callable the service spawns on its device-time loop.
    """
    if config.kill_probability <= 0.0:
        return None
    rng = np.random.default_rng(config.seed ^ 0xC4A0)

    async def _killer(service: "AttackService") -> None:
        while True:
            await service.loop.sleep_cycles(config.kill_interval_cycles)
            victims = service.active_session_ids
            if victims and rng.random() < config.kill_probability:
                index = int(rng.integers(len(victims)))
                service.kill_session(victims[index], reason="chaos-kill")

    return _killer


def run_load(
    service_config: "object",
    load_config: LoadConfig,
    *,
    resume_from: "object | None" = None,
    checkpoint_dir: "object | None" = None,
) -> "ServiceReport":
    """Build the schedule and drive one service run end to end."""
    from repro.service.app import AttackService

    service = AttackService(service_config)
    return service.run(
        build_schedule(load_config),
        chaos=make_session_killer(load_config),
        resume_from=resume_from,
        checkpoint_dir=checkpoint_dir,
    )
