"""The service proper: supervision, accounting, drain, resume.

:class:`AttackService` owns one run of the always-on service: it builds
the device fleet, spawns the dispatcher / overload-controller /
load-feeder tasks on the device-time loop, supervises every session to
a terminal exit, and proves the conservation law before returning a
:class:`ServiceReport`.

Supervision follows the pool's containment philosophy (PR 7) without a
broad ``except`` anywhere: a session converts its *typed* failures into
``failed`` outcomes itself; anything untyped escapes its task, and the
supervisor reads ``task.exception()`` — never re-raising — to
quarantine the poisoned session while the fleet keeps serving.

Graceful drain: ``request_drain()`` (the SIGTERM hook — safe to call
from a signal handler, it only sets a flag) stops new admissions with a
typed ``draining`` rejection, lets active sessions stop at their next
round boundary, and checkpoints every admitted-but-unfinished session
spec plus the unoffered tail of the schedule through
:func:`repro.experiments.checkpoint.atomic_write_json`.  A later run
with ``resume_from=`` verifies the config hash
(:class:`~repro.errors.ResumeMismatchError` on drift), re-enters the
checkpointed sessions as ``resumed`` (they skip the token bucket — they
already paid), and re-offers the unoffered tail, so the logical run
loses and double-counts nothing — the restart-resume equivalence test
checks exactly that, session id by session id.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.errors import (
    AdmissionRejected,
    CheckpointError,
    ResumeMismatchError,
    ServiceError,
)
from repro.experiments.checkpoint import atomic_write_json
from repro.experiments.guard import _unacknowledged
from repro.experiments.runner import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_OVERLOAD,
)
from repro.faults.sites import SERVICE_SITES, SITE_OWNERS
from repro.invariants.service import ServiceStateChecker
from repro.service.admission import AdmissionController
from repro.service.config import ServiceConfig
from repro.service.controller import OverloadController
from repro.service.devices import DeviceFleet
from repro.service.loop import BoundedQueue, DeviceTimeLoop, VirtualEvent
from repro.service.session import (
    AttackSession,
    EXIT_CHECKPOINTED,
    EXIT_FAILED,
    EXIT_SHED,
    SessionOutcome,
    SessionSpec,
    STATE_ADMITTED,
    STATE_CLOSED,
    STATE_DRAINING,
    STATE_OFFERED,
)

#: File name of the drain checkpoint inside the checkpoint directory.
CHECKPOINT_NAME = "service-checkpoint.json"

_STOP = object()


@dataclass
class ServiceAccounting:
    """Exit-path bookkeeping; one increment per session, exactly."""

    offered: int = 0
    resumed: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    shed: int = 0
    failed: dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    checkpointed: int = 0
    backpressure_events: int = 0

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def failed_total(self) -> int:
        return sum(self.failed.values())

    @property
    def terminal_total(self) -> int:
        return (
            self.rejected_total
            + self.completed
            + self.shed
            + self.failed_total
            + self.quarantined
            + self.checkpointed
        )

    def balances(self) -> bool:
        """The conservation law this run must satisfy exactly."""
        return self.offered + self.resumed == self.terminal_total

    def to_json(self) -> dict[str, Any]:
        return {
            "offered": self.offered,
            "resumed": self.resumed,
            "rejected": dict(sorted(self.rejected.items())),
            "rejected_total": self.rejected_total,
            "completed": self.completed,
            "shed": self.shed,
            "failed": dict(sorted(self.failed.items())),
            "failed_total": self.failed_total,
            "quarantined": self.quarantined,
            "checkpointed": self.checkpointed,
            "backpressure_events": self.backpressure_events,
        }


@dataclass
class ServiceReport:
    """What one service run can prove about itself."""

    status: str  # "completed" | "drained" | "overloaded"
    accounting: ServiceAccounting
    latency_cycles: dict[str, float]  # p50/p99/p999/mean over completed
    virtual_cycles: int
    mode_transitions: list[tuple[int, str]]
    lane_stats: dict[str, int]
    unacknowledged_faults: dict[str, int]
    checkpoint_path: str = ""
    session_ids: dict[str, list[str]] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        if self.status == "drained":
            return EXIT_INTERRUPTED
        if self.status == "overloaded":
            return EXIT_OVERLOAD
        return EXIT_OK

    def to_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "accounting": self.accounting.to_json(),
            "latency_cycles": self.latency_cycles,
            "virtual_cycles": self.virtual_cycles,
            "mode_transitions": [
                [cycles, mode] for cycles, mode in self.mode_transitions
            ],
            "lane_stats": self.lane_stats,
            "unacknowledged_faults": self.unacknowledged_faults,
            "checkpoint_path": self.checkpoint_path,
            "session_ids": {
                path: list(ids) for path, ids in sorted(self.session_ids.items())
            },
        }


def _percentiles(latencies: "list[int]") -> dict[str, float]:
    if not latencies:
        return {"p50": 0.0, "p99": 0.0, "p999": 0.0, "mean": 0.0}
    arr = np.asarray(latencies, dtype=np.int64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "p999": float(np.percentile(arr, 99.9)),
        "mean": float(arr.mean()),
    }


class AttackService:
    """One run of the always-on session service."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.loop = DeviceTimeLoop()
        self.checker = ServiceStateChecker()
        self.accounting = ServiceAccounting()
        self.injector = None
        if config.fault_plan is not None:
            self.injector = config.fault_plan.build_injector()
            for site in SERVICE_SITES:
                self.injector.register_site(site, SITE_OWNERS[site][0])
        self.poison_ledger: dict[str, str] = {}
        self._chaos: "Any | None" = None
        self._drain_flag = False
        self._ran = False
        self._fatal: "BaseException | None" = None
        self._latencies: list[int] = []
        self._checkpoint_specs: list[SessionSpec] = []
        self._pending_specs: list[SessionSpec] = []
        self._ids: dict[str, list[str]] = {}
        # Built in run(); annotated here for readability.
        self.fleet: DeviceFleet
        self.admission: AdmissionController
        self.controller: OverloadController
        self.run_queue: BoundedQueue

    # ------------------------------------------------------------------
    # External control surface
    # ------------------------------------------------------------------
    @property
    def drain_requested(self) -> bool:
        return self._drain_flag

    def request_drain(self) -> None:
        """Begin graceful drain.  Signal-handler safe: only sets a flag."""
        self._drain_flag = True

    def kill_session(self, session_id: str, reason: str = "killed") -> bool:
        """Chaos hook: cancel an active session (counted as failed)."""
        entry = self._active.get(session_id)
        if entry is None:
            return False
        session, task = entry
        session.cancel_reason = reason
        task.cancel()
        return True

    @property
    def active_session_ids(self) -> "list[str]":
        return sorted(self._active)

    # ------------------------------------------------------------------
    # Run / resume
    # ------------------------------------------------------------------
    def run(
        self,
        schedule: Sequence[SessionSpec] = (),
        *,
        chaos: "Any | None" = None,
        resume_from: "Path | str | None" = None,
        checkpoint_dir: "Path | str | None" = None,
    ) -> ServiceReport:
        """Serve *schedule* (plus any resumed checkpoint) to completion.

        *chaos*, if given, is an async callable taking this service; it
        is spawned on the device-time loop alongside the dispatcher and
        cancelled at shutdown (the load generator's kill lane).
        """
        if self._ran:
            raise ServiceError("an AttackService instance runs once")
        self._ran = True
        self._chaos = chaos
        resumed: list[SessionSpec] = []
        fresh = sorted(schedule, key=lambda s: (s.arrival_cycles, s.session_id))
        if resume_from is not None:
            manifest = self._load_manifest(Path(resume_from))
            resumed = [
                SessionSpec.from_json(raw) for raw in manifest["checkpointed"]
            ]
            fresh = [
                SessionSpec.from_json(raw) for raw in manifest["pending"]
            ] + fresh
            self.loop = DeviceTimeLoop(start_cycles=manifest["virtual_now"])
        try:
            self.loop.run(self._main(fresh, resumed))
        except ServiceError:
            # A background crash can starve the loop into its deadlock
            # detector; the recorded cause is the real story.
            if self._fatal is not None:
                raise self._fatal from None
            raise
        return self._finalize(checkpoint_dir)

    def _load_manifest(self, path: Path) -> dict[str, Any]:
        if not path.exists():
            raise CheckpointError(f"no service checkpoint at {path}")
        manifest = json.loads(path.read_text())
        expected = self.config.digest()
        actual = manifest.get("config_hash")
        if actual != expected:
            raise ResumeMismatchError(
                "service checkpoint was produced by a different config",
                expected=expected,
                actual=actual,
            )
        return manifest

    def _finalize(self, checkpoint_dir: "Path | str | None") -> ServiceReport:
        acct = self.accounting
        unacked: dict[str, int] = {}
        injectors = list(self.fleet.injectors())
        if self.injector is not None:
            injectors.append(self.injector)
        for injector in injectors:
            for site, count in _unacknowledged(injector).items():
                unacked[site] = unacked.get(site, 0) + count
        checkpoint_path = ""
        if self._drain_flag:
            target = Path(checkpoint_dir or ".") / CHECKPOINT_NAME
            atomic_write_json(
                target,
                {
                    "config_hash": self.config.digest(),
                    "seed": self.config.seed,
                    "virtual_now": self.loop.now,
                    "accounting": acct.to_json(),
                    "checkpointed": [
                        spec.to_json() for spec in self._checkpoint_specs
                    ],
                    "pending": [
                        spec.to_json() for spec in self._pending_specs
                    ],
                },
            )
            checkpoint_path = str(target)
            status = "drained"
        elif (
            self.controller.circuit_opened > 0
            and acct.offered > 0
            and acct.completed < self.config.completion_floor * acct.offered
        ):
            status = "overloaded"
        else:
            status = "completed"
        lane_stats = {
            "lanes": self.fleet.lane_count,
            "lanes_rebuilt": len(self.fleet.quarantined),
            "rounds_served": sum(
                lane.rounds_served
                for lane in (*self.fleet.lanes, *self.fleet.quarantined)
            ),
            "recalibrations": sum(
                lane.recalibrations
                for lane in (*self.fleet.lanes, *self.fleet.quarantined)
            ),
            "queue_high_water": self.run_queue.high_water,
        }
        return ServiceReport(
            status=status,
            accounting=acct,
            latency_cycles=_percentiles(self._latencies),
            virtual_cycles=self.loop.now,
            mode_transitions=list(self.controller.transitions),
            lane_stats=lane_stats,
            unacknowledged_faults=unacked,
            checkpoint_path=checkpoint_path,
            session_ids=dict(self._ids),
        )

    # ------------------------------------------------------------------
    # The device-time main
    # ------------------------------------------------------------------
    async def _main(
        self, fresh: "list[SessionSpec]", resumed: "list[SessionSpec]"
    ) -> None:
        cfg = self.config
        self.fleet = DeviceFleet(
            self.loop,
            self.checker,
            lanes=cfg.lanes,
            seed=cfg.seed,
            calibration_samples=cfg.lane_calibration_samples,
            policy=cfg.retry_policy,
            injector=self.injector,
            lane_fault_plan=cfg.fault_plan,
        )
        self.admission = AdmissionController(cfg, self.checker, self.injector)
        self.controller = OverloadController(cfg)
        self.run_queue = BoundedQueue(self.loop, cfg.queue_capacity)
        self._active: dict[str, tuple[AttackSession, asyncio.Task]] = {}
        self._open_offers = 0
        self._feeding = True
        self._done = VirtualEvent(self.loop)
        self._slot_free = VirtualEvent(self.loop)
        ticker = self.loop.spawn(
            self._guard(self._controller_loop()), name="controller"
        )
        dispatcher = self.loop.spawn(self._dispatcher(), name="dispatcher")
        chaos_task = None
        if self._chaos is not None:
            chaos_task = self.loop.spawn(
                self._guard(self._chaos(self)), name="chaos"
            )
        await self._feed(fresh, resumed)
        self._feeding = False
        while self._open_offers > 0 and self._fatal is None:
            self._done.clear()
            await self._done.wait()
        await self.run_queue.put(_STOP)
        await self.loop.join(dispatcher)
        for background in (ticker, chaos_task):
            if background is not None:
                background.cancel()
                await self.loop.join(background)
        if self._fatal is not None:
            raise self._fatal
        self.checker.final_audit(
            offered=self.accounting.offered,
            resumed=self.accounting.resumed,
            rejected=self.accounting.rejected_total,
            completed=self.accounting.completed,
            shed=self.accounting.shed,
            failed=self.accounting.failed_total,
            quarantined=self.accounting.quarantined,
            checkpointed=self.accounting.checkpointed,
            in_flight=len(self._active),
        )
        if not self.accounting.balances():
            raise ServiceError(
                "service accounting does not balance:"
                f" {self.accounting.to_json()}"
            )

    async def _feed(
        self, fresh: "list[SessionSpec]", resumed: "list[SessionSpec]"
    ) -> None:
        # Resumed sessions re-enter first: they were already mid-flight
        # when the previous run drained.
        for index, spec in enumerate(resumed):
            if self._drain_flag:
                self._pending_specs.extend(resumed[index:])
                self._pending_specs.extend(fresh)
                return
            self._open_offers += 1
            self.loop.spawn(
                self._guard(self._offer(spec, resumed=True)),
                name=f"offer-{spec.session_id}",
            )
        for index, spec in enumerate(fresh):
            if self._drain_flag:
                self._pending_specs.extend(fresh[index:])
                return
            await self.loop.sleep_until(spec.arrival_cycles)
            if self._drain_flag:
                self._pending_specs.extend(fresh[index:])
                return
            self._open_offers += 1
            self.loop.spawn(
                self._guard(self._offer(spec, resumed=False)),
                name=f"offer-{spec.session_id}",
            )

    # ------------------------------------------------------------------
    # Offer path (admission + backpressure)
    # ------------------------------------------------------------------
    def _note_id(self, path: str, session_id: str) -> None:
        if self.config.collect_session_ids:
            self._ids.setdefault(path, []).append(session_id)

    def _settle_offer(self, spec: SessionSpec, reason: str) -> None:
        """Final typed rejection of one offer."""
        sid = spec.session_id
        self.accounting.rejected[reason] = (
            self.accounting.rejected.get(reason, 0) + 1
        )
        self.checker.note_state(sid, STATE_CLOSED)
        self.checker.note_exit(sid, "rejected")
        self._note_id("rejected", sid)
        self._finish_one()

    def _finish_one(self) -> None:
        self._open_offers -= 1
        if self._open_offers == 0 and not self._feeding:
            self._done.set()

    async def _offer(self, spec: SessionSpec, resumed: bool) -> None:
        sid = spec.session_id
        if resumed:
            self.accounting.resumed += 1
        else:
            self.accounting.offered += 1
        self.checker.note_state(sid, STATE_OFFERED)
        for attempt in range(self.config.offer_retries + 1):
            if self._drain_flag:
                if resumed:
                    # A resumed session drained again before running:
                    # carry it forward untouched.
                    self._checkpoint_now(spec)
                    return
                self._settle_offer(spec, "draining")
                return
            if not resumed and not self.controller.admissions_open:
                self._settle_offer(spec, "circuit-open")
                return
            try:
                self.admission.admit(spec, self.loop.now, resumed=resumed)
            except AdmissionRejected as err:
                self._settle_offer(spec, err.reason or "rate-limit")
                return
            if self.run_queue.try_put(spec):
                self.checker.note_state(sid, STATE_ADMITTED)
                self.checker.note_queue(
                    len(self.run_queue), self.run_queue.capacity
                )
                return
            # Backpressure: undo the admission, tell the generator, and
            # back off inside the bounded retry budget.
            self.admission.release(spec, 0)
            self.accounting.backpressure_events += 1
            if attempt < self.config.offer_retries:
                await self.loop.sleep_cycles(
                    self.config.offer_backoff_cycles * (attempt + 1)
                )
        self._settle_offer(spec, "queue-full")

    def _checkpoint_now(self, spec: SessionSpec) -> None:
        """Checkpoint an admitted-or-resumed session that never ran."""
        sid = spec.session_id
        self.accounting.checkpointed += 1
        self._checkpoint_specs.append(spec)
        if self.checker.session_state(sid) == STATE_OFFERED:
            # A resumed session drained again before re-admission.
            self.checker.note_state(sid, STATE_ADMITTED)
        self.checker.note_state(sid, STATE_DRAINING)
        self.checker.note_state(sid, STATE_CLOSED)
        self.checker.note_exit(sid, EXIT_CHECKPOINTED)
        self._note_id(EXIT_CHECKPOINTED, sid)
        self._finish_one()

    # ------------------------------------------------------------------
    # Dispatch + supervision
    # ------------------------------------------------------------------
    async def _dispatcher(self) -> None:
        while True:
            item = await self.run_queue.get()
            if item is _STOP:
                return
            spec: SessionSpec = item
            self.checker.note_queue(
                len(self.run_queue), self.run_queue.capacity
            )
            if self._drain_flag:
                # Queued but never ran: release the tenant slot and
                # checkpoint directly — cheaper than a lane round-trip.
                self.admission.release(spec, 0)
                self._checkpoint_now(spec)
                continue
            while len(self._active) >= self.config.max_concurrent_sessions:
                self._slot_free.clear()
                await self._slot_free.wait()
            session = AttackSession(spec, self)
            task = self.loop.spawn(
                session.run(), name=f"session-{spec.session_id}"
            )
            self._active[spec.session_id] = (session, task)
            self.loop.spawn(
                self._guard(self._supervise(session, task)),
                name=f"supervise-{spec.session_id}",
            )

    async def _supervise(
        self, session: AttackSession, task: asyncio.Task
    ) -> None:
        await self.loop.join(task)
        spec = session.spec
        sid = spec.session_id
        if task.cancelled():
            reason = session.cancel_reason or "cancelled"
            self.checker.note_state(sid, STATE_CLOSED)
            outcome = SessionOutcome(
                spec=spec,
                exit_path=EXIT_SHED if reason == "shed" else EXIT_FAILED,
                reason=reason,
                latency_cycles=self.loop.now - session.admitted_at,
                rounds_done=session.rounds_done,
                device_cycles=session.device_cycles,
            )
        else:
            exc = task.exception()
            if exc is None:
                outcome = task.result()
            else:
                # Poisoned: an untyped error escaped the session's own
                # containment.  Quarantine the session, keep the fleet.
                self.poison_ledger[sid] = (
                    f"{type(exc).__name__}: {exc}"
                )
                self.checker.note_state(sid, STATE_CLOSED)
                outcome = SessionOutcome(
                    spec=spec,
                    exit_path="quarantined",
                    reason=type(exc).__name__,
                    latency_cycles=self.loop.now - session.admitted_at,
                    rounds_done=session.rounds_done,
                    device_cycles=session.device_cycles,
                )
        self._record_outcome(outcome)

    def _record_outcome(self, outcome: SessionOutcome) -> None:
        spec = outcome.spec
        sid = spec.session_id
        acct = self.accounting
        if outcome.exit_path == "completed":
            acct.completed += 1
            self._latencies.append(outcome.latency_cycles)
            self.controller.observe_latency(outcome.latency_cycles)
        elif outcome.exit_path == EXIT_SHED:
            acct.shed += 1
        elif outcome.exit_path == EXIT_CHECKPOINTED:
            acct.checkpointed += 1
            self._checkpoint_specs.append(outcome.resume_spec)
        elif outcome.exit_path == "quarantined":
            acct.quarantined += 1
        else:
            reason = outcome.reason or "error"
            acct.failed[reason] = acct.failed.get(reason, 0) + 1
        self.admission.release(spec, outcome.device_cycles)
        self.checker.note_exit(sid, outcome.exit_path)
        self._note_id(outcome.exit_path, sid)
        del self._active[sid]
        self._slot_free.set()
        self._finish_one()

    # ------------------------------------------------------------------
    # The overload controller's tick
    # ------------------------------------------------------------------
    async def _guard(self, coro: "Any") -> None:
        """Record a background coroutine's crash instead of losing it.

        An unretrieved task exception would otherwise surface much
        later as an opaque device-time deadlock; recording it lets the
        main coroutine (or ``run()``'s deadlock fallback) re-raise the
        real failure.
        """
        try:
            await coro
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # repro-lint: ignore[EXC001]
            # Deliberate: recorded here, re-raised by the main coroutine.
            if self._fatal is None:
                self._fatal = exc
            self._done.set()
            self._slot_free.set()

    async def _controller_loop(self) -> None:
        while True:
            await self.loop.sleep_cycles(self.config.controller_tick_cycles)
            self.controller.observe_queue(
                len(self.run_queue), self.run_queue.capacity
            )
            self.controller.update(self.loop.now)
            if self.controller.shedding:
                self._shed_pass()

    def _shed_pass(self) -> None:
        sheddable = [
            (session.spec.priority, sid)
            for sid, (session, _task) in self._active.items()
            if not session.cancel_reason
        ]
        if not sheddable:
            return
        sheddable.sort()
        floor = sheddable[0][0]
        # One priority band per tick: shedding above the floor while
        # floor-priority sessions remain is the unfair shed the checker
        # trips on.  If pressure persists, the next tick's floor rises.
        victims = [entry for entry in sheddable if entry[0] == floor]
        quota = self.controller.shed_quota(len(sheddable))
        for priority, sid in victims[:quota]:
            session, task = self._active[sid]
            session.cancel_reason = "shed"
            self.checker.note_shed(sid, priority, floor)
            task.cancel()
