"""CLI entry point: ``python -m repro.service``.

Runs the always-on session service against a generated open-loop
schedule (or a drain checkpoint via ``--resume``) and exits with the
runner's documented status codes:

=====  ==========================================================
code   meaning
=====  ==========================================================
0      run completed; accounting balanced
6      an invariant tripped: service bookkeeping untrusted
9      overloaded: the circuit opened and the completion floor
       was missed (:class:`~repro.errors.ServiceOverloadError`)
130    SIGTERM drain: active sessions checkpointed for ``--resume``
=====  ==========================================================

SIGTERM is the graceful-drain signal: the handler only flips the
service's drain flag (signal-safe); the device-time loop then stops
admissions with typed ``draining`` rejections, finishes or checkpoints
every in-flight session, and writes the drain checkpoint before exit.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.errors import (
    InvariantViolation,
    ResumeMismatchError,
    ServiceOverloadError,
)
from repro.experiments.checkpoint import atomic_write_json
from repro.experiments.runner import EXIT_CONFIG_MISMATCH, EXIT_INVARIANT
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.sites import SERVICE_SITES
from repro.service.app import AttackService
from repro.service.config import ServiceConfig
from repro.service.loadgen import (
    LoadConfig,
    build_schedule,
    make_session_killer,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the always-on attack session service.",
    )
    parser.add_argument("--sessions", type=int, default=1000)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--load-seed", type=int, default=7)
    parser.add_argument(
        "--mean-interarrival-cycles", type=float, default=50_000.0
    )
    parser.add_argument("--queue-capacity", type=int, default=1024)
    parser.add_argument("--max-concurrent", type=int, default=2048)
    parser.add_argument("--probe-rounds", type=int, default=3)
    parser.add_argument(
        "--chaos-prob",
        type=float,
        default=0.0,
        help="arm every service fault site at this per-opportunity"
        " probability (0 disables the chaos plan)",
    )
    parser.add_argument(
        "--kill-prob",
        type=float,
        default=0.0,
        help="session-kill chaos lane probability per wake",
    )
    parser.add_argument(
        "--stampede-fraction",
        type=float,
        default=0.0,
        help="fraction of sessions arriving as one stampeding tenant",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=".",
        help="where a SIGTERM drain writes its checkpoint",
    )
    parser.add_argument(
        "--resume",
        default=None,
        help="resume from a drain checkpoint written by a previous run",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="write the JSON service report to this path",
    )
    parser.add_argument(
        "--collect-session-ids",
        action="store_true",
        help="record per-exit-path session ids in the report",
    )
    return parser


def _chaos_plan(seed: int, probability: float) -> "FaultPlan | None":
    if probability <= 0.0:
        return None
    return FaultPlan(
        seed=seed,
        specs=tuple(
            FaultSpec(site=site, probability=probability)
            for site in SERVICE_SITES
        ),
    )


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    config = ServiceConfig(
        seed=args.seed,
        lanes=args.lanes,
        queue_capacity=args.queue_capacity,
        max_concurrent_sessions=args.max_concurrent,
        fault_plan=_chaos_plan(args.seed, args.chaos_prob),
        collect_session_ids=args.collect_session_ids,
    )
    load = LoadConfig(
        sessions=args.sessions,
        tenants=args.tenants,
        seed=args.load_seed,
        mean_interarrival_cycles=args.mean_interarrival_cycles,
        probe_rounds=args.probe_rounds,
        kill_probability=args.kill_prob,
        stampede_fraction=args.stampede_fraction,
    )
    service = AttackService(config)
    signal.signal(signal.SIGTERM, lambda *_args: service.request_drain())
    # A resumed run's work comes from the checkpoint (re-admitted
    # in-flight sessions plus the unoffered pending tail); offering a
    # freshly generated schedule on top would replay the same session
    # ids into a second life.
    schedule = [] if args.resume else build_schedule(load)
    try:
        report = service.run(
            schedule,
            chaos=make_session_killer(load),
            resume_from=args.resume,
            checkpoint_dir=args.checkpoint_dir,
        )
    except ResumeMismatchError as exc:
        print(f"resume mismatch: {exc}", file=sys.stderr)
        return EXIT_CONFIG_MISMATCH
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return EXIT_INVARIANT
    if args.report:
        atomic_write_json(args.report, report.to_json())
    acct = report.accounting
    print(
        f"status={report.status}"
        f" offered={acct.offered} resumed={acct.resumed}"
        f" completed={acct.completed} rejected={acct.rejected_total}"
        f" shed={acct.shed} failed={acct.failed_total}"
        f" quarantined={acct.quarantined}"
        f" checkpointed={acct.checkpointed}"
        f" p50={report.latency_cycles['p50']:.0f}cyc"
        f" p99={report.latency_cycles['p99']:.0f}cyc"
        f" virtual={report.virtual_cycles}cyc"
    )
    if report.checkpoint_path:
        print(f"drain checkpoint: {report.checkpoint_path}")
    if report.status == "overloaded":
        overload = ServiceOverloadError(
            f"completed {acct.completed}/{acct.offered} below the"
            f" {config.completion_floor:.0%} floor with the circuit open"
        )
        print(f"overloaded: {overload}", file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
