"""Admission control: the service's front door.

Three gates run in order, each with a *typed* refusal
(:class:`~repro.errors.AdmissionRejected` carrying a closed-set
``reason``), so every turned-away session is accounted by cause rather
than silently dropped:

1. the overload controller's circuit breaker (``circuit-open``) and
   graceful drain (``draining``) — checked by the caller before the
   bucket is even consulted;
2. the service-wide token bucket (``rate-limit``) — a sustained
   sessions-per-megacycle rate with a burst allowance, replenished on
   device time;
3. the tenant's isolation budget (``tenant-quota``) — remaining device
   cycles and an in-flight cap, so one stampeding tenant cannot starve
   the fleet for everyone else.

The ``service_admission_flap`` chaos site fires here: a spuriously
refused admissible session surfaces as ``reason="admission-flap"`` and
is acknowledged to the injector — flakiness is *handled* by being
typed, counted, and visible to the retrying load generator.

Every token and budget movement is narrated to the
``ServiceStateChecker``: tokens and budgets may brush zero but never go
negative, which the Hypothesis property suite exercises directly on
:class:`TokenBucket` / :class:`TenantBudget`.
"""

from __future__ import annotations

from repro.errors import AdmissionRejected, ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultSite
from repro.invariants.service import ServiceStateChecker
from repro.service.config import ServiceConfig, TenantPolicy
from repro.service.session import SessionSpec


class TokenBucket:
    """A deterministic token bucket on the device clock.

    ``rate_per_mcycle`` tokens accrue per 10⁶ device cycles up to
    ``burst``; :meth:`take` either consumes one token or reports how
    many cycles until one will be available (the ``retry_after_cycles``
    hint carried by the rejection).
    """

    def __init__(self, rate_per_mcycle: float, burst: int) -> None:
        if rate_per_mcycle <= 0 or burst < 1:
            raise ConfigurationError("token bucket needs positive rate/burst")
        self._rate = rate_per_mcycle / 1_000_000.0
        self._burst = float(burst)
        self._tokens = float(burst)
        self._stamp = 0

    @property
    def burst(self) -> int:
        return int(self._burst)

    def tokens(self, now: int) -> float:
        """Tokens available at device time *now* (never negative)."""
        self._refill(now)
        return self._tokens

    def _refill(self, now: int) -> None:
        if now > self._stamp:
            self._tokens = min(
                self._burst, self._tokens + (now - self._stamp) * self._rate
            )
            self._stamp = now

    def take(self, now: int) -> tuple[bool, int]:
        """Consume one token at *now*.

        Returns ``(True, 0)`` on success, else ``(False, retry_after)``
        with the cycle count after which a token will have accrued.
        """
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0
        deficit = 1.0 - self._tokens
        return False, int(deficit / self._rate) + 1


class TenantBudget:
    """One tenant's isolation ledger: device cycles and in-flight slots.

    Both counters are clamped-by-construction: a charge larger than the
    remainder raises instead of going negative, and releases of slots
    never held trip the narrating checker.
    """

    def __init__(self, tenant: str, policy: TenantPolicy) -> None:
        self.tenant = tenant
        self.policy = policy
        self.remaining_cycles = policy.device_cycle_quota
        self.in_flight = 0
        self.cycles_charged = 0

    def can_admit(self) -> bool:
        return (
            self.in_flight < self.policy.max_in_flight
            and self.remaining_cycles > 0
        )

    def admit(self) -> None:
        if self.in_flight >= self.policy.max_in_flight:
            raise AdmissionRejected(
                tenant=self.tenant, reason="tenant-quota"
            )
        self.in_flight += 1

    def release(self) -> None:
        if self.in_flight <= 0:
            raise ConfigurationError(
                f"tenant {self.tenant}: release without admit"
            )
        self.in_flight -= 1

    def charge(self, cycles: int) -> None:
        """Deduct *cycles* of device time (clamped at the quota floor).

        Over-quota usage is legal mid-session — the session that spends
        the last cycles finishes its round — but the budget floors at
        zero so the invariant "no budget ever goes negative" holds, and
        the *next* admission for this tenant is refused.
        """
        spent = min(max(0, int(cycles)), self.remaining_cycles)
        self.remaining_cycles -= spent
        self.cycles_charged += int(cycles)


class AdmissionController:
    """Applies the bucket and tenant gates, narrating every movement."""

    def __init__(
        self,
        config: ServiceConfig,
        checker: ServiceStateChecker,
        injector: FaultInjector | None = None,
    ) -> None:
        self._config = config
        self._checker = checker
        self._injector = injector
        self.bucket = TokenBucket(
            config.admission_rate_per_mcycle, config.admission_burst
        )
        self._tenants: dict[str, TenantBudget] = {}
        self.admitted = 0
        self.rejected_by_reason: dict[str, int] = {}

    def tenant(self, name: str) -> TenantBudget:
        budget = self._tenants.get(name)
        if budget is None:
            budget = TenantBudget(name, self._config.tenant_policy)
            self._tenants[name] = budget
        return budget

    @property
    def tenants(self) -> dict[str, TenantBudget]:
        return dict(self._tenants)

    def _reject(
        self,
        spec: SessionSpec,
        reason: str,
        retry_after: int | None = None,
    ) -> AdmissionRejected:
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1
        )
        return AdmissionRejected(
            f"session {spec.session_id} refused: {reason}",
            tenant=spec.tenant,
            reason=reason,
            retry_after_cycles=retry_after,
        )

    def admit(
        self, spec: SessionSpec, now: int, resumed: bool = False
    ) -> TenantBudget:
        """Admit *spec* or raise the typed rejection.

        On success the tenant's in-flight slot is held — the supervisor
        releases it on the session's terminal transition.  A *resumed*
        session (re-entering from a drain checkpoint) already paid the
        token bucket in its first life, so it skips the bucket and the
        flap site and only re-takes its tenant slot — which cannot
        overflow, because resumed sessions re-enter before any fresh
        offer and their count is bounded by the previous run's in-flight.
        """
        if resumed:
            budget = self.tenant(spec.tenant)
            budget.admit()
            self.admitted += 1
            self._note_tenant(budget)
            return budget
        if self._injector is not None:
            event = self._injector.fire(
                FaultSite.SERVICE_ADMISSION_FLAP, timestamp=now
            )
            if event is not None:
                self._injector.acknowledge(
                    event, "typed-rejection-surfaced-to-loadgen"
                )
                raise self._reject(spec, "admission-flap")
        ok, retry_after = self.bucket.take(now)
        self._checker.note_tokens(self.bucket.tokens(now))
        if not ok:
            raise self._reject(spec, "rate-limit", retry_after)
        budget = self.tenant(spec.tenant)
        if not budget.can_admit():
            raise self._reject(spec, "tenant-quota")
        budget.admit()
        self.admitted += 1
        self._note_tenant(budget)
        return budget

    def release(self, spec: SessionSpec, cycles_used: int) -> None:
        """Return the tenant slot and charge the session's device time."""
        budget = self.tenant(spec.tenant)
        budget.charge(cycles_used)
        budget.release()
        self._note_tenant(budget)

    def _note_tenant(self, budget: TenantBudget) -> None:
        self._checker.note_tenant(
            budget.tenant,
            budget.remaining_cycles,
            budget.in_flight,
            budget.policy.max_in_flight,
        )
