"""Service configuration: one frozen, hashable description of a run.

Everything the always-on service does is a pure function of
``(ServiceConfig, schedule)``; the config therefore serializes to
canonical JSON and hashes via the same
:func:`repro.experiments.checkpoint.config_hash` machinery the batch
runner uses — a drain checkpoint records the hash, and resume refuses a
mismatched config exactly like ``--resume`` does.

Thresholds are expressed in device cycles (:data:`~repro.hw.units
.DEFAULT_TSC_HZ` ticks), never host seconds: the service's only clock
is the device-time loop.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.calibration import CalibrationPolicy
from repro.errors import ConfigurationError
from repro.experiments.checkpoint import config_hash
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant isolation budget.

    ``device_cycle_quota`` caps the total device time a tenant's
    sessions may consume across the run; ``max_in_flight`` caps its
    concurrently admitted sessions.  Both are enforced at admission and
    audited (non-negative, cap respected) by the
    ``ServiceStateChecker`` fairness invariant.
    """

    device_cycle_quota: int = 2_000_000_000
    max_in_flight: int = 256

    def __post_init__(self) -> None:
        if self.device_cycle_quota <= 0 or self.max_in_flight <= 0:
            raise ConfigurationError(
                "tenant quota and in-flight cap must be positive"
            )


@dataclass(frozen=True)
class ServiceConfig:
    """The knobs of one service run (see ``docs/service.md``)."""

    seed: int = 2026
    #: Device fleet: lanes are independent ``CloudSystem`` instances on
    #: the E1 topology, each calibrated once at startup; sessions share
    #: the lane threshold instead of paying a per-session calibration.
    lanes: int = 4
    lane_calibration_samples: int = 40
    #: Token-bucket admission: sustained rate in sessions per million
    #: device cycles, with a burst allowance.
    admission_rate_per_mcycle: float = 400.0
    admission_burst: int = 512
    #: Bounded admission queue (backpressure boundary) and its bounded
    #: retry budget before an offer is finally rejected ``queue-full``.
    queue_capacity: int = 1024
    offer_retries: int = 3
    offer_backoff_cycles: int = 20_000
    #: Dispatcher concurrency cap: sessions actually running (holding
    #: or queuing for lanes) at once.
    max_concurrent_sessions: int = 2048
    #: Per-session budgets; ``retry_policy.max_attempts`` bounds lane
    #: retries (revocation, transient attack errors) and the backoff
    #: between attempts grows by ``retry_policy.sample_growth``.
    default_deadline_cycles: int = 80_000_000
    retry_policy: CalibrationPolicy = field(default_factory=CalibrationPolicy)
    #: Per-tenant isolation (one policy for every tenant).
    tenant_policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: Overload controller: EWMA of completed-session latency (cycles),
    #: blended with queue occupancy, against enter/exit thresholds.
    ewma_alpha: float = 0.2
    controller_tick_cycles: int = 500_000
    degraded_pressure: float = 1.0
    shed_pressure: float = 2.0
    circuit_pressure: float = 4.0
    #: Hysteresis: pressure must fall below ``exit_ratio`` × the entry
    #: threshold (and dwell a tick) before the controller steps down.
    exit_ratio: float = 0.7
    #: Latency the pressure score treats as 1.0 (the "expected" session).
    target_latency_cycles: int = 10_000_000
    #: Cadence degradation multiplier applied between probe rounds while
    #: the controller is in ``degraded`` (or worse).
    degraded_cadence_multiplier: int = 4
    inter_round_gap_cycles: int = 50_000
    #: Completion floor for the overload exit gate: finishing with the
    #: circuit having opened *and* ``completed/offered`` below this
    #: floor maps to ``EXIT_OVERLOAD``.
    completion_floor: float = 0.5
    #: Chaos plan evaluated by the service's control-plane injector
    #: (``SERVICE_SITES``) and by each lane's device injector.
    fault_plan: FaultPlan | None = None
    #: Record per-exit-path session ids in the report (tests/small runs
    #: only — the 10⁵ bench keeps this off).
    collect_session_ids: bool = False

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigurationError("a service needs at least one lane")
        if self.admission_rate_per_mcycle <= 0 or self.admission_burst < 1:
            raise ConfigurationError("admission bucket must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if not (
            0
            < self.degraded_pressure
            < self.shed_pressure
            < self.circuit_pressure
        ):
            raise ConfigurationError(
                "pressure thresholds must be ordered"
                " degraded < shed < circuit"
            )
        if not 0.0 <= self.completion_floor <= 1.0:
            raise ConfigurationError("completion_floor must be in [0, 1]")

    def to_json(self) -> dict[str, Any]:
        """Canonical JSON form (the input to :func:`config_hash`)."""
        raw = {
            key: value
            for key, value in vars(self).items()
            # collect_session_ids is pure observability: it cannot
            # change a run's behavior, so it must not bind the
            # drain-checkpoint hash.
            if key
            not in (
                "fault_plan",
                "retry_policy",
                "tenant_policy",
                "collect_session_ids",
            )
        }
        raw["retry_policy"] = asdict(self.retry_policy)
        raw["tenant_policy"] = asdict(self.tenant_policy)
        raw["fault_plan"] = (
            None
            if self.fault_plan is None
            else {
                "seed": self.fault_plan.seed,
                "specs": [
                    {
                        "site": spec.site.value,
                        "probability": spec.probability,
                        "period_us": spec.period_us,
                        "start_us": spec.start_us,
                        "stop_us": spec.stop_us,
                        "magnitude_cycles": spec.magnitude_cycles,
                        "kind": spec.kind,
                        "pasid": spec.pasid,
                        "wq_id": spec.wq_id,
                        "engine_id": spec.engine_id,
                    }
                    for spec in self.fault_plan.specs
                ],
            }
        )
        return raw

    def digest(self) -> str:
        """Stable hash binding drain checkpoints to this config."""
        return config_hash(self.to_json())
