"""Deterministic device-time asyncio: the service's only clock.

The service multiplexes up to 10⁵ session coroutines, yet must stay a
pure function of ``(config, seed)`` — the same reproducibility bar the
batch runner meets.  Host-clock asyncio cannot deliver that: wakeup
order would depend on scheduler jitter.  So the service runs on
*device time* instead: a single integer cycle counter that only
advances when every task is parked, exactly like
:class:`repro.virt.scheduler.Timeline` but for coroutines.

How it works
------------
:class:`DeviceTimeLoop` wraps a vanilla asyncio loop and keeps

* ``now`` — the current virtual cycle count;
* a min-heap of ``(due_cycles, seq, future)`` wakeups;
* a *busy counter* — the number of live tasks **not** parked on a loop
  primitive.

The driver lets asyncio run (``await asyncio.sleep(0)``) until the busy
counter hits zero — every task has either finished or parked — then
pops the earliest heap entry, advances ``now`` to its due time, and
wakes it (incrementing busy *before* resolving the future, so time can
never advance past a pending wakeup).  Ties resolve by insertion order,
making the whole schedule deterministic.

The contract this imposes on service code — **every** await must go
through a loop primitive (:meth:`DeviceTimeLoop.sleep_cycles`,
:class:`VirtualEvent`, :class:`VirtualLock`, :class:`BoundedQueue`,
:meth:`DeviceTimeLoop.join`) and blocking host calls (``time.sleep``,
sync file I/O, ``Event.wait``) are forbidden in anything the loop can
reach — is enforced statically by the ``ASY101`` lint rule.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from typing import Any, Coroutine

from repro.errors import ServiceError

#: Consecutive zero-progress scheduler passes tolerated before the
#: driver declares the loop wedged (a task awaited something that is
#: not a loop primitive).  Each pass runs every ready callback once, so
#: legitimate hand-off chains finish in a handful of passes.
MAX_IDLE_SPINS = 100_000


class DeviceTimeLoop:
    """A virtual-time cooperative scheduler over asyncio."""

    def __init__(self, start_cycles: int = 0) -> None:
        self._cycles = int(start_cycles)
        self._heap: list[tuple[int, int, asyncio.Future]] = []
        self._seq = 0
        self._busy = 0
        self._tasks: set[asyncio.Task] = set()
        self._aio: asyncio.AbstractEventLoop | None = None
        self.wakeups = 0

    @property
    def now(self) -> int:
        """Current virtual time in cycles."""
        return self._cycles

    @property
    def live_tasks(self) -> int:
        """Tasks spawned on this loop that have not finished."""
        return len(self._tasks)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, main: Coroutine[Any, Any, Any]) -> Any:
        """Drive *main* (and everything it spawns) to completion.

        Returns *main*'s result; re-raises its exception.  Tasks still
        alive when *main* finishes are cancelled — the root coroutine
        owns the lifecycle of everything it spawned.
        """
        return asyncio.run(self._drive(main))

    async def _drive(self, main: Coroutine[Any, Any, Any]) -> Any:
        self._aio = asyncio.get_running_loop()
        root = self.spawn(main, name="service-main")
        try:
            while True:
                await self._settle()
                if root.done():
                    break
                self._prune()
                if self._heap:
                    self._fire_due()
                    continue
                # Empty heap with tasks alive is *usually* a deadlock —
                # but a just-cancelled task's CancelledError step may
                # still sit in asyncio's ready queue, not yet counted
                # busy.  Grant a few grace passes to flush it (each
                # pass drains the whole ready queue once; a pending
                # wakeup raises ``busy`` or posts a heap entry within
                # two) before declaring the loop dead.
                for _ in range(8):
                    await asyncio.sleep(0)
                    self._prune()
                    if self._busy > 0 or self._heap:
                        break
                else:
                    raise ServiceError(
                        "device-time deadlock: every task is parked and"
                        f" no wakeup is scheduled ({self.live_tasks} live"
                        f" tasks at cycle {self._cycles})"
                    )
        finally:
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)
            self._aio = None
        return root.result()

    async def _settle(self) -> None:
        """Yield to asyncio until every live task is parked.

        Always yields at least once: a just-cancelled task is *ready*
        (asyncio queued its ``CancelledError`` step) but not counted
        busy until it actually runs, so a pass is owed even when the
        counter already reads zero.
        """
        spins = 0
        while True:
            await asyncio.sleep(0)
            if self._busy <= 0:
                return
            spins += 1
            if spins > MAX_IDLE_SPINS:
                raise ServiceError(
                    f"device-time loop wedged: {self._busy} task(s) stayed"
                    f" runnable for {MAX_IDLE_SPINS} scheduler passes —"
                    " something awaited outside the loop's primitives"
                )

    def _prune(self) -> None:
        """Drop dead wakeups (cancelled parks) from the heap head so
        virtual time never advances to a wakeup nobody is waiting on."""
        while self._heap and self._heap[0][2].done():
            heapq.heappop(self._heap)

    def _fire_due(self) -> None:
        """Advance ``now`` to the earliest wakeup and fire the batch."""
        self._cycles = max(self._cycles, self._heap[0][0])
        while self._heap and self._heap[0][0] <= self._cycles:
            _, _, fut = heapq.heappop(self._heap)
            self._wake(fut)

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------
    def spawn(self, coro: Coroutine[Any, Any, Any], name: str = "") -> asyncio.Task:
        """Schedule *coro* as a task counted by the busy tracker."""
        if self._aio is None:
            raise ServiceError(
                "spawn() outside run(): the device-time loop is not driving"
            )
        task = self._aio.create_task(coro, name=name or f"svc-{self._seq}")
        self._busy += 1
        self._tasks.add(task)
        task.add_done_callback(self._on_task_done)
        return task

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._busy -= 1
        self._tasks.discard(task)

    async def join(self, task: asyncio.Task) -> None:
        """Park until *task* finishes (by any means).

        Deliberately does **not** re-raise the task's exception — the
        supervisor inspects ``task.cancelled()`` / ``task.exception()``
        itself, which is how poisoned sessions are contained without a
        broad ``except``.
        """
        if task.done():
            return
        fut = self._future()
        task.add_done_callback(lambda _t: self._wake_soon(fut))
        await self._park(fut)

    # ------------------------------------------------------------------
    # Time primitives
    # ------------------------------------------------------------------
    async def sleep_cycles(self, cycles: int) -> None:
        """Park for *cycles* of device time (0 still yields a full turn)."""
        await self.sleep_until(self._cycles + max(0, int(cycles)))

    async def sleep_until(self, due_cycles: int) -> None:
        """Park until virtual time reaches *due_cycles*."""
        fut = self._future()
        self._schedule(max(int(due_cycles), self._cycles), fut)
        await self._park(fut)

    # ------------------------------------------------------------------
    # Internals shared with the primitives below
    # ------------------------------------------------------------------
    def _future(self) -> asyncio.Future:
        if self._aio is None:
            raise ServiceError("loop primitive used outside run()")
        return self._aio.create_future()

    def _schedule(self, due: int, fut: asyncio.Future) -> None:
        heapq.heappush(self._heap, (due, self._seq, fut))
        self._seq += 1

    def _wake_soon(self, fut: asyncio.Future) -> None:
        """Queue *fut* to fire at the current virtual instant."""
        self._schedule(self._cycles, fut)

    def _wake(self, fut: asyncio.Future) -> None:
        if not fut.done():
            self._busy += 1
            self.wakeups += 1
            fut.set_result(None)

    async def _park(self, fut: asyncio.Future) -> None:
        """Block the calling task on *fut*, maintaining the busy count.

        The waker (heap pop, event set, lock release) increments busy
        *before* resolving the future; cancellation is the one wake
        path with no waker, so it restores the count itself.
        """
        self._busy -= 1
        try:
            await fut
        except asyncio.CancelledError:
            self._busy += 1
            raise


class VirtualEvent:
    """An :class:`asyncio.Event` lookalike parked on device time."""

    def __init__(self, loop: DeviceTimeLoop) -> None:
        self._loop = loop
        self._flag = False
        self._waiters: deque[asyncio.Future] = deque()

    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        """Set the flag; every waiter wakes at the current instant."""
        self._flag = True
        while self._waiters:
            self._loop._wake_soon(self._waiters.popleft())

    def clear(self) -> None:
        self._flag = False

    async def wait(self) -> None:
        while not self._flag:
            fut = self._loop._future()
            self._waiters.append(fut)
            await self._loop._park(fut)


class VirtualLock:
    """A mutual-exclusion lock whose waiters wake in FIFO order.

    Custody of a device lane flows through one of these: waiters queue
    deterministically and the release hands the wake to the head of the
    queue at the current virtual instant.
    """

    def __init__(self, loop: DeviceTimeLoop) -> None:
        self._loop = loop
        self._locked = False
        self._waiters: deque[asyncio.Future] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def waiting(self) -> int:
        """Waiters currently parked on this lock."""
        return sum(1 for fut in self._waiters if not fut.done())

    async def acquire(self) -> None:
        while self._locked:
            fut = self._loop._future()
            self._waiters.append(fut)
            await self._loop._park(fut)
        self._locked = True

    def release(self) -> None:
        if not self._locked:
            raise ServiceError("release() of an unlocked VirtualLock")
        self._locked = False
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                self._loop._wake_soon(fut)
                break

    async def __aenter__(self) -> "VirtualLock":
        await self.acquire()
        return self

    async def __aexit__(self, *exc: object) -> None:
        self.release()


class BoundedQueue:
    """A bounded FIFO queue with *explicit* backpressure.

    ``try_put`` is the non-blocking front door: a ``False`` return is
    the backpressure signal the admission path converts into a typed
    ``queue-full`` rejection (after its bounded retry budget), so the
    load generator always learns it was pushed back — nothing blocks
    silently and nothing is dropped on the floor.
    """

    def __init__(self, loop: DeviceTimeLoop, capacity: int) -> None:
        if capacity < 1:
            raise ServiceError(f"queue capacity must be >= 1, got {capacity}")
        self._loop = loop
        self._capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[asyncio.Future] = deque()
        self._putters: deque[asyncio.Future] = deque()
        self.high_water = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def _wake_one(self, waiters: "deque[asyncio.Future]") -> None:
        while waiters:
            fut = waiters.popleft()
            if not fut.done():
                self._loop._wake_soon(fut)
                return

    def try_put(self, item: Any) -> bool:
        """Enqueue *item*, or report backpressure without blocking."""
        if len(self._items) >= self._capacity:
            return False
        self._items.append(item)
        self.high_water = max(self.high_water, len(self._items))
        self._wake_one(self._getters)
        return True

    async def put(self, item: Any) -> None:
        """Enqueue *item*, parking (backpressured) while the queue is full."""
        while not self.try_put(item):
            fut = self._loop._future()
            self._putters.append(fut)
            await self._loop._park(fut)

    async def get(self) -> Any:
        while not self._items:
            fut = self._loop._future()
            self._getters.append(fut)
            await self._loop._park(fut)
        item = self._items.popleft()
        self._wake_one(self._putters)
        return item

    def drain(self) -> list[Any]:
        """Remove and return every queued item (used by graceful drain)."""
        items = list(self._items)
        self._items.clear()
        while self._putters:
            self._wake_one(self._putters)
        return items
