"""The always-on attack session service (``python -m repro.service``).

Every other entry point in this repository is a batch ``run_experiment``
invocation; this package is the long-lived process the ROADMAP's
"heavy traffic" north star asks for.  It multiplexes thousands to 10⁵
concurrent covert-channel/probe *sessions* — each an async state
machine ``ADMITTED → CALIBRATING → ACTIVE → DRAINING → CLOSED`` — onto
a fleet of simulated :class:`~repro.virt.system.CloudSystem` devices.

The robustness layer is the headline, not the attacks themselves:

* :mod:`repro.service.loop` — a deterministic *device-time* asyncio
  driver: sessions park on simulated-cycle wakeups, never the host
  clock, so an identical seed replays an identical run;
* :mod:`repro.service.admission` — token-bucket admission with typed
  rejection (:class:`~repro.errors.AdmissionRejected`) and per-tenant
  isolation budgets;
* :mod:`repro.service.session` — per-session deadline/retry budgets
  reusing the :class:`~repro.core.calibration.CalibrationPolicy`
  bounded-retry machinery;
* :mod:`repro.service.devices` — lane custody over the device fleet,
  with quarantine-and-rebuild on revocation;
* :mod:`repro.service.controller` — the EWMA overload controller
  (degrade cadence → shed lowest priority → circuit-break admissions);
* :mod:`repro.service.app` — supervision, exact exit-path accounting,
  SIGTERM graceful drain via the atomic checkpoint machinery;
* :mod:`repro.service.loadgen` — the open-loop load generator and its
  chaos lanes (session kill, tenant stampede, device fault sites).

Every state transition, lane hand-off, and budget movement is narrated
to :class:`repro.invariants.ServiceStateChecker`; the final audit
proves the conservation law ``offered + resumed == rejected + completed
+ shed + failed + quarantined + checkpointed`` held exactly.

See ``docs/service.md`` for the state machine and drain semantics.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.app import AttackService, ServiceReport
from repro.service.config import ServiceConfig
from repro.service.controller import OverloadController
from repro.service.devices import DeviceFleet, DeviceLane
from repro.service.loadgen import LoadConfig, build_schedule, run_load
from repro.service.loop import (
    BoundedQueue,
    DeviceTimeLoop,
    VirtualEvent,
    VirtualLock,
)
from repro.service.session import AttackSession, SessionOutcome, SessionSpec

__all__ = [
    "AdmissionController",
    "AttackService",
    "AttackSession",
    "BoundedQueue",
    "DeviceFleet",
    "DeviceLane",
    "DeviceTimeLoop",
    "LoadConfig",
    "OverloadController",
    "ServiceConfig",
    "ServiceReport",
    "SessionOutcome",
    "SessionSpec",
    "TokenBucket",
    "VirtualEvent",
    "VirtualLock",
    "build_schedule",
    "run_load",
]
