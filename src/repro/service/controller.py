"""The overload controller: degrade, then shed, then circuit-break.

The service never fails open under overload — it degrades in three
deliberate steps, each cheaper than the last:

``normal → degraded``
    Probe cadence stretches (sessions sleep
    ``degraded_cadence_multiplier`` × longer between rounds).  Every
    admitted session still completes; throughput bends instead of
    breaking.
``degraded → shedding``
    The service sheds *lowest-priority* active sessions (deterministic
    tie-break by session id) until pressure subsides.  Shedding is a
    typed exit path, fully accounted — never a timeout.
``shedding → circuit-open``
    New admissions are refused (``circuit-open``) while the backlog
    drains.  Hysteresis (``exit_ratio`` plus a one-tick dwell) keeps
    the breaker from flapping.

Pressure is a blend of an EWMA of completed-session latency (in device
cycles, normalized by ``target_latency_cycles``) and instantaneous
queue occupancy — the two signals that rise first when offered load
outruns the fleet.
"""

from __future__ import annotations

from repro.service.config import ServiceConfig

MODE_NORMAL = "normal"
MODE_DEGRADED = "degraded"
MODE_SHEDDING = "shedding"
MODE_CIRCUIT_OPEN = "circuit-open"

_ORDER = (MODE_NORMAL, MODE_DEGRADED, MODE_SHEDDING, MODE_CIRCUIT_OPEN)


class OverloadController:
    """EWMA pressure tracking with hysteresis between modes."""

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self.mode = MODE_NORMAL
        self.ewma_latency = 0.0
        self._queue_ratio = 0.0
        self._ticks_in_mode = 0
        self.circuit_opened = 0
        self.transitions: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def observe_latency(self, latency_cycles: int) -> None:
        """Fold one completed-session latency into the EWMA."""
        alpha = self._config.ewma_alpha
        if self.ewma_latency == 0.0:
            self.ewma_latency = float(latency_cycles)
        else:
            self.ewma_latency += alpha * (latency_cycles - self.ewma_latency)

    def observe_queue(self, depth: int, capacity: int) -> None:
        self._queue_ratio = depth / capacity if capacity else 0.0

    @property
    def pressure(self) -> float:
        """The blended overload score (1.0 ≈ the target operating point)."""
        latency_ratio = (
            self.ewma_latency / self._config.target_latency_cycles
        )
        return 0.7 * latency_ratio + 1.3 * self._queue_ratio

    # ------------------------------------------------------------------
    # Mode machine
    # ------------------------------------------------------------------
    def _target_mode(self) -> str:
        p = self.pressure
        cfg = self._config
        entry = {
            MODE_CIRCUIT_OPEN: cfg.circuit_pressure,
            MODE_SHEDDING: cfg.shed_pressure,
            MODE_DEGRADED: cfg.degraded_pressure,
        }
        current_rank = _ORDER.index(self.mode)
        for mode in (MODE_CIRCUIT_OPEN, MODE_SHEDDING, MODE_DEGRADED):
            threshold = entry[mode]
            # Hysteresis: stepping *down* out of a mode needs pressure
            # below exit_ratio × its entry threshold plus a dwell tick.
            if _ORDER.index(mode) <= current_rank:
                threshold *= cfg.exit_ratio
            if p >= threshold:
                return mode
        return MODE_NORMAL

    def update(self, now_cycles: int) -> str:
        """One controller tick; returns the (possibly new) mode."""
        self._ticks_in_mode += 1
        target = self._target_mode()
        if target is not self.mode and (
            _ORDER.index(target) > _ORDER.index(self.mode)
            or self._ticks_in_mode >= 2
        ):
            self.mode = target
            self._ticks_in_mode = 0
            self.transitions.append((now_cycles, target))
            if target is MODE_CIRCUIT_OPEN:
                self.circuit_opened += 1
        return self.mode

    # ------------------------------------------------------------------
    # Effects
    # ------------------------------------------------------------------
    @property
    def admissions_open(self) -> bool:
        return self.mode is not MODE_CIRCUIT_OPEN

    def cadence_multiplier(self) -> int:
        """Inter-round gap stretch for the current mode."""
        if self.mode is MODE_NORMAL:
            return 1
        return self._config.degraded_cadence_multiplier

    @property
    def shedding(self) -> bool:
        return self.mode in (MODE_SHEDDING, MODE_CIRCUIT_OPEN)

    def shed_quota(self, active: int) -> int:
        """How many active sessions one shed pass may cancel."""
        if not self.shedding or active == 0:
            return 0
        # Shed in small deterministic bites; the next tick re-evaluates.
        return max(1, active // 8)
